//! Property tests of journal v2 recovery: random truncations and bit
//! flips at arbitrary offsets must never corrupt an intact record's
//! replay — every record whose bytes survive is recovered bit-
//! identically, every damaged record is skipped and counted, and the
//! scanner never panics or loops.

use proptest::prelude::*;
use tsdist_eval::journal::{
    recover_lines, v2_segments, DurableConfig, DurableJournal, FsyncPolicy,
};

/// A deterministic payload line for seed `s`: printable, length 0..~48.
fn line_for(s: u64) -> String {
    let len = (s % 48) as usize;
    let mut out = String::with_capacity(len + 8);
    out.push_str(&format!("r{s:x}:"));
    let mut x = s.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push(char::from(b'a' + (x % 26) as u8));
    }
    out
}

/// Writes `lines` through a real [`DurableJournal`] and returns, per
/// segment file, the `(record_index, start, len)` extents — recomputed
/// from the framing contract (12-byte header + payload, rotate after the
/// append that crosses `segment_bytes`).
fn write_and_map(
    base: &std::path::Path,
    lines: &[String],
    segment_bytes: u64,
) -> Vec<Vec<(usize, usize, usize)>> {
    let journal = DurableJournal::open(
        base,
        DurableConfig {
            segment_bytes,
            fsync: FsyncPolicy::Never,
        },
    )
    .expect("open journal");
    for line in lines {
        journal.append_line(line).expect("append");
    }
    drop(journal);

    let mut extents: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new()];
    let mut offset = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let record = 12 + line.len();
        extents
            .last_mut()
            .expect("segment list is non-empty")
            .push((i, offset, record));
        offset += record;
        if offset as u64 >= segment_bytes {
            extents.push(Vec::new());
            offset = 0;
        }
    }
    while extents.last().is_some_and(|s| s.is_empty()) && extents.len() > 1 {
        extents.pop();
    }
    extents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip random bits and truncate the final segment at a random
    /// offset; every untouched record must replay bit-identically and
    /// every damaged one must be counted, not surfaced.
    #[test]
    fn intact_records_survive_arbitrary_corruption(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..24),
        flip_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..6),
        trunc_pick in any::<prop::sample::Index>(),
        truncate_coin in 0usize..2,
        segment_pick in 0usize..3,
    ) {
        let do_truncate = truncate_coin == 1;
        let lines: Vec<String> = seeds.iter().map(|&s| line_for(s)).collect();
        let segment_bytes = [256u64, 1024, 1 << 20][segment_pick];
        let dir = std::env::temp_dir().join(format!(
            "tsdist_j2_prop_{}_{}",
            std::process::id(),
            seeds.iter().fold(0u64, |a, &s| a.rotate_left(7) ^ s),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let base = dir.join("j.j2");
        let extents = write_and_map(&base, &lines, segment_bytes);
        let segments = v2_segments(&base);
        prop_assert_eq!(segments.len(), extents.len());

        // Inject corruption, tracking which record indices were damaged.
        let mut damaged = std::collections::BTreeSet::new();
        let mut files: Vec<Vec<u8>> = segments
            .iter()
            .map(|p| std::fs::read(p).expect("read segment"))
            .collect();
        let total: usize = files.iter().map(Vec::len).sum();
        for pick in &flip_picks {
            let mut at = pick.index(total.max(1));
            for (seg, bytes) in files.iter_mut().enumerate() {
                if at < bytes.len() {
                    bytes[at] ^= 1 << (at % 8);
                    for &(i, start, len) in &extents[seg] {
                        if at >= start && at < start + len {
                            damaged.insert(i);
                        }
                    }
                    break;
                }
                at -= bytes.len();
            }
        }
        if do_truncate && !files.is_empty() {
            let last = files.len() - 1;
            let cut = trunc_pick.index(files[last].len().max(1));
            files[last].truncate(cut);
            for &(i, start, len) in &extents[last] {
                if start + len > cut {
                    damaged.insert(i);
                }
            }
        }
        for (path, bytes) in segments.iter().zip(&files) {
            std::fs::write(path, bytes).expect("write corrupted segment");
        }

        let replay = recover_lines(&base).expect("recover");

        // Every intact record replays bit-identically, in order.
        let expected: Vec<&String> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !damaged.contains(i))
            .map(|(_, l)| l)
            .collect();
        let recovered: Vec<&String> = replay.lines.iter().collect();
        prop_assert_eq!(recovered, expected);

        // Damage is counted (each contiguous corrupt region >= 1), and a
        // clean file reports none.
        if damaged.is_empty() {
            prop_assert_eq!(replay.corrupt_records, 0);
            prop_assert_eq!(replay.bytes_skipped, 0);
        } else {
            prop_assert!(replay.corrupt_records >= 1);
            prop_assert!(replay.corrupt_records <= damaged.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
