//! Property-based tests for the evaluation platform.

use proptest::prelude::*;
use tsdist_eval::{knn_accuracy, loocv_accuracy, one_nn_accuracy, parallel_map};
use tsdist_linalg::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accuracy is always a probability, and k=1 kNN equals Algorithm 1.
    #[test]
    fn accuracies_are_probabilities_and_k1_matches(
        r in 1usize..8,
        p in 1usize..8,
        data in proptest::collection::vec(0.0f64..100.0, 64),
        labels in proptest::collection::vec(0usize..3, 16),
    ) {
        let e = Matrix::from_fn(r, p, |i, j| data[(i * p + j) % data.len()]);
        let test_labels: Vec<usize> = (0..r).map(|i| labels[i % labels.len()]).collect();
        let train_labels: Vec<usize> = (0..p).map(|i| labels[(i + 5) % labels.len()]).collect();
        let acc = one_nn_accuracy(&e, &test_labels, &train_labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(acc, knn_accuracy(&e, &test_labels, &train_labels, 1));
    }

    /// LOOCV accuracy is invariant to the matrix diagonal (self-distances
    /// are excluded by construction).
    #[test]
    fn loocv_ignores_diagonal(
        n in 2usize..8,
        data in proptest::collection::vec(0.01f64..100.0, 64),
        diag in proptest::collection::vec(-1000.0f64..1000.0, 8),
        labels in proptest::collection::vec(0usize..3, 8),
    ) {
        let labels: Vec<usize> = (0..n).map(|i| labels[i % labels.len()]).collect();
        let w = Matrix::from_fn(n, n, |i, j| data[(i * n + j) % data.len()]);
        let mut w2 = w.clone();
        for i in 0..n {
            w2[(i, i)] = diag[i % diag.len()];
        }
        prop_assert_eq!(loocv_accuracy(&w, &labels), loocv_accuracy(&w2, &labels));
    }

    /// parallel_map is exactly a map.
    #[test]
    fn parallel_map_is_a_map(n in 0usize..200, mult in 1usize..100) {
        let out = parallel_map(n, |i| i * mult);
        let expected: Vec<usize> = (0..n).map(|i| i * mult).collect();
        prop_assert_eq!(out, expected);
    }

    /// A strictly-better duplicate of the true class in the training set
    /// can only improve 1-NN accuracy (monotonicity sanity).
    #[test]
    fn adding_perfect_neighbour_never_hurts(
        r in 1usize..6,
        p in 1usize..6,
        data in proptest::collection::vec(0.1f64..10.0, 36),
        labels in proptest::collection::vec(0usize..2, 12),
    ) {
        let e = Matrix::from_fn(r, p, |i, j| data[(i * p + j) % data.len()]);
        let test_labels: Vec<usize> = (0..r).map(|i| labels[i % labels.len()]).collect();
        let train_labels: Vec<usize> = (0..p).map(|i| labels[(i + 3) % labels.len()]).collect();
        let base = one_nn_accuracy(&e, &test_labels, &train_labels);

        // Append one column per test row with distance 0 and the true label?
        // That needs per-row labels; instead append a zero-distance column
        // labelled with the first test row's class and check that row is
        // now correct.
        let e2 = Matrix::from_fn(r, p + 1, |i, j| {
            if j < p { e[(i, j)] } else if i == 0 { 0.0 } else { f64::INFINITY }
        });
        let mut train2 = train_labels.clone();
        train2.push(test_labels[0]);
        let improved = one_nn_accuracy(&e2, &test_labels, &train2);
        prop_assert!(improved >= base - 1e-12);
    }
}
