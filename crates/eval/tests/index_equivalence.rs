//! The index-vs-scan equivalence suite: every indexed search result —
//! 1-NN rows, k-NN rows, LOOCV rows, and `Eval`-builder accuracies —
//! must be byte-identical to the exact (pruned) scan, across the
//! registry's elastic instances, the declared-metric lock-step measures,
//! warm-start settings, pairwise-normalization wrappers, ties, and
//! degenerate datasets.

use tsdist_core::index::TrainIndex;
use tsdist_core::lockstep as ls;
use tsdist_core::measure::Distance;
use tsdist_core::normalization::Normalization;
use tsdist_core::registry;
use tsdist_data::synthetic::{generate_dataset, ArchiveConfig};
use tsdist_data::Dataset;
use tsdist_eval::index::{
    indexed_knn_search, indexed_loocv_search, indexed_nn_search, indexed_nn_search_stats,
};
use tsdist_eval::pruned::{pruned_knn_search, pruned_loocv_search, pruned_nn_search};
use tsdist_eval::{prepare, Eval};

fn dataset(seed: u64) -> Dataset {
    generate_dataset(&ArchiveConfig::quick(1, seed), 0)
}

/// Builds the index over a *prepared* train split and specializes it for
/// one measure, exactly as an indexed caller is contracted to do.
fn index_for(d: &dyn Distance, train: &[Vec<f64>]) -> TrainIndex {
    let mut ix = TrainIndex::build(train);
    ix.prepare_measure(d, train);
    ix
}

/// Every measure the suite sweeps: the registry's fixed-parameter
/// elastic instances plus the declared-metric lock-step measures plus
/// two deliberately non-indexable controls.
fn roster() -> Vec<(String, Box<dyn Distance>)> {
    let mut all = registry::elastic_unsupervised();
    for d in [
        Box::new(ls::Euclidean) as Box<dyn Distance>,
        Box::new(ls::CityBlock),
        Box::new(ls::Chebyshev),
        Box::new(ls::Minkowski::new(3.0)),
        Box::new(ls::Gower),
        Box::new(ls::Lorentzian),
        Box::new(ls::Canberra),
        Box::new(ls::Soergel),
        // Controls: no metric flag, no index profile — every row must
        // fall back to the linear plan and still agree.
        Box::new(ls::SquaredEuclidean),
        Box::new(ls::Sorensen),
    ] {
        all.push((d.name(), d));
    }
    all
}

#[test]
fn registry_rows_match_exact_scan_for_nn_knn_and_loocv() {
    let prepared = prepare(&dataset(42), Normalization::ZScore);
    for (name, d) in roster() {
        let ix = index_for(d.as_ref(), &prepared.train);
        for warm in [false, true] {
            let exact = pruned_nn_search(d.as_ref(), &prepared.test, &prepared.train, warm);
            let got = indexed_nn_search(d.as_ref(), &prepared.test, &prepared.train, &ix, warm);
            assert_eq!(got, exact, "{name} 1-NN warm={warm}");

            let exact_k = pruned_knn_search(d.as_ref(), &prepared.test, &prepared.train, 3, warm);
            let got_k =
                indexed_knn_search(d.as_ref(), &prepared.test, &prepared.train, &ix, 3, warm);
            assert_eq!(got_k, exact_k, "{name} 3-NN warm={warm}");

            let exact_l = pruned_loocv_search(d.as_ref(), &prepared.train, warm);
            let got_l = indexed_loocv_search(d.as_ref(), &prepared.train, &ix, warm);
            assert_eq!(got_l, exact_l, "{name} LOOCV warm={warm}");
        }
    }
}

#[test]
fn eval_builder_indexed_accuracies_are_byte_identical() {
    let ds = dataset(7);
    let norm = Normalization::ZScore;
    let prepared = prepare(&ds, norm);
    for (name, d) in roster() {
        let ix = index_for(d.as_ref(), &prepared.train);
        for k in [1, 3] {
            for warm in [false, true] {
                let exact = Eval::new(d.as_ref())
                    .on(&ds)
                    .normalized(norm)
                    .pruned(true)
                    .k(k)
                    .warm_start(warm)
                    .run()
                    .unwrap();
                let indexed = Eval::new(d.as_ref())
                    .on(&ds)
                    .normalized(norm)
                    .indexed(&ix)
                    .k(k)
                    .warm_start(warm)
                    .run()
                    .unwrap();
                assert_eq!(
                    indexed.accuracy.unwrap().to_bits(),
                    exact.accuracy.unwrap().to_bits(),
                    "{name} k={k} warm={warm}"
                );
            }
        }
    }
}

#[test]
fn indexed_query_answers_match_exact_query_answers() {
    let ds = dataset(11);
    let norm = Normalization::ZScore;
    let prepared = prepare(&ds, norm);
    for (name, d) in [
        registry::elastic_unsupervised().remove(3), // DTW(δ=10)
        ("ED".into(), Box::new(ls::Euclidean) as Box<dyn Distance>),
    ] {
        let ix = index_for(d.as_ref(), &prepared.train);
        let exact = Eval::new(d.as_ref())
            .on(&ds)
            .normalized(norm)
            .queries(&ds.test)
            .pruned(true)
            .run()
            .unwrap();
        let indexed = Eval::new(d.as_ref())
            .on(&ds)
            .normalized(norm)
            .queries(&ds.test)
            .indexed(&ix)
            .run()
            .unwrap();
        assert_eq!(indexed.answers.len(), exact.answers.len(), "{name}");
        for (a, b) in indexed.answers.iter().zip(&exact.answers) {
            assert_eq!(a.index, b.index, "{name}");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{name}");
            assert_eq!(a.label, b.label, "{name}");
        }
    }
}

#[test]
fn logistic_normalization_engages_positive_regime_pivots() {
    // Logistic maps into (0, 1): strictly positive data, so Canberra and
    // Soergel — metric only on the positive orthant — get pivot tables
    // and plans actually engage (no fallback rows).
    let ds = dataset(23);
    let norm = Normalization::Logistic;
    let prepared = prepare(&ds, norm);
    for d in [
        Box::new(ls::Canberra) as Box<dyn Distance>,
        Box::new(ls::Soergel),
    ] {
        let ix = index_for(d.as_ref(), &prepared.train);
        assert_eq!(
            ix.stats().pivot_tables,
            1,
            "{} built no pivot table on logistic data",
            d.name()
        );
        let exact = pruned_nn_search(d.as_ref(), &prepared.test, &prepared.train, true);
        let (got, stats) =
            indexed_nn_search_stats(d.as_ref(), &prepared.test, &prepared.train, &ix, true);
        assert_eq!(got, exact, "{}", d.name());
        assert_eq!(stats.fallback_rows, 0, "{} fell back", d.name());
    }
}

#[test]
fn adaptive_scaled_pairwise_normalization_stays_identical() {
    // AdaptiveScaling wraps the measure per pair, which invalidates every
    // precomputed bound; the indexed run must agree with the pruned one
    // by falling back row-by-row.
    let ds = dataset(31);
    let norm = Normalization::AdaptiveScaling;
    let prepared = prepare(&ds, norm);
    for (name, d) in [
        ("ED".into(), Box::new(ls::Euclidean) as Box<dyn Distance>),
        registry::elastic_unsupervised().remove(3),
    ] {
        let ix = index_for(d.as_ref(), &prepared.train);
        for k in [1, 2] {
            let exact = Eval::new(d.as_ref())
                .on(&ds)
                .normalized(norm)
                .pruned(true)
                .k(k)
                .run()
                .unwrap();
            let indexed = Eval::new(d.as_ref())
                .on(&ds)
                .normalized(norm)
                .indexed(&ix)
                .k(k)
                .run()
                .unwrap();
            assert_eq!(
                indexed.accuracy.unwrap().to_bits(),
                exact.accuracy.unwrap().to_bits(),
                "{name} k={k}"
            );
        }
    }
}

#[test]
fn ties_resolve_to_the_lowest_index_through_every_plan() {
    // Two identical training series: index 0 must win under the cascade,
    // pivot, and linear plans alike — exactly like Algorithm 1's strict
    // `<` scan in natural order.
    let s: Vec<f64> = (0..32).map(|t| (t as f64 * 0.4).sin()).collect();
    let mut train = vec![s.clone(), s.clone()];
    train.extend((0..10).map(|i| {
        (0..32)
            .map(|t| (t as f64 * 0.4).sin() + 1.0 + i as f64 * 0.1)
            .collect::<Vec<f64>>()
    }));
    let test = vec![s.clone()];
    for d in [
        Box::new(tsdist_core::elastic::Dtw::with_window_pct(10.0)) as Box<dyn Distance>,
        Box::new(ls::Euclidean),
        Box::new(ls::SquaredEuclidean),
    ] {
        let ix = index_for(d.as_ref(), &train);
        let nns = indexed_nn_search(d.as_ref(), &test, &train, &ix, true);
        assert_eq!(nns[0].index, Some(0), "{}", d.name());
        assert_eq!(nns[0].distance, 0.0, "{}", d.name());
        assert_eq!(
            nns,
            pruned_nn_search(d.as_ref(), &test, &train, true),
            "{}",
            d.name()
        );
    }
}

#[test]
fn empty_and_singleton_datasets_behave_like_the_exact_scan() {
    let q: Vec<f64> = (0..16).map(|t| t as f64 * 0.1).collect();
    let d = ls::Euclidean;

    // Empty train: no rows can be answered; both paths agree on the
    // empty/degenerate results.
    let empty: Vec<Vec<f64>> = Vec::new();
    let ix = index_for(&d, &empty);
    assert_eq!(
        indexed_nn_search(&d, std::slice::from_ref(&q), &empty, &ix, true),
        pruned_nn_search(&d, std::slice::from_ref(&q), &empty, true),
    );
    assert!(indexed_knn_search(&d, std::slice::from_ref(&q), &empty, &ix, 3, true)[0].is_empty());

    // Empty test: nothing to answer.
    let train = vec![q.clone()];
    let ix = index_for(&d, &train);
    assert!(indexed_nn_search(&d, &[], &train, &ix, true).is_empty());

    // Singleton train: 1-NN finds it, LOOCV excludes it and finds
    // nothing — identical to the pruned scan.
    let nns = indexed_nn_search(&d, std::slice::from_ref(&q), &train, &ix, true);
    assert_eq!(nns[0].index, Some(0));
    let loocv = indexed_loocv_search(&d, &train, &ix, true);
    assert_eq!(loocv, pruned_loocv_search(&d, &train, true));
    assert_eq!(loocv[0].index, None);
}
