//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The embedding measures need eigenpairs of small symmetric kernel
//! matrices (landmark Gram matrices of size k x k, with k around 20-100).
//! The Jacobi method is simple, numerically robust, and delivers full
//! accuracy for this size regime; asymptotically faster methods are not
//! worth their complexity here.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: `a = V diag(values) V^T`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix using
/// cyclic Jacobi rotations.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition requires a square matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    if n == 0 {
        return SymmetricEigen {
            values: Vec::new(),
            vectors: v,
        };
    }

    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Sum of squares of the strict upper triangle.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-12 * (1.0 + m.frobenius_norm()) {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle from the standard Jacobi formulas.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation: rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect and sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| values_raw[j].total_cmp(&values_raw[i]));

    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymmetricEigen { values, vectors }
}

/// Nyström feature map: given the landmark kernel matrix `k_ll` (k x k,
/// symmetric PSD) and the data-to-landmark kernel matrix `k_nl` (n x k),
/// returns an `n x d` representation `Z = K_nl * U_d * diag(lambda_d)^{-1/2}`
/// such that `Z Z^T` approximates the full kernel matrix.
///
/// Eigenvalues below `1e-10 * lambda_max` are discarded; `d` is capped at
/// `dims`.
///
/// # Panics
///
/// Panics when `k_ll` is not square or `k_nl`'s column count differs
/// from the landmark count — mismatched kernel blocks have no Nyström
/// factorization.
pub fn nystroem_features(k_ll: &Matrix, k_nl: &Matrix, dims: usize) -> Matrix {
    assert_eq!(k_ll.rows(), k_ll.cols(), "landmark kernel must be square");
    assert_eq!(
        k_nl.cols(),
        k_ll.rows(),
        "data-to-landmark kernel has wrong width"
    );
    let eig = symmetric_eigen(k_ll);
    let lam_max = eig.values.first().copied().unwrap_or(0.0).max(0.0);
    let keep: Vec<usize> = (0..eig.values.len())
        .filter(|&i| eig.values[i] > 1e-10 * lam_max && eig.values[i] > 0.0)
        .take(dims)
        .collect();

    let n = k_nl.rows();
    let mut z = Matrix::zeros(n, keep.len());
    for (out_j, &j) in keep.iter().enumerate() {
        let inv_sqrt = 1.0 / eig.values[j].sqrt();
        for i in 0..n {
            let mut acc = 0.0;
            for l in 0..k_ll.rows() {
                acc += k_nl[(i, l)] * eig.vectors[(l, j)];
            }
            z[(i, out_j)] = acc * inv_sqrt;
        }
    }
    z
}

/// Dominant eigenpair of a symmetric matrix via power iteration with
/// deflation-free Rayleigh-quotient convergence — much cheaper than the
/// full Jacobi sweep when only the top eigenvector is needed (e.g. the
/// k-Shape centroid extraction).
///
/// Returns `(eigenvalue, eigenvector)`; the eigenvector has unit norm.
///
/// # Panics
/// Panics if the matrix is not square or is empty.
pub fn dominant_eigenpair(a: &Matrix, max_iterations: usize) -> (f64, Vec<f64>) {
    assert_eq!(
        a.rows(),
        a.cols(),
        "power iteration requires a square matrix"
    );
    let n = a.rows();
    assert!(n > 0, "empty matrix");

    // Deterministic, not-axis-aligned start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin() * 0.3).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..max_iterations.max(1) {
        let mut w = a.matvec(&v);
        let new_lambda: f64 = v.iter().zip(&w).map(|(p, q)| p * q).sum();
        let norm = normalize(&mut w);
        if norm <= 1e-300 {
            // a v == 0: v is in the null space; any unit vector works.
            return (0.0, v);
        }
        let converged = (new_lambda - lambda).abs() <= 1e-12 * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        v = w;
        if converged {
            break;
        }
    }
    (lambda, v)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_recovers_input() {
        // A random-ish symmetric matrix.
        let n = 6;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let a = Matrix::from_fn(n, n, |i, j| (b[(i, j)] + b[(j, i)]) / 2.0);
        let e = symmetric_eigen(&a);
        let r = reconstruct(&e);
        assert!(a.max_abs_diff(&r) < 1e-8, "diff {}", a.max_abs_diff(&r));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 5;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = symmetric_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn nystroem_reproduces_gram_matrix_exactly_when_landmarks_are_all_points() {
        // With landmarks == all points, Z Z^T must equal K (up to dropped
        // near-zero eigenvalues).
        let n = 5;
        // A PSD kernel: K = B B^T.
        let b = Matrix::from_fn(n, 3, |i, j| ((i + 2 * j) % 4) as f64 * 0.5 + 0.1);
        let k = b.matmul(&b.transpose());
        let z = nystroem_features(&k, &k, n);
        let approx = z.matmul(&z.transpose());
        assert!(
            k.max_abs_diff(&approx) < 1e-8,
            "diff {}",
            k.max_abs_diff(&approx)
        );
    }

    #[test]
    fn empty_matrix_is_handled() {
        let a = Matrix::zeros(0, 0);
        let e = symmetric_eigen(&a);
        assert!(e.values.is_empty());
    }

    #[test]
    fn power_iteration_matches_jacobi_dominant_pair() {
        let n = 8;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 13) as f64 - 6.0);
        // Positive definite-ish symmetric matrix: B B^T + n I.
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let full = symmetric_eigen(&a);
        let (lambda, v) = dominant_eigenpair(&a, 500);
        assert!(
            (lambda - full.values[0]).abs() < 1e-6 * full.values[0].abs(),
            "{lambda} vs {}",
            full.values[0]
        );
        // Eigenvector matches up to sign.
        let dot: f64 = (0..n).map(|i| v[i] * full.vectors[(i, 0)]).sum();
        assert!(dot.abs() > 1.0 - 1e-6, "alignment {dot}");
    }

    #[test]
    fn power_iteration_on_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let (lambda, v) = dominant_eigenpair(&a, 50);
        assert_eq!(lambda, 0.0);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }
}
