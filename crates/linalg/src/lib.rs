//! # tsdist-linalg
//!
//! A minimal dense linear-algebra substrate for the `tsdist` workspace.
//!
//! The embedding measures of the paper (Section 9) — GRAIL, SPIRAL, RWS —
//! construct similarity-preserving representations from kernel matrices,
//! which requires a symmetric eigensolver and a Nyström feature map. This
//! crate implements exactly that, from scratch:
//!
//! * [`Matrix`] — a dense row-major matrix with the handful of operations
//!   the workspace needs,
//! * [`symmetric_eigen`] — cyclic Jacobi eigendecomposition,
//! * [`nystroem_features`] — the Nyström landmark feature map used by
//!   GRAIL and SPIRAL.

#![warn(missing_docs)]

mod eigen;
mod matrix;

pub use eigen::{dominant_eigenpair, nystroem_features, symmetric_eigen, SymmetricEigen};
pub use matrix::Matrix;
