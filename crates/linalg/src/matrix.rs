//! A dense, row-major `f64` matrix.
//!
//! Only the operations required by the embedding measures (GRAIL, SPIRAL,
//! RWS) are implemented: construction, indexing, transpose, matrix
//! multiplication, and a handful of row/column utilities. The type favours
//! clarity and contiguity (a single `Vec<f64>` allocation) over generality.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major data, mutably — the batch matrix engine
    /// fills rows in place through this view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes to `rows x cols`, reusing the existing allocation when
    /// large enough; all entries are reset to zero.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly i-k-j loop order over contiguous rows.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                // tsdist-lint: allow(float-total-order, reason = "exact-zero skip in sparse matmul: skipping exact zeros cannot change any sum")
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (j, &bkj) in b_row.iter().enumerate() {
                    o_row[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * j) as f64 + 1.0);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let as_mat = a.matmul(&Matrix::from_vec(4, 1, v.clone()));
        assert_eq!(a.matvec(&v), as_mat.as_slice());
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 5.0]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 5.0]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
