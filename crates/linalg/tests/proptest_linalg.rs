//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use tsdist_linalg::{symmetric_eigen, Matrix};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within floating tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_of_product(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 3),
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    /// Eigendecomposition reconstructs random symmetric matrices and
    /// produces orthonormal eigenvectors with sorted eigenvalues.
    #[test]
    fn eigen_reconstruction(raw in matrix_strategy(5, 5)) {
        let a = Matrix::from_fn(5, 5, |i, j| (raw[(i, j)] + raw[(j, i)]) / 2.0);
        let e = symmetric_eigen(&a);
        // Sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // V V^T == I.
        let vvt = e.vectors.matmul(&e.vectors.transpose());
        prop_assert!(vvt.max_abs_diff(&Matrix::identity(5)) < 1e-8);
        // V diag(values) V^T == A.
        let mut d = Matrix::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = e.values[i];
        }
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        prop_assert!(a.max_abs_diff(&recon) < 1e-7);
    }

    /// Trace is preserved by the eigendecomposition (sum of eigenvalues).
    #[test]
    fn eigenvalues_sum_to_trace(raw in matrix_strategy(4, 4)) {
        let a = Matrix::from_fn(4, 4, |i, j| (raw[(i, j)] + raw[(j, i)]) / 2.0);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let e = symmetric_eigen(&a);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    /// matvec agrees with matmul against a column.
    #[test]
    fn matvec_consistency(
        a in matrix_strategy(4, 6),
        v in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let direct = a.matvec(&v);
        let as_col = a.matmul(&Matrix::from_vec(6, 1, v.clone()));
        for (i, x) in direct.iter().enumerate() {
            prop_assert!((x - as_col[(i, 0)]).abs() < 1e-10);
        }
    }
}
