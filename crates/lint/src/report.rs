//! Diagnostics, suppressed findings, and the machine-readable report.
//!
//! The JSON report is hand-serialized (no external crates, matching the
//! journal's NDJSON discipline) and deterministic: diagnostics and
//! suppressions are sorted by `(file, line, lint)` so two runs over the
//! same tree produce byte-identical output — future PRs diff
//! `results/lint/report.json` to audit suppression-count drift.

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory: reported, but only fails the run under
    /// `--deny-warnings`. Used for heuristic lints and stale
    /// suppressions.
    Warning,
    /// Invariant violation: always fails the run.
    Error,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name (kebab-case, e.g. `no-unwrap-in-lib`).
    pub lint: &'static str,
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// A finding silenced by an inline `tsdist-lint: allow(…)` comment.
#[derive(Debug, Clone)]
pub struct SuppressedDiagnostic {
    pub lint: String,
    pub file: String,
    pub line: u32,
    /// The reason string the suppression carried. The suppression
    /// grammar makes this mandatory; reasonless allows are themselves
    /// diagnostics.
    pub reason: String,
}

/// The full result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Active findings (not suppressed), sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressed findings with their reasons, sorted.
    pub suppressed: Vec<SuppressedDiagnostic>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Sorts diagnostics and suppressions into the canonical order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                d.severity.label(),
                d.lint,
                d.file,
                d.line,
                d.message
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned: {} error(s), {} warning(s), {} suppressed finding(s)\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable JSON rendering (one pretty-stable schema;
    /// `version` bumps on breaking changes).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str(&format!(
            "  \"suppression_count\": {},\n",
            self.suppressed.len()
        ));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_string(d.lint),
                json_string(d.severity.label()),
                json_string(&d.file),
                d.line,
                json_string(&d.message),
                if i + 1 < self.diagnostics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_string(&s.lint),
                json_string(&s.file),
                s.line,
                json_string(&s.reason),
                if i + 1 < self.suppressed.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic {
                    lint: "no-unwrap-in-lib",
                    severity: Severity::Error,
                    file: "b.rs".into(),
                    line: 3,
                    message: "`.unwrap()` in library code".into(),
                },
                Diagnostic {
                    lint: "suppression-audit",
                    severity: Severity::Warning,
                    file: "a.rs".into(),
                    line: 9,
                    message: "stale".into(),
                },
            ],
            suppressed: vec![SuppressedDiagnostic {
                lint: "float-total-order".into(),
                file: "a.rs".into(),
                line: 4,
                reason: "exact-zero guard".into(),
            }],
        }
    }

    #[test]
    fn counts_and_sorting() {
        let mut r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        r.sort();
        assert_eq!(r.diagnostics[0].file, "a.rs");
    }

    #[test]
    fn json_is_valid_enough_and_escaped() {
        let mut r = sample();
        r.diagnostics[0].message = "quote \" backslash \\ newline \n".into();
        r.sort();
        let json = r.render_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"suppression_count\": 1"));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn human_rendering_has_summary() {
        let r = sample();
        let text = r.render_human();
        assert!(text.contains("error: [no-unwrap-in-lib] b.rs:3"));
        assert!(text.contains("2 file(s) scanned: 1 error(s), 1 warning(s), 1 suppressed"));
    }
}
