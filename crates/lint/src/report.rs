//! Diagnostics, suppressed findings, fingerprints, the pinned baseline,
//! and the machine-readable report.
//!
//! The JSON report is hand-serialized (no external crates, matching the
//! journal's NDJSON discipline) and deterministic: diagnostics and
//! suppressions are sorted by `(file, line, lint)` so two runs over the
//! same tree produce byte-identical output — future PRs diff
//! `results/lint/report.json` to audit suppression-count drift.
//!
//! # Fingerprints and the baseline (report v2)
//!
//! Every diagnostic carries a stable *fingerprint*: FNV-1a/64 over
//! `lint | file | message-with-digit-runs-normalized`. Line numbers are
//! deliberately excluded and digit runs in the message collapse to `#`,
//! so a finding keeps its identity when unrelated edits shift the file
//! underneath it. A *baseline* is a pinned set of fingerprints
//! (`results/lint/baseline.json`): under `--baseline`, findings whose
//! fingerprint is pinned move to the `baselined` list and stop counting
//! toward the error/warning totals — only **new** findings fail CI,
//! which is what lets a strict lint land on a codebase with known,
//! triaged debt. A baselined entry that disappears shows up as baseline
//! shrinkage in the JSON diff, so pinned debt cannot silently regrow.

use crate::graph::GraphStats;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory: reported, but only fails the run under
    /// `--deny-warnings`. Used for heuristic lints and stale
    /// suppressions.
    Warning,
    /// Invariant violation: always fails the run.
    Error,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a label (for `--severity lint=level` CLI overrides).
    pub fn parse(label: &str) -> Option<Severity> {
        match label {
            "warning" | "warn" => Some(Severity::Warning),
            "error" | "deny" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name (kebab-case, e.g. `no-unwrap-in-lib`).
    pub lint: &'static str,
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// Stable identity of the finding across unrelated edits: FNV-1a/64
    /// of `lint|file|message` with digit runs in the message collapsed
    /// to `#` (line numbers quoted inside messages would otherwise
    /// churn the identity on every shift).
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.lint.as_bytes());
        eat(b"|");
        eat(self.file.as_bytes());
        eat(b"|");
        let mut in_digits = false;
        for c in self.message.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    eat(b"#");
                    in_digits = true;
                }
            } else {
                in_digits = false;
                let mut buf = [0u8; 4];
                eat(c.encode_utf8(&mut buf).as_bytes());
            }
        }
        format!("{h:016x}")
    }
}

/// A finding silenced by an inline `tsdist-lint: allow(…)` comment.
#[derive(Debug, Clone)]
pub struct SuppressedDiagnostic {
    pub lint: String,
    pub file: String,
    pub line: u32,
    /// The reason string the suppression carried. The suppression
    /// grammar makes this mandatory; reasonless allows are themselves
    /// diagnostics.
    pub reason: String,
}

/// A pinned set of finding fingerprints. Loaded from a prior report (or
/// a dedicated baseline file): any JSON containing
/// `"fingerprint": "<16 hex>"` entries works, so `--write-baseline` and
/// hand-pruning are both fine.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub fingerprints: std::collections::BTreeSet<String>,
}

impl Baseline {
    /// Extracts every `"fingerprint": "…"` value from a JSON text. A
    /// full parser is unnecessary: fingerprints are fixed-shape hex
    /// strings under a fixed key, and this loader accepts both report
    /// files and minimal hand-written baselines.
    pub fn parse(text: &str) -> Baseline {
        let mut fingerprints = std::collections::BTreeSet::new();
        let key = "\"fingerprint\"";
        let mut rest = text;
        while let Some(at) = rest.find(key) {
            rest = &rest[at + key.len()..];
            let Some(colon) = rest.find(':') else { break };
            let after = rest[colon + 1..].trim_start();
            if let Some(stripped) = after.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    let value = &stripped[..end];
                    if !value.is_empty() && value.chars().all(|c| c.is_ascii_hexdigit()) {
                        fingerprints.insert(value.to_string());
                    }
                }
            }
        }
        Baseline { fingerprints }
    }
}

/// The full result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Active findings (not suppressed, not baselined), sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched by the pinned baseline: reported for
    /// visibility, excluded from the error/warning totals.
    pub baselined: Vec<Diagnostic>,
    /// Suppressed findings with their reasons, sorted.
    pub suppressed: Vec<SuppressedDiagnostic>,
    /// Call-graph construction statistics (workspace runs only).
    pub graph: Option<GraphStats>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Moves findings whose fingerprint is pinned to the `baselined`
    /// list. Only what remains in `diagnostics` counts toward failure.
    pub fn apply_baseline(&mut self, baseline: &Baseline) {
        let (pinned, fresh): (Vec<_>, Vec<_>) = std::mem::take(&mut self.diagnostics)
            .into_iter()
            .partition(|d| baseline.fingerprints.contains(&d.fingerprint()));
        self.baselined.extend(pinned);
        self.diagnostics = fresh;
        self.sort();
    }

    /// Sorts diagnostics and suppressions into the canonical order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        self.baselined
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                d.severity.label(),
                d.lint,
                d.file,
                d.line,
                d.message
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned: {} error(s), {} warning(s), {} suppressed, {} baselined\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed.len(),
            self.baselined.len()
        ));
        out
    }

    /// Human-readable call-graph statistics (`--graph-stats`).
    pub fn render_graph_stats(&self) -> String {
        match &self.graph {
            Some(g) => format!(
                "call graph: {} fn(s), {} edge(s); resolution {:.1}% \
                 ({} unique + {} ambiguous resolved, {} unresolved, \
                 {} external, {} std-shadowed)\n",
                g.nodes,
                g.edges,
                g.resolution_pct(),
                g.resolved_unique,
                g.resolved_ambiguous,
                g.unresolved,
                g.external,
                g.std_shadowed
            ),
            None => "call graph: not built (single-source run)\n".to_string(),
        }
    }

    /// Machine-readable JSON rendering. Version 2: adds per-diagnostic
    /// fingerprints, the `baselined` section, and `graph` statistics.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str(&format!(
            "  \"suppression_count\": {},\n",
            self.suppressed.len()
        ));
        out.push_str(&format!(
            "  \"baselined_count\": {},\n",
            self.baselined.len()
        ));
        match &self.graph {
            Some(g) => out.push_str(&format!(
                "  \"graph\": {{\"nodes\": {}, \"edges\": {}, \"resolved_unique\": {}, \
                 \"resolved_ambiguous\": {}, \"unresolved\": {}, \"external\": {}, \
                 \"std_shadowed\": {}, \"resolution_pct\": {:.1}}},\n",
                g.nodes,
                g.edges,
                g.resolved_unique,
                g.resolved_ambiguous,
                g.unresolved,
                g.external,
                g.std_shadowed,
                g.resolution_pct()
            )),
            None => out.push_str("  \"graph\": null,\n"),
        }
        for (key, list) in [
            ("diagnostics", &self.diagnostics),
            ("baselined", &self.baselined),
        ] {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, d) in list.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
                     \"fingerprint\": {}, \"message\": {}}}{}\n",
                    json_string(d.lint),
                    json_string(d.severity.label()),
                    json_string(&d.file),
                    d.line,
                    json_string(&d.fingerprint()),
                    json_string(&d.message),
                    if i + 1 < list.len() { "," } else { "" }
                ));
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_string(&s.lint),
                json_string(&s.file),
                s.line,
                json_string(&s.reason),
                if i + 1 < self.suppressed.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic {
                    lint: "no-unwrap-in-lib",
                    severity: Severity::Error,
                    file: "b.rs".into(),
                    line: 3,
                    message: "`.unwrap()` in library code".into(),
                },
                Diagnostic {
                    lint: "suppression-audit",
                    severity: Severity::Warning,
                    file: "a.rs".into(),
                    line: 9,
                    message: "stale".into(),
                },
            ],
            baselined: Vec::new(),
            suppressed: vec![SuppressedDiagnostic {
                lint: "float-total-order".into(),
                file: "a.rs".into(),
                line: 4,
                reason: "exact-zero guard".into(),
            }],
            graph: None,
        }
    }

    #[test]
    fn counts_and_sorting() {
        let mut r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        r.sort();
        assert_eq!(r.diagnostics[0].file, "a.rs");
    }

    #[test]
    fn json_is_valid_enough_and_escaped() {
        let mut r = sample();
        r.diagnostics[0].message = "quote \" backslash \\ newline \n".into();
        r.sort();
        let json = r.render_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"suppression_count\": 1"));
        assert!(json.contains("\"fingerprint\": \""));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn human_rendering_has_summary() {
        let r = sample();
        let text = r.render_human();
        assert!(text.contains("error: [no-unwrap-in-lib] b.rs:3"));
        assert!(text.contains("2 file(s) scanned: 1 error(s), 1 warning(s), 1 suppressed"));
    }

    #[test]
    fn fingerprints_ignore_lines_and_quoted_numbers() {
        let a = Diagnostic {
            lint: "panic-reachability",
            severity: Severity::Error,
            file: "x.rs".into(),
            line: 10,
            message: "can reach `assert!` (x.rs:42) via f → g".into(),
        };
        let mut b = a.clone();
        b.line = 99;
        b.message = "can reach `assert!` (x.rs:617) via f → g".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.message = "can reach `assert!` (x.rs:42) via f → h".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.file = "y.rs".into();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn baseline_round_trips_through_the_report_json() {
        let mut r = sample();
        let baseline = Baseline::parse(&r.render_json());
        assert_eq!(baseline.fingerprints.len(), 2);
        r.apply_baseline(&baseline);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.baselined.len(), 2);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 0);
        // A fresh finding is NOT absorbed.
        r.diagnostics.push(Diagnostic {
            lint: "lock-discipline",
            severity: Severity::Error,
            file: "c.rs".into(),
            line: 1,
            message: "new".into(),
        });
        let again = Baseline::parse("{\"fingerprint\": \"0000000000000000\"}");
        r.apply_baseline(&again);
        assert_eq!(r.diagnostics.len(), 1);
    }

    #[test]
    fn severity_parse_accepts_both_spellings() {
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("deny"), Some(Severity::Error));
        assert_eq!(Severity::parse("note"), None);
    }
}
