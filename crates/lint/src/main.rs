//! Standalone entry point: `cargo run -p tsdist-lint -- [--json]
//! [--deny-warnings] [--root DIR] [--out FILE]`. The same driver backs
//! the `tsdist lint` subcommand.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tsdist_lint::run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
