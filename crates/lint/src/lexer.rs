//! A hand-rolled Rust lexer: source text to a flat token stream.
//!
//! The linter does not need a full parse — every project invariant is
//! checkable from tokens plus a little structural recovery (brace
//! matching, `#[cfg(test)]` regions, `fn` body spans, done in
//! [`crate::model`]). Keeping the lexer token-faithful matters more
//! than keeping it grammar-faithful: string literals, raw strings,
//! char-vs-lifetime disambiguation, and nested block comments must be
//! skipped exactly, or a `"unwrap()"` inside a doc string would fire a
//! lint. Comments are not tokens; they are collected separately so the
//! suppression parser ([`crate::suppress`]) can see them.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the linter treats keywords lexically).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including hex/octal/binary).
    IntLit,
    /// Float literal (`1.0`, `1e-3`, `2f64`, `3.`).
    FloatLit,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Operator or other punctuation; multi-char operators (`==`, `::`,
    /// `..=`, `->`) are lexed as one token.
    Punct,
    /// `(`, `[`, or `{`.
    OpenDelim,
    /// `)`, `]`, or `}`.
    CloseDelim,
}

/// One lexed token: kind, verbatim text, and 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// True for an opening delimiter with this text.
    pub fn is_open(&self, text: &str) -> bool {
        self.kind == TokenKind::OpenDelim && self.text == text
    }

    /// True for a closing delimiter with this text.
    pub fn is_close(&self, text: &str) -> bool {
        self.kind == TokenKind::CloseDelim && self.text == text
    }
}

/// One comment, with `//` / `/* */` framing stripped.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment starts on (1-based).
    pub line: u32,
    /// Comment body, without the `//` or `/* */` framing.
    pub text: String,
    /// Doc comments (`///`, `//!`, `/** */`, `/*! */`) cannot carry
    /// suppressions — a doc string *describing* the syntax must not
    /// activate it.
    pub is_doc: bool,
}

/// Output of [`lex`]: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is
/// correct (`..=` before `..` before `.`).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (string running to EOF) are tolerated: the remainder becomes one
/// token and lexing stops, which is the right behaviour for a linter
/// that must never panic on weird input.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (plain `//`, doc `///`, inner doc `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            let is_doc = j < n && (chars[j] == '/' || chars[j] == '!');
            if is_doc {
                j += 1;
            }
            let mut text = String::new();
            while j < n && chars[j] != '\n' {
                text.push(chars[j]);
                j += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
                is_doc,
            });
            i = j;
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut j = i + 2;
            let is_doc = j < n && (chars[j] == '*' || chars[j] == '!');
            let mut depth = 1usize;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                }
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                    text.push_str("/*");
                    continue;
                }
                if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    continue;
                }
                text.push(chars[j]);
                j += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
                is_doc,
            });
            i = j;
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#,
        // r#ident, b"…", br"…", b'x'.
        if (c == 'r' || c == 'b') && lex_raw_or_byte(&chars, i, &mut line, &mut out.tokens) {
            i = advance_after_last(&out.tokens, &chars, i);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let (token, j) = lex_number(&chars, i, line);
            out.tokens.push(token);
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let (text, j, newlines) = lex_quoted(&chars, i, '"');
            out.tokens.push(Token {
                kind: TokenKind::StrLit,
                text,
                line,
            });
            line += newlines;
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (token, j) = lex_char_or_lifetime(&chars, i, line);
            out.tokens.push(token);
            i = j;
            continue;
        }
        // Delimiters.
        if matches!(c, '(' | '[' | '{') {
            out.tokens.push(Token {
                kind: TokenKind::OpenDelim,
                text: c.to_string(),
                line,
            });
            i += 1;
            continue;
        }
        if matches!(c, ')' | ']' | '}') {
            out.tokens.push(Token {
                kind: TokenKind::CloseDelim,
                text: c.to_string(),
                line,
            });
            i += 1;
            continue;
        }
        // Multi-char operators, greedy.
        let mut matched = false;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&oc) {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Any other single char is punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Handles `r…`/`b…` prefixed literals. Returns true when a token was
/// produced (the caller then recomputes its end position); false means
/// "not actually a raw/byte literal — lex as a plain identifier".
fn lex_raw_or_byte(chars: &[char], i: usize, line: &mut u32, tokens: &mut Vec<Token>) -> bool {
    let n = chars.len();
    let c = chars[i];
    // r#"…"#  or  r"…"
    if c == 'r' {
        let mut hashes = 0usize;
        let mut j = i + 1;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            let (text, _end, newlines) = lex_raw_string(chars, j, hashes);
            tokens.push(Token {
                kind: TokenKind::StrLit,
                text,
                line: *line,
            });
            *line += newlines;
            return true;
        }
        // r#ident (raw identifier)
        if hashes == 1 && j < n && is_ident_start(chars[j]) {
            let mut k = j + 1;
            while k < n && is_ident_continue(chars[k]) {
                k += 1;
            }
            let text: String = chars[j..k].iter().collect();
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: *line,
            });
            return true;
        }
        return false;
    }
    // b"…", br"…", b'x'
    if c == 'b' && i + 1 < n {
        match chars[i + 1] {
            '"' => {
                let (text, _j, newlines) = lex_quoted(chars, i + 1, '"');
                tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text,
                    line: *line,
                });
                *line += newlines;
                true
            }
            '\'' => {
                let (token, _j) = lex_char_or_lifetime(chars, i + 1, *line);
                tokens.push(token);
                true
            }
            'r' => {
                let mut hashes = 0usize;
                let mut j = i + 2;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    let (text, _end, newlines) = lex_raw_string(chars, j, hashes);
                    tokens.push(Token {
                        kind: TokenKind::StrLit,
                        text,
                        line: *line,
                    });
                    *line += newlines;
                    return true;
                }
                false
            }
            _ => false,
        }
    } else {
        false
    }
}

/// After [`lex_raw_or_byte`] pushed a token, recompute where the source
/// cursor must continue. The token text has its framing stripped, so we
/// re-scan from `start` looking for the literal's true extent.
fn advance_after_last(tokens: &[Token], chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let Some(last) = tokens.last() else {
        return start + 1;
    };
    match last.kind {
        TokenKind::Ident => {
            // r#ident: skip `r#` then the identifier.
            let mut j = start;
            if chars.get(j) == Some(&'r') {
                j += 1;
            }
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            j + last.text.chars().count()
        }
        TokenKind::CharLit => {
            // b'…': find the closing quote from after `b'`.
            let mut j = start + 2;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    return j + 1;
                }
                j += 1;
            }
            n
        }
        _ => {
            // String flavours: skip prefix chars, count hashes, then find
            // the matching close quote + hashes.
            let mut j = start;
            while j < n && (chars[j] == 'r' || chars[j] == 'b') {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j >= n || chars[j] != '"' {
                return j;
            }
            if hashes == 0 && chars.get(j.wrapping_sub(1)) != Some(&'r') && start + 1 == j {
                // Plain b"…" — quoted scan (handles escapes).
                let (_, end, _) = lex_quoted(chars, j, '"');
                return end;
            }
            if hashes == 0 {
                // r"…" — no escapes, find next quote.
                let mut k = j + 1;
                while k < n && chars[k] != '"' {
                    k += 1;
                }
                return (k + 1).min(n);
            }
            // r#…#"…"#…# — find `"` followed by `hashes` hashes.
            let mut k = j + 1;
            while k < n {
                if chars[k] == '"' {
                    let mut h = 0usize;
                    while k + 1 + h < n && chars[k + 1 + h] == '#' && h < hashes {
                        h += 1;
                    }
                    if h == hashes {
                        return k + 1 + hashes;
                    }
                }
                k += 1;
            }
            n
        }
    }
}

/// Lexes a raw string starting at the opening quote, with `hashes`
/// guard hashes. Returns (body, end index, newline count).
fn lex_raw_string(chars: &[char], quote: usize, hashes: usize) -> (String, usize, u32) {
    let n = chars.len();
    let mut j = quote + 1;
    let mut text = String::new();
    let mut newlines = 0u32;
    while j < n {
        if chars[j] == '"' {
            let mut h = 0usize;
            while j + 1 + h < n && chars[j + 1 + h] == '#' && h < hashes {
                h += 1;
            }
            if h == hashes {
                return (text, j + 1 + hashes, newlines);
            }
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        text.push(chars[j]);
        j += 1;
    }
    (text, n, newlines)
}

/// Lexes a quoted literal with escape sequences, starting at the
/// opening quote. Returns (body, end index, newline count).
fn lex_quoted(chars: &[char], start: usize, quote: char) -> (String, usize, u32) {
    let n = chars.len();
    let mut j = start + 1;
    let mut text = String::new();
    let mut newlines = 0u32;
    while j < n {
        if chars[j] == '\\' && j + 1 < n {
            text.push(chars[j]);
            text.push(chars[j + 1]);
            j += 2;
            continue;
        }
        if chars[j] == quote {
            return (text, j + 1, newlines);
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        text.push(chars[j]);
        j += 1;
    }
    (text, n, newlines)
}

/// Lexes a numeric literal starting at a digit.
fn lex_number(chars: &[char], start: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let mut j = start;
    let mut is_float = false;

    // Hex / octal / binary stay integers.
    if chars[j] == '0' && j + 1 < n && matches!(chars[j + 1], 'x' | 'o' | 'b') {
        j += 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        let text: String = chars[start..j].iter().collect();
        return (
            Token {
                kind: TokenKind::IntLit,
                text,
                line,
            },
            j,
        );
    }

    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a `.` followed by a digit, or a trailing `.` that
    // is not a range (`1..`) or method call (`1.max(…)`).
    if j < n && chars[j] == '.' {
        let after = chars.get(j + 1);
        match after {
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                j += 1;
                while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
            }
            Some(&a) if a == '.' || is_ident_start(a) => {}
            _ => {
                // `1.` — trailing-dot float.
                is_float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && (chars[j] == 'e' || chars[j] == 'E') {
        let mut k = j + 1;
        if k < n && (chars[k] == '+' || chars[k] == '-') {
            k += 1;
        }
        if k < n && chars[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let suffix_start = j;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }

    let text: String = chars[start..j].iter().collect();
    (
        Token {
            kind: if is_float {
                TokenKind::FloatLit
            } else {
                TokenKind::IntLit
            },
            text,
            line,
        },
        j,
    )
}

/// Disambiguates `'x'` (char literal) from `'label` (lifetime).
fn lex_char_or_lifetime(chars: &[char], start: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    // Escape: definitely a char literal.
    if start + 1 < n && chars[start + 1] == '\\' {
        let mut j = start + 2;
        while j < n {
            if chars[j] == '\\' {
                j += 2;
                continue;
            }
            if chars[j] == '\'' {
                j += 1;
                break;
            }
            j += 1;
        }
        let text: String = chars[start..j.min(n)].iter().collect();
        return (
            Token {
                kind: TokenKind::CharLit,
                text,
                line,
            },
            j.min(n),
        );
    }
    // 'x' — one char then a closing quote.
    if start + 2 < n && chars[start + 2] == '\'' {
        let text: String = chars[start..start + 3].iter().collect();
        return (
            Token {
                kind: TokenKind::CharLit,
                text,
                line,
            },
            start + 3,
        );
    }
    // Lifetime / label.
    let mut j = start + 1;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    let text: String = chars[start..j].iter().collect();
    (
        Token {
            kind: TokenKind::Lifetime,
            text,
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("a.unwrap();");
        assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "unwrap".into()));
        assert_eq!(toks[3], (TokenKind::OpenDelim, "(".into()));
        assert_eq!(toks[4], (TokenKind::CloseDelim, ")".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::StrLit));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"partial_cmp "quoted""#;"##);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "partial_cmp"));
        let toks = kinds("let s = r\"plain raw\"; next");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_vs_int_vs_method_call() {
        let toks = kinds("1.0 2 3e-4 5f64 0x1f 1.max(2) 0..10 7.");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::FloatLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "3e-4", "5f64", "7."]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::IntLit && t == "0x1f"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = lex("a // trailing note\n/* block\nspans */ b /// doc unwrap()\n");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].is_doc);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[2].is_doc);
        // Line numbers survive multi-line block comments.
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ token");
        assert_eq!(lexed.tokens.len(), 1);
        assert!(lexed.tokens[0].is_ident("token"));
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let lexed = lex("let a = \"line one\nline two\";\nb");
        let b = &lexed.tokens[lexed.tokens.len() - 1];
        assert!(b.is_ident("b"));
        assert_eq!(b.line, 3);
    }

    #[test]
    fn multichar_operators_lex_as_one_token() {
        let toks = kinds("a == b != c :: d -> e ..= f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "..="]);
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b"bytes unwrap()"; let c = b'x'; rest"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "rest"));
    }
}
