//! `no-unwrap-in-lib`: no `.unwrap()` / `.expect(…)` / `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` in library code.
//!
//! The eval engine's whole fault-tolerance story (PR 2) rests on
//! fallible paths returning typed errors; a stray unwrap deep in a
//! measure turns a recoverable cell failure into a study-wide abort.
//! Test regions are exempt (tests unwrap freely), as are the bench
//! binaries via config. The deliberate *panicking facades* — strict
//! wrappers documented with `# Panics` — stay, each carrying a reasoned
//! suppression.

use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "no-unwrap-in-lib";

/// Macros that abort the process when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if model.in_test_region(i) {
            continue;
        }
        // `.unwrap()` / `.expect(` — method-call position only, so
        // `unwrap_or`, `unwrap_or_else`, and a local named `expect` do
        // not fire.
        if (tokens[i].is_ident("unwrap") || tokens[i].is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct(".")
            && i + 1 < tokens.len()
            && tokens[i + 1].is_open("(")
        {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: model.path.clone(),
                line: tokens[i].line,
                message: format!(
                    "`.{}(…)` in library code: return a typed error (or recover, \
                     e.g. `unwrap_or_else(|e| e.into_inner())` for mutex poisoning); \
                     deliberate panicking facades need a reasoned suppression",
                    tokens[i].text
                ),
            });
        }
        // `panic!(…)` and friends. `!` must directly follow the ident so
        // `self.panic` fields or `a != b` never fire.
        if PANIC_MACROS.iter().any(|m| tokens[i].is_ident(m))
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct("!")
        {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: model.path.clone(),
                line: tokens[i].line,
                message: format!(
                    "`{}!` in library code: fallible paths must return typed errors; \
                     documented API-misuse panics need a reasoned suppression",
                    tokens[i].text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze("x.rs", src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    #[test]
    fn fires_on_unwrap_expect_and_panic_macros() {
        assert_eq!(run("fn f() { x.unwrap(); }").len(), 1);
        assert_eq!(run("fn f() { x.expect(\"msg\"); }").len(), 1);
        assert_eq!(run("fn f() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(run("fn f() { unreachable!(); }").len(), 1);
        assert_eq!(run("fn f() { todo!(); }").len(), 1);
    }

    #[test]
    fn silent_on_recovering_variants_and_tests() {
        assert!(run("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(run("fn f() { x.unwrap_or_else(|e| e.into_inner()); }").is_empty());
        assert!(run("fn f() { x.unwrap_or_default(); }").is_empty());
        assert!(run("fn f() { if a != b {} }").is_empty());
        assert!(run("#[cfg(test)]\nmod tests { fn f() { x.unwrap(); panic!(); } }").is_empty());
        assert!(run("#[test]\nfn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn silent_on_strings_and_comments() {
        assert!(run("fn f() { let s = \"call .unwrap() maybe\"; } // panic!(…)").is_empty());
    }
}
