//! `panic-reachability` (error): public functions that reach an
//! unaudited `assert!` — directly or through the call graph.
//!
//! PR 7's fuzzer found dynamically that `measures::resolve` could walk
//! into panicking constructor facades (`Dtw::with_window_pct` asserting
//! its window is a percentage) and kill a serve shard. That defect is
//! statically decidable: it is a path in the workspace call graph from
//! a public entry point to an `assert!` nobody documented.
//!
//! The panic *sources* this lint tracks are the `assert!` family
//! (`assert!` / `assert_eq!` / `assert_ne!`) outside test code —
//! everything else that panics (`unwrap`, `expect`, `panic!`, `todo!`)
//! is already `no-unwrap-in-lib`'s domain: in lib code those sites are
//! either errors outright or carry a reasoned suppression, which *is*
//! the audit. `debug_assert!` is compiled out of release kernels and is
//! ignored.
//!
//! The *audited facade* escape hatch is a `# Panics` doc section on the
//! asserting function: a documented panic is part of the contract, and
//! documenting it absorbs the whole sub-tree (callers of a documented
//! panicking fn are presumed to have read the contract — flagging every
//! transitive caller would make the lint unusable). The remaining
//! knob, `tsdist-lint: allow(panic-reachability, reason = "…")` above a
//! public entry point, suppresses one entry's diagnostic through the
//! ordinary suppression machinery.
//!
//! Each diagnostic prints the full shortest call chain from the entry
//! point to the assert site, so the fix target (document, validate, or
//! suppress) is visible without re-deriving the path.

use std::collections::VecDeque;

use crate::engine::LintConfig;
use crate::graph::WorkspaceModel;
use crate::lexer::TokenKind;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "panic-reachability";

/// First unaudited assert site in a node's own body, if any.
struct AssertSite {
    line: u32,
    which: &'static str,
}

fn direct_assert(ws: &WorkspaceModel, node: usize) -> Option<AssertSite> {
    let n = &ws.nodes[node];
    let fm = &ws.files[n.file];
    let span = &fm.fns[n.fn_idx];
    // Child fn definitions own their asserts.
    let children: Vec<(usize, usize)> = fm
        .fns
        .iter()
        .filter(|g| g.open > span.open && g.close < span.close)
        .map(|g| (g.open, g.close))
        .collect();
    let mut k = span.open + 1;
    'outer: while k < span.close {
        for &(o, c) in &children {
            if k >= o && k <= c {
                k = c + 1;
                continue 'outer;
            }
        }
        let t = &fm.tokens[k];
        if t.kind == TokenKind::Ident && fm.tokens.get(k + 1).is_some_and(|n| n.is_punct("!")) {
            let which = match t.text.as_str() {
                "assert" => Some("assert!"),
                "assert_eq" => Some("assert_eq!"),
                "assert_ne" => Some("assert_ne!"),
                _ => None,
            };
            if let Some(which) = which {
                return Some(AssertSite {
                    line: t.line,
                    which,
                });
            }
        }
        k += 1;
    }
    None
}

pub fn check(ws: &WorkspaceModel, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    let n = ws.nodes.len();
    let exempt: Vec<bool> = ws
        .nodes
        .iter()
        .map(|node| config.panic_exempt(&ws.files[node.file].path))
        .collect();

    // Sources: nodes with an unaudited direct assert.
    let mut site: Vec<Option<AssertSite>> = Vec::with_capacity(n);
    for (i, &ex) in exempt.iter().enumerate() {
        let node = &ws.nodes[i];
        if node.in_test || node.has_panics_doc || ex {
            site.push(None);
        } else {
            site.push(direct_assert(ws, i));
        }
    }

    // Multi-source BFS over reverse edges: `origin[v]` is the source
    // node `v` reaches, `next[v]` the first hop toward it. Documented
    // (`# Panics`) nodes absorb: they are neither flagged nor expanded.
    let mut origin: Vec<usize> = vec![usize::MAX; n];
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, s) in site.iter().enumerate() {
        if s.is_some() {
            origin[i] = i;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &ws.callers[u] {
            if origin[v] != usize::MAX {
                continue;
            }
            let node = &ws.nodes[v];
            if node.in_test || node.has_panics_doc || exempt[v] {
                continue;
            }
            origin[v] = origin[u];
            next[v] = Some(u);
            queue.push_back(v);
        }
    }

    // One diagnostic per public entry point that reaches a source.
    for (e, &org) in origin.iter().enumerate() {
        let node = &ws.nodes[e];
        if !node.is_pub || node.in_test || org == usize::MAX {
            continue;
        }
        let src = org;
        let Some(s) = &site[src] else { continue };
        let src_file = &ws.files[ws.nodes[src].file].path;
        let message = if src == e {
            format!(
                "public fn `{}` invokes `{}` (line {}) with no `# Panics` doc: callers \
                 cannot see the panic contract — document it, or validate and return a \
                 typed error",
                ws.display_name(e),
                s.which,
                s.line
            )
        } else {
            let mut chain = vec![ws.display_name(e)];
            let mut cur = e;
            while let Some(hop) = next[cur] {
                chain.push(ws.display_name(hop));
                cur = hop;
            }
            format!(
                "public fn `{}` can reach `{}` in `{}` ({}:{}) via {}: document `# Panics` \
                 on the panicking fn, validate before the call, or suppress here with a \
                 reason",
                ws.display_name(e),
                s.which,
                ws.display_name(src),
                src_file,
                s.line,
                chain.join(" → ")
            )
        };
        out.push(Diagnostic {
            lint: NAME,
            severity: Severity::Error,
            file: ws.files[node.file].path.clone(),
            line: node.line,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ws = WorkspaceModel::build(models, Vec::new());
        let mut out = Vec::new();
        check(&ws, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn fires_on_the_pr7_shape_with_the_full_chain() {
        // Public resolver → constructor with an undocumented assert.
        let d = run(&[
            (
                "crates/cli/src/measures.rs",
                "use tsdist_core::elastic::Dtw;\n\
                 pub fn resolve(pct: f64) -> Dtw { Dtw::with_window_pct(pct) }\n",
            ),
            (
                "crates/core/src/elastic/dtw.rs",
                "pub struct Dtw;\n\
                 impl Dtw {\n\
                 pub fn with_window_pct(pct: f64) -> Dtw { assert!(pct <= 100.0); Dtw }\n\
                 }\n",
            ),
        ]);
        // Both the entry point and the public constructor itself fire.
        let on_resolve = d
            .iter()
            .find(|d| d.file.contains("measures"))
            .expect("resolve entry flagged");
        assert_eq!(on_resolve.lint, NAME);
        assert!(on_resolve
            .message
            .contains("resolve → Dtw::with_window_pct"));
        assert!(on_resolve.message.contains("assert!"));
        let on_ctor = d
            .iter()
            .find(|d| d.file.contains("dtw"))
            .expect("constructor flagged directly");
        assert!(on_ctor.message.contains("no `# Panics` doc"));
    }

    #[test]
    fn panics_doc_audits_the_facade_and_absorbs_callers() {
        let d = run(&[
            (
                "crates/cli/src/measures.rs",
                "use tsdist_core::elastic::Dtw;\n\
                 pub fn resolve(pct: f64) -> Dtw { Dtw::with_window_pct(pct) }\n",
            ),
            (
                "crates/core/src/elastic/dtw.rs",
                "pub struct Dtw;\n\
                 impl Dtw {\n\
                 /// Builds a DTW measure.\n\
                 ///\n\
                 /// # Panics\n\
                 /// Panics when `pct` is outside `[0, 100]`.\n\
                 pub fn with_window_pct(pct: f64) -> Dtw { assert!(pct <= 100.0); Dtw }\n\
                 }\n",
            ),
        ]);
        assert!(d.is_empty(), "documented facade must be clean: {d:?}");
    }

    #[test]
    fn asserts_in_tests_and_private_chains_do_not_fire() {
        // Assert only reachable from a private fn: no public entry, no
        // finding. Test-region asserts never count.
        let d = run(&[(
            "crates/core/src/shape.rs",
            "fn internal(n: usize) { assert!(n > 0); }\n\
             fn driver(n: usize) { internal(n); }\n\
             #[cfg(test)]\nmod tests {\n\
             #[test]\nfn t() { assert_eq!(1, 1); }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transitive_chain_through_private_helpers_is_printed() {
        let d = run(&[(
            "crates/core/src/kernel.rs",
            "pub fn entry(x: usize) { mid(x); }\n\
             fn mid(x: usize) { deep(x); }\n\
             fn deep(x: usize) { assert_ne!(x, 0); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("entry → mid → deep"));
        assert!(d[0].message.contains("assert_ne!"));
    }

    #[test]
    fn bench_exempt_paths_are_out_of_scope() {
        let d = run(&[(
            "crates/bench/src/lib.rs",
            "pub fn table(x: usize) { assert!(x > 0); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
