//! `hot-path-bounds-check` (warning): indexed loops in the kernel hot
//! paths.
//!
//! The vectorized-kernel backend gets its throughput from inner loops
//! that LLVM can prove in-bounds: iterate with zips/`chunks_exact`, or
//! pre-cut every slice to the loop length so the `slice[k]` checks fold
//! away. A `for i in lo..hi { … a[i] … }` over a full-length slice keeps
//! the bounds check (and its branch) on the hot path and blocks
//! vectorization. This pass flags `for`-loops inside `*_ws` / `*_upto` /
//! `*_pruned` bodies under `lockstep/`, `elastic/`, or `index/` (the
//! sublinear index tier's bound kernels sit on the same per-candidate
//! hot path) whose body indexes with the loop variable. The diagnostic
//! anchors at the first offending index expression — the line a reader
//! (and a reasoned suppression) must actually look at — and is deduped
//! per loop: one finding covers every indexed line of that loop.

use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "hot-path-bounds-check";

/// True for files holding kernel hot paths: the lock-step and elastic
/// measure implementations, and the index tier's bound kernels.
fn is_kernel_file(path: &str) -> bool {
    path.contains("lockstep") || path.contains("elastic") || path.contains("index")
}

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    if !is_kernel_file(&model.path) {
        return;
    }
    let tokens = &model.tokens;
    for f in &model.fns {
        if !(f.name.ends_with("_ws") || f.name.ends_with("_upto") || f.name.ends_with("_pruned")) {
            continue;
        }
        if model.in_test_region(f.open) {
            continue;
        }
        let mut i = f.open + 1;
        while i < f.close {
            // `for <var> in … { body }`
            if tokens[i].is_ident("for")
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("in"))
            {
                let var = tokens[i + 1].text.clone();
                // The loop body is the first `{` after the header.
                let mut open = i + 3;
                while open < f.close && !tokens[open].is_open("{") {
                    open += 1;
                }
                let close = model
                    .match_of
                    .get(open)
                    .copied()
                    .filter(|&c| c != usize::MAX && c <= f.close)
                    .unwrap_or(f.close);
                let mut hit: Option<u32> = None;
                for k in open + 1..close {
                    // `…[var` — indexing with the loop variable (possibly
                    // inside arithmetic like `a[var - 1]`).
                    if tokens[k].is_open("[")
                        && k > 0
                        && (tokens[k - 1].kind == TokenKind::Ident
                            || tokens[k - 1].is_close("]")
                            || tokens[k - 1].is_close(")"))
                        && tokens.get(k + 1).is_some_and(|t| t.is_ident(&var))
                    {
                        hit = Some(tokens[k].line);
                        break;
                    }
                }
                if let Some(index_line) = hit {
                    // Anchor at the first offending index expression (the
                    // line the fix or suppression belongs to); one
                    // diagnostic per loop.
                    out.push(Diagnostic {
                        lint: NAME,
                        severity: Severity::Warning,
                        file: model.path.clone(),
                        line: index_line,
                        message: format!(
                            "loop variable `{var}` (loop at line {}) indexes a slice \
                             inside `{}`: bounds checks stay on the kernel hot path — \
                             iterate with zips or pre-cut every slice to the loop length \
                             (suppress with a reason when the checks provably fold away)",
                            tokens[i].line, f.name
                        ),
                    });
                    // One diagnostic per flagged loop: later indexed lines
                    // and nested loops are covered by the same finding.
                    i = close.max(i + 1);
                } else {
                    // No hit at this level — descend so nested indexed
                    // loops still get their own diagnostic.
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze(path, src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    const KERNEL: &str = "crates/core/src/elastic/k.rs";

    #[test]
    fn fires_on_indexed_loops_in_kernel_hot_paths() {
        let d = run(
            KERNEL,
            "fn dtw_ws(x: &[f64]) -> f64 { let mut s = 0.0; for i in 0..x.len() { s += x[i]; } s }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
        // Index arithmetic still counts.
        assert_eq!(
            run(
                KERNEL,
                "fn f_upto(x: &[f64]) -> f64 { for j in 1..n { let v = x[j - 1]; } 0.0 }",
            )
            .len(),
            1
        );
        // `_pruned` kernels are hot paths too.
        assert_eq!(
            run(
                KERNEL,
                "fn dtw_pruned(x: &[f64]) -> f64 { for i in 0..x.len() { let v = x[i]; } 0.0 }",
            )
            .len(),
            1
        );
        // The index tier's bound kernels are kernel files too.
        assert_eq!(
            run(
                "crates/core/src/index/paa.rs",
                "fn lb_ws(x: &[f64]) -> f64 { let mut s = 0.0; for i in 0..x.len() { s += x[i]; } s }",
            )
            .len(),
            1
        );
    }

    #[test]
    fn descends_into_nested_loops_and_anchors_at_the_guilty_index() {
        // Outer loop never indexes with `d`; the inner loop indexes with
        // `k` — exactly one diagnostic, anchored at the offending index
        // expression inside the inner loop.
        let d = run(
            KERNEL,
            "fn wf_ws(x: &[f64], out: &mut [f64]) {\n\
             for d in 0..4 {\n\
             let lo = d;\n\
             for k in 0..2 {\n\
             out[k] = x[k] + lo as f64;\n\
             }\n\
             }\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
        assert!(
            d[0].message.contains("(loop at line 4)"),
            "{}",
            d[0].message
        );
        // Outer loop indexing is flagged once, at its first indexed line;
        // the nested loop is covered by the same diagnostic.
        let d = run(
            KERNEL,
            "fn wf_ws(x: &[f64], out: &mut [f64]) {\n\
             for d in 1..4 {\n\
             out[d] = x[d - 1];\n\
             for k in 0..2 {\n\
             out[k] = 0.0;\n\
             }\n\
             }\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(
            d[0].message.contains("(loop at line 2)"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn silent_outside_kernel_files_hot_fns_and_on_zips() {
        // Same code, non-kernel path.
        assert!(run(
            "crates/eval/src/runtime.rs",
            "fn f_ws(x: &[f64]) -> f64 { for i in 0..8 { let v = x[i]; } 0.0 }",
        )
        .is_empty());
        // Kernel file, cold function.
        assert!(run(
            KERNEL,
            "fn distance(x: &[f64]) -> f64 { for i in 0..8 { let v = x[i]; } 0.0 }",
        )
        .is_empty());
        // Zip iteration never indexes.
        assert!(run(
            KERNEL,
            "fn f_ws(x: &[f64], y: &[f64]) -> f64 { let mut s = 0.0; \
             for (a, b) in x.iter().zip(y) { s += a - b; } s }",
        )
        .is_empty());
        // Indexing with something other than the loop variable.
        assert!(run(
            KERNEL,
            "fn f_ws(x: &[f64]) -> f64 { for i in 0..8 { let v = x[0]; } 0.0 }",
        )
        .is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        assert!(run(
            KERNEL,
            "#[cfg(test)]\nmod t { fn fake_ws(x: &[f64]) { for i in 0..2 { let _ = x[i]; } } }",
        )
        .is_empty());
    }
}
