//! `asymmetric-float-expr`: heuristic detector for the Jeffreys bug
//! class.
//!
//! A measure whose registry entry claims `is_symmetric` must produce
//! *bit-identical* values under argument exchange. `(a / b).ln()` is
//! the canonical violation: mathematically `ln(a/b) = -ln(b/a)`, but in
//! floating point the divide-then-log rounding differs from its swap by
//! an ULP — exactly the asymmetry that survived three PRs until the
//! conformance oracle caught it dynamically in `Jeffreys`. The robust
//! spelling is `a.ln() - b.ln()`, whose swap is an exact negation.
//!
//! Scope: `lockstep_measure!` invocations not marked `asymmetric`. The
//! pass collects the closure parameter pairs (`|x, y|`, `|a, b|`),
//! follows one level of `let` aliasing (`let (ca, cb) = (clamp_pos(a),
//! clamp_pos(b));`), and fires on `(p / q).ln()` — or `safe_div(p,
//! q).ln()` — where `p`, `q` resolve to the two parameters of one
//! closure. Heuristic by design, so it reports at **warning** severity;
//! zero false positives on the current 52-measure corpus.

use crate::lexer::{Token, TokenKind};
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "asymmetric-float-expr";

/// Log-family methods whose argument-order sensitivity matters.
const LOG_METHODS: &[&str] = &["ln", "log", "log2", "log10", "ln_1p"];

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        // A `lockstep_measure!( … )` invocation. The macro *definition*
        // (`macro_rules! lockstep_measure { … }`) never matches: there
        // the ident is followed by `{`, not `!(`.
        if tokens[i].is_ident("lockstep_measure")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("!")
            && tokens[i + 2].is_open("(")
            && model.match_of[i + 2] != usize::MAX
        {
            let open = i + 2;
            let close = model.match_of[open];
            check_invocation(model, open, close, out);
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

fn check_invocation(model: &FileModel, open: usize, close: usize, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    // First meaningful token decides the variant: `asymmetric` measures
    // are allowed order-sensitive expressions.
    if tokens
        .get(open + 1)
        .is_some_and(|t| t.is_ident("asymmetric"))
    {
        return;
    }

    // Collect closure parameter pairs: `| p , q |`.
    let mut pairs: Vec<(String, String)> = Vec::new();
    for j in open + 1..close.saturating_sub(4) {
        if tokens[j].is_punct("|")
            && tokens[j + 1].kind == TokenKind::Ident
            && tokens[j + 2].is_punct(",")
            && tokens[j + 3].kind == TokenKind::Ident
            && tokens[j + 4].is_punct("|")
        {
            pairs.push((tokens[j + 1].text.clone(), tokens[j + 3].text.clone()));
        }
    }
    if pairs.is_empty() {
        return;
    }
    let is_param = |name: &str| pairs.iter().any(|(a, b)| a == name || b == name);

    // One level of aliasing: `let (u, v) = (…p…, …q…);` and
    // `let u = …p…;` where the right-hand side mentions exactly one
    // parameter. `aliases` maps alias name → parameter name.
    let mut aliases: Vec<(String, String)> = Vec::new();
    for j in open + 1..close {
        if !tokens[j].is_ident("let") {
            continue;
        }
        // Tuple form: `let ( u , v ) = ( … , … ) ;`
        if tokens[j + 1].is_open("(")
            && model.match_of[j + 1] == j + 5
            && tokens[j + 2].kind == TokenKind::Ident
            && tokens[j + 3].is_punct(",")
            && tokens[j + 4].kind == TokenKind::Ident
            && tokens.get(j + 6).is_some_and(|t| t.is_punct("="))
            && tokens.get(j + 7).is_some_and(|t| t.is_open("("))
        {
            let rhs_close = model.match_of[j + 7];
            if rhs_close == usize::MAX {
                continue;
            }
            if let Some((p1, p2)) = split_rhs_params(tokens, j + 8, rhs_close, &is_param) {
                aliases.push((tokens[j + 2].text.clone(), p1));
                aliases.push((tokens[j + 4].text.clone(), p2));
            }
            continue;
        }
        // Single form: `let u = … ;`
        if tokens[j + 1].kind == TokenKind::Ident
            && tokens.get(j + 2).is_some_and(|t| t.is_punct("="))
        {
            let mut k = j + 3;
            let mut mentioned: Vec<String> = Vec::new();
            while k < close && !tokens[k].is_punct(";") {
                if tokens[k].kind == TokenKind::Ident && is_param(&tokens[k].text) {
                    mentioned.push(tokens[k].text.clone());
                }
                k += 1;
            }
            mentioned.dedup();
            if mentioned.len() == 1 {
                aliases.push((tokens[j + 1].text.clone(), mentioned.remove(0)));
            }
        }
    }
    let resolve = |name: &str| -> Option<String> {
        if is_param(name) {
            return Some(name.to_string());
        }
        aliases
            .iter()
            .find(|(alias, _)| alias == name)
            .map(|(_, param)| param.clone())
    };
    let is_pair = |p: &str, q: &str| {
        pairs
            .iter()
            .any(|(a, b)| (a == p && b == q) || (a == q && b == p))
    };

    // Fire on `( p / q ) . ln ()` and `safe_div(p, q) . ln ()`.
    for j in open + 1..close {
        // `( ident / ident )` exactly.
        let div_pair = if tokens[j].is_open("(")
            && model.match_of[j] == j + 4
            && tokens[j + 1].kind == TokenKind::Ident
            && tokens[j + 2].is_punct("/")
            && tokens[j + 3].kind == TokenKind::Ident
        {
            Some((j + 1, j + 3, j + 4))
        } else if tokens[j].is_ident("safe_div")
            && tokens.get(j + 1).is_some_and(|t| t.is_open("("))
            && model.match_of[j + 1] == j + 5
            && tokens[j + 2].kind == TokenKind::Ident
            && tokens[j + 3].is_punct(",")
            && tokens[j + 4].kind == TokenKind::Ident
        {
            Some((j + 2, j + 4, j + 5))
        } else {
            None
        };
        let Some((lhs, rhs, close_idx)) = div_pair else {
            continue;
        };
        let log_follows = tokens.get(close_idx + 1).is_some_and(|t| t.is_punct("."))
            && tokens
                .get(close_idx + 2)
                .is_some_and(|t| LOG_METHODS.iter().any(|m| t.is_ident(m)));
        if !log_follows {
            continue;
        }
        let (Some(p), Some(q)) = (resolve(&tokens[lhs].text), resolve(&tokens[rhs].text)) else {
            continue;
        };
        if p != q && is_pair(&p, &q) {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Warning,
                file: model.path.clone(),
                line: tokens[lhs].line,
                message: format!(
                    "`({lhs_t} / {rhs_t}).{log}()` in a measure not marked `asymmetric`: \
                     divide-then-log is not bit-symmetric under argument swap (the \
                     Jeffreys one-ULP bug); write `{lhs_t}.{log}() - {rhs_t}.{log}()` \
                     or mark the measure `asymmetric`",
                    lhs_t = tokens[lhs].text,
                    rhs_t = tokens[rhs].text,
                    log = tokens[close_idx + 2].text,
                ),
            });
        }
    }
}

/// For a tuple RHS `(expr1, expr2)`, returns the parameter each side
/// mentions when each mentions exactly one (and they differ).
fn split_rhs_params(
    tokens: &[Token],
    start: usize,
    end: usize,
    is_param: &dyn Fn(&str) -> bool,
) -> Option<(String, String)> {
    let mut depth = 0usize;
    let mut comma = None;
    for (j, tok) in tokens.iter().enumerate().take(end).skip(start) {
        match tok.kind {
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => depth = depth.saturating_sub(1),
            TokenKind::Punct if depth == 0 && tok.text == "," => {
                comma = Some(j);
                break;
            }
            _ => {}
        }
    }
    let comma = comma?;
    let mentions = |a: usize, b: usize| -> Option<String> {
        let mut found: Option<String> = None;
        for t in &tokens[a..b] {
            if t.kind == TokenKind::Ident && is_param(&t.text) {
                match &found {
                    None => found = Some(t.text.clone()),
                    Some(existing) if existing == &t.text => {}
                    Some(_) => return None,
                }
            }
        }
        found
    };
    let p1 = mentions(start, comma)?;
    let p2 = mentions(comma + 1, end)?;
    if p1 == p2 {
        return None;
    }
    Some((p1, p2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze("x.rs", src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    const BUGGY: &str = r#"
lockstep_measure!(
    /// Jeffreys, as it was before the conformance oracle caught it.
    Jeffreys,
    "Jeffreys",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        (ca - cb) * (ca / cb).ln()
    })
);
"#;

    const FIXED: &str = r#"
lockstep_measure!(
    Jeffreys,
    "Jeffreys",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        (ca - cb) * (ca.ln() - cb.ln())
    })
);
"#;

    const ASYMMETRIC: &str = r#"
lockstep_measure!(
    asymmetric
    KullbackLeibler,
    "KullbackLeibler",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        a * (a / b).ln()
    })
);
"#;

    #[test]
    fn fires_on_the_historical_jeffreys_shape() {
        let d = run(BUGGY);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bit-symmetric"));
    }

    #[test]
    fn fires_on_direct_params_and_safe_div() {
        let direct = r#"lockstep_measure!(M, "M", |x, y| zip_sum(x, y, |a, b| (a / b).ln()));"#;
        assert_eq!(run(direct).len(), 1);
        let via_safe_div =
            r#"lockstep_measure!(M, "M", |x, y| zip_sum(x, y, |a, b| safe_div(a, b).ln()));"#;
        assert_eq!(run(via_safe_div).len(), 1);
    }

    #[test]
    fn silent_on_fixed_asymmetric_and_symmetric_denominators() {
        assert!(run(FIXED).is_empty());
        assert!(run(ASYMMETRIC).is_empty());
        // Topsøe-style `(2.0 * a / m)` with m = a + b: not a bare-param divide.
        let topsoe = r#"
lockstep_measure!(M, "M", |x, y| zip_sum(x, y, |a, b| {
    let m = a + b;
    a * (2.0 * a / m).ln() + b * (2.0 * b / m).ln()
}));
"#;
        assert!(run(topsoe).is_empty());
    }

    #[test]
    fn silent_outside_the_macro() {
        // Plain code with the same shape: out of scope for the heuristic.
        assert!(run("fn f(a: f64, b: f64) -> f64 { (a / b).ln() }").is_empty());
    }

    #[test]
    fn division_without_a_log_is_fine() {
        let src = r#"lockstep_measure!(M, "M", |x, y| zip_sum(x, y, |a, b| (a / b).abs()));"#;
        assert!(run(src).is_empty());
    }
}
