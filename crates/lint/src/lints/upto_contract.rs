//! `upto-contract-shape` (error): structural checks on the
//! early-abandon contract.
//!
//! Two shapes, both load-bearing for the paper's pruning claims:
//!
//! 1. **`distance_upto` overrides.** The contract (measure.rs) says an
//!    override must return exactly `distance_ws` whenever it returns at
//!    all — pruning may only stop early, never change the value. The
//!    structural evidence: either the body delegates (calls
//!    `distance_ws`, or forwards its cutoff parameter into a callee),
//!    or every top-level accumulation loop has the cutoff comparison
//!    reachable — the loop region mentions the cutoff parameter or
//!    calls a `*_upto`/`*_pruned` kernel. A loop that never sees the
//!    cutoff is either dead weight (the override prunes nothing there)
//!    or a fork from the exact path; both are contract bugs the
//!    equivalence tests only catch when the fork changes a result on
//!    sampled data.
//! 2. **Lower bounds.** Every public `lb_*` function must be referenced
//!    from an admissibility test — test code (a `#[cfg(test)]` region
//!    or an integration-test file) whose function name or file path
//!    mentions bounds/admissibility. An untested lower bound is how an
//!    inadmissible bound (one that overshoots the true distance) ships:
//!    1-NN answers silently change, which is precisely the corruption
//!    the paper's misconception studies guard against.

use crate::engine::LintConfig;
use crate::graph::WorkspaceModel;
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "upto-contract-shape";

/// Substrings marking test code as admissibility evidence (matched
/// against the containing fn name and the file path, lower-cased).
const EVIDENCE_MARKS: &[&str] = &["admissib", "bound", "lb_", "lower_bound"];

/// Top-level loop regions (`for`/`while`/`loop` at body nesting depth)
/// of a fn body: `(keyword_tok, block_open, block_close)`.
fn top_level_loops(fm: &FileModel, open: usize, close: usize) -> Vec<(usize, usize, usize)> {
    let tokens = &fm.tokens;
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // The loop body is the next `{` at the current level; the
            // header (`for x in expr`) may contain groups to skip.
            let mut j = k + 1;
            let mut body = None;
            while j < close {
                let h = &tokens[j];
                if h.is_open("{") {
                    body = Some(j);
                    break;
                }
                if h.kind == TokenKind::OpenDelim {
                    let c = fm.match_of[j];
                    if c == usize::MAX {
                        break;
                    }
                    j = c;
                }
                if h.is_punct(";") {
                    break; // malformed/`loop` label edge: bail on this one
                }
                j += 1;
            }
            if let Some(b) = body {
                let c = fm.match_of[b];
                if c != usize::MAX && c <= close {
                    out.push((k, b, c));
                    k = c + 1; // nested loops belong to this region
                    continue;
                }
            }
        }
        k += 1;
    }
    out
}

/// Whether the token range mentions ident `name`.
fn mentions(fm: &FileModel, from: usize, to: usize, name: &str) -> bool {
    fm.tokens[from..to]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == name)
}

/// Whether the token range calls a `*_upto`/`*_pruned` kernel.
fn calls_pruning_kernel(fm: &FileModel, from: usize, to: usize) -> bool {
    let tokens = &fm.tokens;
    (from..to).any(|k| {
        tokens[k].kind == TokenKind::Ident
            && (tokens[k].text.ends_with("_upto") || tokens[k].text.ends_with("_pruned"))
            && tokens.get(k + 1).is_some_and(|t| t.is_open("("))
    })
}

pub fn check(ws: &WorkspaceModel, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
    // Rule 1: distance_upto override shape.
    for (i, n) in ws.nodes.iter().enumerate() {
        if n.in_test || n.name != "distance_upto" {
            continue;
        }
        let fm = &ws.files[n.file];
        let span = &fm.fns[n.fn_idx];
        let cutoff = span
            .params
            .iter()
            .find(|p| p.contains("cutoff"))
            .or(span.params.last())
            .cloned();
        let Some(cutoff) = cutoff else { continue };
        let loops = top_level_loops(fm, span.open, span.close);
        if loops.is_empty() {
            let delegates = ws.callees[i]
                .iter()
                .any(|c| ws.nodes[c.callee].name == "distance_ws")
                || mentions(fm, span.open, span.close, "distance_ws");
            let forwards = mentions(fm, span.open, span.close, &cutoff);
            if !delegates && !forwards {
                out.push(Diagnostic {
                    lint: NAME,
                    severity: Severity::Error,
                    file: fm.path.clone(),
                    line: n.line,
                    message: format!(
                        "`{}` neither delegates to `distance_ws` nor uses its `{cutoff}` \
                         parameter: an override that ignores the cutoff cannot uphold the \
                         early-abandon contract (exact value or early stop — never a third \
                         result)",
                        ws.display_name(i)
                    ),
                });
            }
            continue;
        }
        for (kw, b_open, b_close) in loops {
            // The comparison may sit in the loop header (a live-window
            // bound derived from cutoff) or the body: scan the whole
            // region from the keyword.
            if mentions(fm, kw, b_close + 1, &cutoff) || calls_pruning_kernel(fm, kw, b_close + 1) {
                continue;
            }
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: fm.path.clone(),
                line: fm.tokens[kw].line,
                message: format!(
                    "accumulation loop in `{}` never consults `{cutoff}` and calls no \
                     `*_upto`/`*_pruned` kernel: the early-abandon contract requires the \
                     cutoff comparison to be reachable from every accumulation loop \
                     (line {} is unpruned work at best, a value fork at worst)",
                    ws.display_name(i),
                    fm.tokens[b_open].line
                ),
            });
        }
    }

    // Rule 2: public lb_* fns need admissibility-test references.
    // Evidence sites: test-region fns in lib files + every fn in the
    // integration-test corpus, qualified by fn-name/path marks.
    let mut evidence: Vec<(&FileModel, usize, usize, String)> = Vec::new(); // (file, open, close, qualifier)
    for fm in ws.files.iter().filter(|f| !f.fns.is_empty()) {
        for span in &fm.fns {
            if fm.in_test_region(span.open) {
                evidence.push((
                    fm,
                    span.open,
                    span.close,
                    format!("{}|{}", fm.path.to_lowercase(), span.name.to_lowercase()),
                ));
            }
        }
    }
    for fm in &ws.evidence {
        for span in &fm.fns {
            evidence.push((
                fm,
                span.open,
                span.close,
                format!("{}|{}", fm.path.to_lowercase(), span.name.to_lowercase()),
            ));
        }
    }
    for (i, n) in ws.nodes.iter().enumerate() {
        if n.in_test || !n.is_pub || !n.name.starts_with("lb_") {
            continue;
        }
        let covered = evidence.iter().any(|(fm, open, close, qual)| {
            EVIDENCE_MARKS.iter().any(|m| qual.contains(m)) && mentions(fm, *open, *close, &n.name)
        });
        if !covered {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: ws.files[n.file].path.clone(),
                line: n.line,
                message: format!(
                    "lower bound `{}` is referenced by no admissibility test: an untested \
                     bound can overshoot the true distance and silently corrupt 1-NN \
                     answers — add a test (named or filed under bounds/admissibility) \
                     asserting `{}(…) <= distance(…)` on generated pairs",
                    ws.display_name(i),
                    n.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run(files: &[(&str, &str)], evidence: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ev = evidence
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ws = WorkspaceModel::build(models, ev);
        let mut out = Vec::new();
        check(&ws, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn unpruned_loop_in_an_upto_override_fires() {
        let d = run(
            &[(
                "crates/core/src/lockstep/mod.rs",
                "impl Distance for Euclid {\n\
                 fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {\n\
                 let mut s = 0.0;\n\
                 for i in 0..x.len() { s += (x[i] - y[i]) * (x[i] - y[i]); }\n\
                 s.sqrt()\n\
                 }\n\
                 }\n",
            )],
            &[],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never consults `cutoff`"));
    }

    #[test]
    fn cutoff_comparison_in_the_loop_is_the_fix() {
        let d = run(
            &[(
                "crates/core/src/lockstep/mod.rs",
                "impl Distance for Euclid {\n\
                 fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {\n\
                 let lim = cutoff * cutoff;\n\
                 let mut s = 0.0;\n\
                 for i in 0..x.len() { s += (x[i] - y[i]) * (x[i] - y[i]); if s >= lim && s.sqrt() >= cutoff { return f64::INFINITY; } }\n\
                 s.sqrt()\n\
                 }\n\
                 }\n",
            )],
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn delegating_and_kernel_calling_overrides_are_clean() {
        let d = run(
            &[(
                "crates/core/src/elastic/dtw.rs",
                "impl Distance for Dtw {\n\
                 fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {\n\
                 if cutoff.is_nan() { return self.distance_ws(x, y, ws); }\n\
                 dtw_banded_pruned(x, y, self.band(), cutoff, ws).0\n\
                 }\n\
                 fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 { 0.0 }\n\
                 }\n",
            )],
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wrapper_forwarding_cutoff_without_loops_is_clean() {
        let d = run(
            &[(
                "crates/eval/src/cell.rs",
                "impl Distance for Guard {\n\
                 fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {\n\
                 self.inner.distance_upto(x, y, ws, cutoff)\n\
                 }\n\
                 }\n",
            )],
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn untested_lower_bound_fires_and_an_admissibility_test_clears_it() {
        let files = [(
            "crates/core/src/elastic/lower_bounds.rs",
            "pub fn lb_kim(x: &[f64], y: &[f64]) -> f64 { 0.0 }\n",
        )];
        let d = run(&files, &[]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("`lb_kim` is referenced by no admissibility test"));

        // An integration test in a bounds-marked file covers it.
        let d = run(
            &files,
            &[(
                "tests/lower_bound_admissibility.rs",
                "#[test]\nfn kim_is_admissible() { assert!(lb_kim(&[1.0], &[2.0]) <= 1.0); }\n",
            )],
        );
        assert!(d.is_empty(), "{d:?}");

        // So does an in-crate #[cfg(test)] fn whose *name* carries the mark.
        let d = run(
            &[(
                "crates/core/src/elastic/lower_bounds.rs",
                "pub fn lb_kim(x: &[f64], y: &[f64]) -> f64 { 0.0 }\n\
                 #[cfg(test)]\nmod tests {\n\
                 #[test]\nfn lb_kim_lower_bounds_dtw() { super::lb_kim(&[1.0], &[2.0]); }\n\
                 }\n",
            )],
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unmarked_test_references_do_not_count_as_admissibility_evidence() {
        let d = run(
            &[(
                "crates/core/src/index/paa.rs",
                "pub fn lb_paa(q: &[f64]) -> f64 { 0.0 }\n\
                 #[cfg(test)]\nmod tests {\n\
                 #[test]\nfn smoke() { super::lb_paa(&[1.0]); }\n\
                 }\n",
            )],
            &[],
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
