//! `nondeterministic-iteration`: no `std` hash collections in library
//! code.
//!
//! `HashMap`/`HashSet` iteration order varies run-to-run (SipHash is
//! randomly keyed), so any map that ever feeds rendering, journaling,
//! or statistics silently breaks the byte-identical-reports guarantee.
//! Rather than trying to prove "this map is never iterated" lexically,
//! the lint bans the types outright in scanned code: `BTreeMap` /
//! `BTreeSet` (or a sorted `Vec`) cost nothing at this scale and make
//! determinism structural. A genuinely iteration-free hash map can
//! carry a reasoned suppression.

use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "nondeterministic-iteration";

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if model.in_test_region(i) {
            continue;
        }
        if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: model.path.clone(),
                line: tok.line,
                message: format!(
                    "`{}` has nondeterministic iteration order: use `BTree{}` or a \
                     sorted Vec so results are byte-reproducible; a lookup-only map \
                     may be suppressed with the reason",
                    tokens[i].text,
                    &tokens[i].text[4..],
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze("x.rs", src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    #[test]
    fn fires_on_hash_collections() {
        assert_eq!(run("use std::collections::HashMap;").len(), 1);
        assert_eq!(
            run("fn f() { let s: HashSet<u32> = HashSet::new(); }").len(),
            2
        );
    }

    #[test]
    fn silent_on_btree_and_tests() {
        assert!(run("use std::collections::BTreeMap;").is_empty());
        assert!(run("#[cfg(test)]\nmod t { use std::collections::HashMap; }").is_empty());
    }

    #[test]
    fn message_names_the_ordered_replacement() {
        let d = run("use std::collections::HashSet;");
        assert!(d[0].message.contains("BTreeSet"));
    }
}
