//! `lock-discipline` (error): Mutex acquisition-order conflicts and
//! blocking operations under a live guard, in the concurrent crates
//! (`crates/serve`, `crates/eval`).
//!
//! Two rules over the call graph:
//!
//! 1. **Acquisition order.** Every pair "lock `a` acquired, then lock
//!    `b` acquired while `a`'s guard is live" — observed directly in a
//!    body or through a call to a function whose (transitive) lock set
//!    contains `b` — adds the edge `a → b` to a per-crate lock-order
//!    graph. A cycle in that graph is a deadlock recipe: two threads
//!    taking the same locks in different orders. Each unordered lock
//!    pair on a cycle is reported once, citing both witnessing sites.
//! 2. **Blocking under a guard.** Channel `send`/`recv`, socket/file
//!    IO, `join`, and `sleep` while a `MutexGuard` is live stall every
//!    other thread needing that lock (and can deadlock outright when
//!    the unblocking party needs it). Operations *on the guarded
//!    resource itself* (`rx.recv()` where `rx` is the guard, journal
//!    writes through the guarded writer) are the mutex's purpose and
//!    are exempt, as is the Condvar protocol (`wait` re-releases).
//!
//! Both inter-procedural passes (transitive lock sets, acquisitions
//! under a live guard through a callee) follow only *certain* call
//! edges — unique resolutions. Ambiguous method fan-out approximates
//! trait dispatch well for reachability questions, but a deadlock
//! verdict built on a maybe-edge is noise, and this lint is an error.
//!
//! Lock identity is the last field segment of the receiver
//! (`self.shared.senders.lock()` → `senders`), scoped per crate; two
//! structs in one crate sharing a field name would alias — acceptable
//! for this workspace, and documented in DESIGN §11. Both the
//! `expr.lock()` method form and the serve supervisor's poisoned-lock
//! helper `lock(&expr)` are recognized as acquisitions.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::LintConfig;
use crate::graph::WorkspaceModel;
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "lock-discipline";

/// Blocking operations in method position. `wait`/`wait_timeout` are
/// deliberately absent (Condvar protocol holds the guard by design).
const BLOCKING: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "read_exact",
    "read_line",
    "read_to_string",
    "recv",
    "recv_timeout",
    "send",
    "sleep",
    "write_all",
];

/// One acquisition in a body.
struct Acquisition {
    /// Lock identity: last field segment of the receiver.
    name: String,
    /// Token index of the acquisition anchor (the `lock` ident).
    tok: usize,
    line: u32,
    /// Guard binding name when `let`-bound (`None` for temporaries).
    guard: Option<String>,
    /// Token range the guard is live for: `(start, end)` exclusive end.
    live: (usize, usize),
}

/// Finds every acquisition in a fn body and computes guard liveness.
fn find_acquisitions(fm: &FileModel, open: usize, close: usize) -> Vec<Acquisition> {
    let tokens = &fm.tokens;
    let mut out = Vec::new();
    for k in open + 1..close {
        if !tokens[k].is_ident("lock") {
            continue;
        }
        let method = k > 0 && tokens[k - 1].is_punct(".");
        let called = tokens.get(k + 1).is_some_and(|t| t.is_open("("));
        if !called {
            continue;
        }
        let name = if method {
            // `recv.chain.lock()` — last receiver segment before `.lock`.
            if k >= 2 && tokens[k - 2].kind == TokenKind::Ident {
                tokens[k - 2].text.clone()
            } else {
                continue;
            }
        } else {
            // `lock(&expr)` helper form: last ident inside the args.
            let args_close = fm.match_of[k + 1];
            if args_close == usize::MAX {
                continue;
            }
            let mut last = None;
            for t in &tokens[k + 2..args_close] {
                if t.kind == TokenKind::Ident && t.text != "self" {
                    last = Some(t.text.clone());
                }
            }
            match last {
                Some(n) => n,
                None => continue,
            }
        };
        let guard = let_binding(fm, open, k);
        let live_end = match &guard {
            Some(g) => binding_end(fm, open, close, k, g),
            None => statement_end(fm, close, k),
        };
        out.push(Acquisition {
            name,
            tok: k,
            line: tokens[k].line,
            guard,
            live: (k, live_end),
        });
    }
    out
}

/// Walks back from the acquisition to the start of its statement; when
/// the statement is a `let`, returns the bound name.
fn let_binding(fm: &FileModel, open: usize, anchor: usize) -> Option<String> {
    let tokens = &fm.tokens;
    let mut k = anchor;
    while k > open {
        k -= 1;
        let t = &tokens[k];
        if t.is_punct(";") || t.kind == TokenKind::OpenDelim || t.kind == TokenKind::CloseDelim {
            return None;
        }
        // A lock nested in a `match`/`if` scrutinee is a temporary of
        // that statement, not what the `let` binds (`let outcome =
        // match lock(&x).get(i) { … }` binds the arm's value).
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "match" | "if" | "while") {
            return None;
        }
        if t.is_ident("let") {
            let mut j = k + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = tokens.get(j)?;
            if name.kind == TokenKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
    }
    None
}

/// Liveness end for a `let`-bound guard: the enclosing block's `}` or
/// an explicit `drop(name)`, whichever comes first.
fn binding_end(fm: &FileModel, open: usize, close: usize, anchor: usize, name: &str) -> usize {
    let tokens = &fm.tokens;
    // Innermost `{` containing the anchor bounds the binding's scope.
    let mut block_close = close;
    for (i, t) in tokens.iter().enumerate().take(anchor).skip(open) {
        if t.is_open("{") {
            let c = fm.match_of[i];
            if c != usize::MAX && c > anchor && c <= close && c < block_close {
                block_close = c;
            }
        }
    }
    for k in anchor..block_close {
        if tokens[k].is_ident("drop")
            && tokens.get(k + 1).is_some_and(|t| t.is_open("("))
            && tokens.get(k + 2).is_some_and(|t| t.is_ident(name))
        {
            return k;
        }
    }
    block_close
}

/// Liveness end for a temporary guard: the `;` closing its statement,
/// or the close of the statement's own brace block (a `for`-scrutinee
/// or `match`-scrutinee temporary lives exactly through the loop body /
/// match arms and drops with the statement — no trailing `;` required).
fn statement_end(fm: &FileModel, close: usize, anchor: usize) -> usize {
    let tokens = &fm.tokens;
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().take(close).skip(anchor) {
        match t.kind {
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
                if depth == 0 && t.is_close("}") {
                    return k;
                }
            }
            TokenKind::Punct if depth == 0 && t.text == ";" => return k,
            _ => {}
        }
    }
    close
}

/// Receiver idents of a method call at `dot_name_idx` (the method-name
/// token): walks back over `ident`, `.`, `self`, and `(...)`/`[...]`
/// groups, collecting ident segments.
fn receiver_idents(fm: &FileModel, method_tok: usize, floor: usize) -> Vec<String> {
    let tokens = &fm.tokens;
    let mut idents = Vec::new();
    let mut k = method_tok.saturating_sub(1); // the `.`
    if !tokens.get(k).is_some_and(|t| t.is_punct(".")) {
        return idents;
    }
    while k > floor {
        k -= 1;
        let t = &tokens[k];
        if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
            if !(k > floor && (tokens[k - 1].is_punct(".") || tokens[k - 1].is_punct("::"))) {
                break;
            }
            k -= 1; // step over the `.`/`::`
            continue;
        }
        if (t.is_close(")") || t.is_close("]")) && fm.match_of[k] != usize::MAX {
            k = fm.match_of[k];
            continue;
        }
        break;
    }
    idents
}

/// Per-fn direct lock summary used for the transitive fixpoint.
#[derive(Default, Clone)]
struct FnLocks {
    /// Lock names acquired anywhere in the fn.
    acquired: BTreeSet<String>,
}

pub fn check(ws: &WorkspaceModel, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    // Scope: nodes in lock-discipline files, keyed per crate.
    let in_scope: Vec<bool> = ws
        .nodes
        .iter()
        .map(|n| !n.in_test && config.lock_scope(&ws.files[n.file].path))
        .collect();

    // Pass 1: acquisitions per node + direct lock sets.
    let mut acqs: BTreeMap<usize, Vec<Acquisition>> = BTreeMap::new();
    let mut locks: Vec<FnLocks> = vec![FnLocks::default(); ws.nodes.len()];
    for (i, n) in ws.nodes.iter().enumerate() {
        if !in_scope[i] {
            continue;
        }
        let fm = &ws.files[n.file];
        let span = &fm.fns[n.fn_idx];
        let a = find_acquisitions(fm, span.open, span.close);
        for acq in &a {
            locks[i].acquired.insert(acq.name.clone());
        }
        if !a.is_empty() {
            acqs.insert(i, a);
        }
    }

    // Pass 2: transitive lock sets (fixpoint over call edges between
    // in-scope nodes).
    loop {
        let mut changed = false;
        for i in 0..ws.nodes.len() {
            if !in_scope[i] {
                continue;
            }
            let mut add: Vec<String> = Vec::new();
            for call in &ws.callees[i] {
                // Certain edges only: ambiguous method fan-out (e.g.
                // `OpenOptions::append` matching a workspace `append`)
                // must not synthesize deadlock reports.
                if !call.certain || !in_scope[call.callee] {
                    continue;
                }
                for l in &locks[call.callee].acquired {
                    if !locks[i].acquired.contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                locks[i].acquired.extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: order edges and blocking ops under live guards.
    // Edge key: (crate, first, second) → witness (fn display, file, line).
    let mut order: BTreeMap<(String, String, String), (String, String, u32)> = BTreeMap::new();
    for (&i, a_list) in &acqs {
        let n = &ws.nodes[i];
        let fm = &ws.files[n.file];
        let tokens = &fm.tokens;
        let span = &fm.fns[n.fn_idx];
        for acq in a_list {
            let (start, end) = acq.live;
            // Nested direct acquisitions while this guard is live.
            for other in a_list {
                if other.tok > start && other.tok < end && other.name != acq.name {
                    order
                        .entry((n.crate_name.clone(), acq.name.clone(), other.name.clone()))
                        .or_insert_with(|| {
                            (
                                ws.display_name(i),
                                ws.files[n.file].path.clone(),
                                other.line,
                            )
                        });
                }
            }
            // Acquisitions inside callees invoked under the guard.
            let line_lo = tokens[start].line;
            let line_hi = tokens[end.min(tokens.len() - 1)].line;
            for call in &ws.callees[i] {
                if !call.certain
                    || !in_scope[call.callee]
                    || call.line < line_lo
                    || call.line > line_hi
                {
                    continue;
                }
                for l in &locks[call.callee].acquired {
                    if *l != acq.name {
                        order
                            .entry((n.crate_name.clone(), acq.name.clone(), l.clone()))
                            .or_insert_with(|| {
                                (ws.display_name(i), ws.files[n.file].path.clone(), call.line)
                            });
                    }
                }
            }
            // Blocking operations under the guard.
            for k in start + 1..end {
                let t = &tokens[k];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let is_blocking_method = k > 0
                    && tokens[k - 1].is_punct(".")
                    && BLOCKING.contains(&t.text.as_str())
                    && tokens.get(k + 1).is_some_and(|n| n.is_open("("));
                let is_sleep_call = t.is_ident("sleep")
                    && !tokens[k - 1].is_punct(".")
                    && tokens.get(k + 1).is_some_and(|n| n.is_open("("));
                if !is_blocking_method && !is_sleep_call {
                    continue;
                }
                if is_blocking_method {
                    let recv = receiver_idents(fm, k, span.open);
                    // Ops through the guarded resource itself are the
                    // mutex's purpose.
                    if let Some(g) = &acq.guard {
                        if recv.iter().any(|r| r == g) {
                            continue;
                        }
                    }
                    // Chained directly on the acquisition:
                    // `lock(&x).send(…)` blocks on x's own channel.
                    if recv.is_empty() && k > acq.tok && k < statement_end(fm, end, acq.tok) {
                        continue;
                    }
                }
                out.push(Diagnostic {
                    lint: NAME,
                    severity: Severity::Error,
                    file: ws.files[n.file].path.clone(),
                    line: t.line,
                    message: format!(
                        "blocking `{}` while the `{}` MutexGuard ({}acquired line {}) is \
                         live in `{}`: every thread needing `{}` stalls behind this call — \
                         narrow the guard scope or drop it first",
                        t.text,
                        acq.name,
                        match &acq.guard {
                            Some(g) => format!("`{g}`, "),
                            None => String::new(),
                        },
                        acq.line,
                        ws.display_name(i),
                        acq.name
                    ),
                });
            }
        }
    }

    // Pass 4: cycles in the per-crate lock-order graph. Report each
    // unordered pair on a cycle once, citing both directions' witnesses.
    let mut adj: BTreeMap<&str, BTreeMap<&str, BTreeSet<&str>>> = BTreeMap::new();
    for (crate_name, a, b) in order.keys() {
        adj.entry(crate_name)
            .or_default()
            .entry(a)
            .or_default()
            .insert(b);
    }
    let reaches = |crate_name: &str, from: &str, to: &str| -> bool {
        let Some(g) = adj.get(crate_name) else {
            return false;
        };
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if !seen.insert(u) {
                continue;
            }
            if let Some(nexts) = g.get(u) {
                stack.extend(nexts.iter().copied());
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for ((crate_name, a, b), (fn_ab, file_ab, line_ab)) in &order {
        if !reaches(crate_name, b, a) {
            continue;
        }
        let key = if a <= b {
            (crate_name.clone(), a.clone(), b.clone())
        } else {
            (crate_name.clone(), b.clone(), a.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        // Witness for the reverse direction, when a direct one exists.
        let reverse = order.get(&(crate_name.clone(), b.clone(), a.clone()));
        let reverse_txt = match reverse {
            Some((fn_ba, file_ba, line_ba)) => {
                format!("`{b}` before `{a}` in `{fn_ba}` ({file_ba}:{line_ba})")
            }
            None => format!("a path `{b}` → … → `{a}` through callees"),
        };
        out.push(Diagnostic {
            lint: NAME,
            severity: Severity::Error,
            file: file_ab.clone(),
            line: *line_ab,
            message: format!(
                "lock-order conflict in crate `{crate_name}`: `{a}` is held when `{b}` is \
                 acquired in `{fn_ab}`, but {reverse_txt} — two threads taking these in \
                 opposite orders deadlock; pick one global order",
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ws = WorkspaceModel::build(models, Vec::new());
        let mut out = Vec::new();
        check(&ws, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn direct_inversion_is_reported_once_with_both_witnesses() {
        let d = run(&[(
            "crates/serve/src/supervisor.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lock-order conflict"));
        assert!(d[0].message.contains("`S::ab`") || d[0].message.contains("`S::ba`"));
    }

    #[test]
    fn order_through_a_callee_lock_set_is_seen() {
        let d = run(&[(
            "crates/serve/src/server.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn takes_b(&self) { let g = self.b.lock(); }\n\
             fn ab(&self) { let ga = self.a.lock(); self.takes_b(); }\n\
             fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("conflict"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = run(&[(
            "crates/serve/src/supervisor.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn one(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             fn two(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blocking_send_under_foreign_guard_fires_but_guard_ops_are_exempt() {
        let d = run(&[(
            "crates/serve/src/worker.rs",
            "use std::sync::Mutex;\n\
             fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> { m.lock().unwrap() }\n\
             pub fn worker(state: &State, reply: &Sender<u32>) {\n\
             let rx = lock(&state.rx);\n\
             let job = rx.recv();\n\
             reply.send(1);\n\
             }\n",
        )]);
        // rx.recv() is the guarded resource (exempt); reply.send is not.
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("blocking `send`"));
        assert!(d[0].message.contains("`rx` MutexGuard"));
    }

    #[test]
    fn temporary_guard_ends_at_its_statement() {
        // The send happens after the temporary guard's statement: clean.
        let d = run(&[(
            "crates/serve/src/board.rs",
            "use std::sync::Mutex;\n\
             pub fn register(entries: &Mutex<u32>, tx: &Sender<u32>) {\n\
             entries.lock();\n\
             tx.send(1);\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_ends_liveness_and_out_of_scope_crates_are_ignored() {
        let d = run(&[(
            "crates/serve/src/client.rs",
            "use std::sync::Mutex;\n\
             pub fn go(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
             let g = m.lock();\n\
             drop(g);\n\
             tx.send(1);\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
        // Identical code outside serve/eval is out of scope entirely.
        let d = run(&[(
            "crates/core/src/kernel.rs",
            "use std::sync::Mutex;\n\
             pub fn go(a: Mutex<u32>, b: Mutex<u32>) { let ga = a.lock(); let gb = b.lock(); }\n\
             pub fn og(a: Mutex<u32>, b: Mutex<u32>) { let gb = b.lock(); let ga = a.lock(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn three_lock_cycle_reports_each_pair_once() {
        let d = run(&[(
            "crates/eval/src/runner.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }\n\
             impl S {\n\
             fn ab(&self) { let x = self.a.lock(); let y = self.b.lock(); }\n\
             fn bc(&self) { let x = self.b.lock(); let y = self.c.lock(); }\n\
             fn ca(&self) { let x = self.c.lock(); let y = self.a.lock(); }\n\
             }\n",
        )]);
        // a→b→c→a: three edges on the cycle, three unordered pairs.
        assert_eq!(d.len(), 3, "{d:?}");
        for diag in &d {
            assert!(diag.message.contains("conflict"));
        }
    }
}
