//! `hot-path-alloc`: no heap allocation inside `*_ws` / `*_upto`
//! bodies.
//!
//! The workspace-threaded entry points (`distance_ws`,
//! `log_kernel_ws`, `distance_upto`, and their helpers — any function
//! whose name ends in `_ws` or `_upto`) exist precisely so the O(n²)
//! 1-NN inner loop performs zero allocations per call (PR 1's ~1.9×
//! win). A `Vec::new()` smuggled into one of these bodies silently
//! regresses every study. Scratch space must come from the
//! [`Workspace`] arena passed in.

use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "hot-path-alloc";

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for f in &model.fns {
        if !(f.name.ends_with("_ws") || f.name.ends_with("_upto")) {
            continue;
        }
        if model.in_test_region(f.open) {
            continue;
        }
        for i in f.open + 1..f.close {
            let t = &tokens[i];
            let hit: Option<String> = if (t.is_ident("Vec")
                || t.is_ident("Box")
                || t.is_ident("String"))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| {
                    n.is_ident("new") || n.is_ident("from") || n.is_ident("with_capacity")
                }) {
                Some(format!("{}::{}", t.text, tokens[i + 2].text))
            } else if (t.is_ident("vec") || t.is_ident("format"))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!("{}!", t.text))
            } else if (t.is_ident("to_vec")
                || t.is_ident("collect")
                || t.is_ident("to_owned")
                || t.is_ident("to_string")
                || t.is_ident("with_capacity"))
                && i > 0
                && tokens[i - 1].is_punct(".")
            {
                Some(format!(".{}(…)", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Diagnostic {
                    lint: NAME,
                    severity: Severity::Error,
                    file: model.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{what}` inside `{}`: workspace-threaded hot paths must be \
                         allocation-free — take scratch from the Workspace arena",
                        f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze("x.rs", src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    #[test]
    fn fires_inside_ws_and_upto_bodies() {
        assert_eq!(
            run("fn distance_ws(&self) -> f64 { let v = Vec::new(); 0.0 }").len(),
            1
        );
        assert_eq!(
            run("fn distance_upto(&self) -> f64 { let v = vec![0.0; 8]; 0.0 }").len(),
            1
        );
        assert_eq!(
            run("fn helper_ws(x: &[f64]) -> Vec<f64> { x.to_vec() }").len(),
            1
        );
        assert_eq!(
            run("fn log_kernel_ws(&self) -> f64 { let v: Vec<f64> = it.collect(); 0.0 }").len(),
            1
        );
        assert_eq!(
            run("fn f_ws(&self) -> f64 { let v = Vec::with_capacity(8); 0.0 }").len(),
            1
        );
    }

    #[test]
    fn silent_outside_hot_paths_and_on_arena_use() {
        assert!(run("fn distance(&self) -> f64 { let v = Vec::new(); 0.0 }").is_empty());
        assert!(run("fn prepare(&self) { let v = vec![1]; }").is_empty());
        assert!(run(
            "fn distance_ws(&self, ws: &mut Workspace) -> f64 { let (a, b) = ws.split(8); 0.0 }"
        )
        .is_empty());
        // Type annotations mentioning Vec do not fire — only `Vec::new`-style calls.
        assert!(run("fn distance_ws(&self, buf: &mut Vec<f64>) -> f64 { 0.0 }").is_empty());
    }

    #[test]
    fn test_region_hot_paths_are_exempt() {
        assert!(run("#[cfg(test)]\nmod t { fn fake_ws() { let v = Vec::new(); } }").is_empty());
    }
}
