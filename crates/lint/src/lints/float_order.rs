//! `float-total-order`: float comparisons must use the IEEE-754
//! totalOrder predicate, not the partial order.
//!
//! `partial_cmp().unwrap()` panics on NaN — in a 1-NN scan that is a
//! data-dependent abort — and `sort_by` closures built on it make
//! rankings NaN-fragile. `f64::total_cmp` gives the same order on
//! non-NaN data (modulo `-0.0 < +0.0`, which cannot distinguish ranked
//! accuracies) and a deterministic one otherwise. Raw `==` against a
//! float literal is flagged too: exact-zero guards are sometimes right,
//! but each one must say why (suppression with reason).

use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "float-total-order";

pub fn check(model: &FileModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if model.in_test_region(i) {
            continue;
        }
        // `.partial_cmp(` in method position.
        if tokens[i].is_ident("partial_cmp")
            && i > 0
            && (tokens[i - 1].is_punct(".") || tokens[i - 1].is_punct("::"))
            && i + 1 < tokens.len()
            && tokens[i + 1].is_open("(")
        {
            out.push(Diagnostic {
                lint: NAME,
                severity: Severity::Error,
                file: model.path.clone(),
                line: tokens[i].line,
                message: "`partial_cmp` on floats: use `f64::total_cmp` (same order on \
                          non-NaN data, deterministic on NaN, never panics)"
                    .into(),
            });
        }
        // `== 1.0` / `1.0 !=` — equality against a float literal.
        if tokens[i].kind == TokenKind::Punct && (tokens[i].text == "==" || tokens[i].text == "!=")
        {
            let neighbor_is_float = [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter_map(|j| tokens.get(j))
                .any(|t| t.kind == TokenKind::FloatLit);
            if neighbor_is_float {
                out.push(Diagnostic {
                    lint: NAME,
                    severity: Severity::Error,
                    file: model.path.clone(),
                    line: tokens[i].line,
                    message: format!(
                        "float literal compared with `{}`: exact float equality is \
                         usually a bug; if this is a deliberate exact-bit guard, \
                         suppress with the reason",
                        tokens[i].text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::analyze("x.rs", src);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    #[test]
    fn fires_on_partial_cmp() {
        assert_eq!(run("fn f() { a.partial_cmp(&b); }").len(), 1);
        assert_eq!(
            run("fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }").len(),
            1
        );
    }

    #[test]
    fn fires_on_float_literal_equality() {
        assert_eq!(run("fn f() { if x == 0.0 {} }").len(), 1);
        assert_eq!(run("fn f() { if 1.5 != y {} }").len(), 1);
    }

    #[test]
    fn silent_on_total_cmp_int_equality_and_tests() {
        assert!(run("fn f() { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
        assert!(run("fn f() { if n == 3 {} }").is_empty());
        assert!(run("fn f() { if name == \"ed\" {} }").is_empty());
        assert!(run("#[cfg(test)]\nmod t { fn f() { a.partial_cmp(&b); } }").is_empty());
    }

    #[test]
    fn silent_on_ident_named_partial_cmp_without_call() {
        assert!(run("fn f() { let partial_cmp = 3; }").is_empty());
    }
}
