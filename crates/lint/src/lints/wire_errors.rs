//! `wire-error-exhaustiveness` (error): every typed error the server
//! can construct must round-trip the wire and be exercised end-to-end.
//!
//! The serve protocol's `ErrorCode` enum is the contract between three
//! parties that the compiler cannot cross-check: the server's `label()`
//! encode arm, the client's `from_label()` decode arm, and the e2e
//! suite that proves the pair against a real socket. Rust's own
//! exhaustiveness keeps `label`/`from_label` total over the *enum*, but
//! nothing ties a variant the server actually *constructs* to an e2e
//! test observing it on the wire — PR 6 shipped `UnknownDataset` and
//! `UnknownMeasure` rejections with zero e2e coverage, and a typo'd
//! label would have reached clients as an unparseable code.
//!
//! For each variant constructed in serve library code (outside the
//! codec fns themselves), this lint requires three legs:
//!
//! 1. **encode** — the variant appears in `label()`, with its wire
//!    string extractable from the match arm;
//! 2. **decode** — the variant appears in `from_label()`;
//! 3. **e2e** — the wire string or variant name appears in the serve
//!    integration-test corpus (`crates/serve/tests/`).

use std::collections::BTreeMap;

use crate::engine::LintConfig;
use crate::graph::WorkspaceModel;
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::report::{Diagnostic, Severity};

pub const NAME: &str = "wire-error-exhaustiveness";

/// Fns that *are* the coverage legs (or derived views of them):
/// variant mentions inside them are not construction sites.
const CODEC_FNS: &[&str] = &["from_label", "is_retryable", "label"];

/// The error enum's variants: `(name, line)`, in declaration order.
fn enum_variants(fm: &FileModel) -> Vec<(String, u32)> {
    let tokens = &fm.tokens;
    let mut out = Vec::new();
    for k in 0..tokens.len() {
        if !tokens[k].is_ident("enum")
            || !tokens.get(k + 1).is_some_and(|t| t.is_ident("ErrorCode"))
        {
            continue;
        }
        let Some(open) = (k..tokens.len()).find(|&j| tokens[j].is_open("{")) else {
            continue;
        };
        let close = fm.match_of[open];
        if close == usize::MAX {
            continue;
        }
        let mut j = open + 1;
        while j < close {
            let t = &tokens[j];
            if t.is_punct("#") && tokens.get(j + 1).is_some_and(|n| n.is_open("[")) {
                let c = fm.match_of[j + 1];
                j = if c == usize::MAX { j + 2 } else { c + 1 };
                continue;
            }
            if t.kind == TokenKind::Ident {
                out.push((t.text.clone(), t.line));
                // Skip any payload `(…)`/`{…}` and the trailing comma.
                j += 1;
                if tokens
                    .get(j)
                    .is_some_and(|n| n.kind == TokenKind::OpenDelim)
                {
                    let c = fm.match_of[j];
                    j = if c == usize::MAX { j + 1 } else { c + 1 };
                }
            }
            j += 1;
        }
        return out;
    }
    out
}

/// Variant mentions (`ErrorCode::X`) in a token range, as `(name, tok)`.
fn variant_mentions(fm: &FileModel, from: usize, to: usize) -> Vec<(String, usize)> {
    let tokens = &fm.tokens;
    let mut out = Vec::new();
    for k in from..to.min(tokens.len()).saturating_sub(2) {
        if tokens[k].is_ident("ErrorCode")
            && tokens[k + 1].is_punct("::")
            && tokens[k + 2].kind == TokenKind::Ident
        {
            out.push((tokens[k + 2].text.clone(), k + 2));
        }
    }
    out
}

/// The wire string of a variant inside `label()`: the first string
/// literal after `ErrorCode::X =>`.
fn arm_string(fm: &FileModel, variant_tok: usize) -> Option<String> {
    let tokens = &fm.tokens;
    for t in tokens.iter().skip(variant_tok + 1).take(4) {
        if t.kind == TokenKind::StrLit {
            return Some(t.text.trim_matches('"').to_string());
        }
    }
    None
}

pub fn check(ws: &WorkspaceModel, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
    // Locate the enum (a serve lib file declaring `enum ErrorCode`).
    let mut variants: Vec<(String, u32)> = Vec::new();
    let mut enum_file: Option<usize> = None;
    for (fi, fm) in ws.files.iter().enumerate() {
        if !fm.path.starts_with("crates/serve/src/") {
            continue;
        }
        let v = enum_variants(fm);
        if !v.is_empty() {
            variants = v;
            enum_file = Some(fi);
            break;
        }
    }
    let Some(enum_file) = enum_file else { return };

    // Legs observed per variant.
    #[derive(Default)]
    struct Legs {
        encode: bool,
        wire: Option<String>,
        decode: bool,
        constructed_at: Option<(String, u32)>,
    }
    let mut legs: BTreeMap<&str, Legs> = variants
        .iter()
        .map(|(name, _)| (name.as_str(), Legs::default()))
        .collect();

    for fm in ws
        .files
        .iter()
        .filter(|f| f.path.starts_with("crates/serve/src/"))
    {
        // Codec fns by name, wherever they live.
        for span in &fm.fns {
            let codec = CODEC_FNS.binary_search(&span.name.as_str()).is_ok();
            for (name, tok) in variant_mentions(fm, span.open, span.close) {
                let Some(l) = legs.get_mut(name.as_str()) else {
                    continue;
                };
                if codec {
                    match span.name.as_str() {
                        "label" => {
                            l.encode = true;
                            if l.wire.is_none() {
                                l.wire = arm_string(fm, tok);
                            }
                        }
                        "from_label" => l.decode = true,
                        _ => {}
                    }
                } else if !fm.in_test_region(tok) && l.constructed_at.is_none() {
                    l.constructed_at = Some((fm.path.clone(), fm.tokens[tok].line));
                }
            }
        }
        // Mentions outside any fn (consts, statics) count as construction.
        let covered: Vec<(usize, usize)> = fm.fns.iter().map(|s| (s.open, s.close)).collect();
        for (name, tok) in variant_mentions(fm, 0, fm.tokens.len()) {
            if covered.iter().any(|&(o, c)| tok > o && tok < c) || fm.in_test_region(tok) {
                continue;
            }
            if let Some(l) = legs.get_mut(name.as_str()) {
                // Skip the declaration itself.
                if fm.path != ws.files[enum_file].path && l.constructed_at.is_none() {
                    l.constructed_at = Some((fm.path.clone(), fm.tokens[tok].line));
                }
            }
        }
    }

    // Leg 3: the serve e2e corpus.
    let e2e: Vec<&FileModel> = ws
        .evidence
        .iter()
        .filter(|f| f.path.starts_with("crates/serve/tests/"))
        .collect();
    let e2e_has = |needle: &str| {
        e2e.iter().any(|fm| {
            fm.tokens.iter().any(|t| match t.kind {
                TokenKind::Ident => t.text == needle,
                TokenKind::StrLit => t.text.trim_matches('"') == needle,
                _ => false,
            })
        })
    };

    for (name, line) in &variants {
        let l = &legs[name.as_str()];
        let Some((site_file, site_line)) = &l.constructed_at else {
            continue; // never constructed: dead-variant analysis is not this lint
        };
        let mut missing: Vec<String> = Vec::new();
        if !l.encode {
            missing.push("protocol encode (`label()`)".into());
        }
        if !l.decode {
            missing.push("client decode (`from_label()`)".into());
        }
        let tested = e2e_has(name) || l.wire.as_deref().is_some_and(&e2e_has);
        if !tested {
            missing.push(format!(
                "e2e coverage (no crates/serve/tests/ file mentions `{}`{})",
                name,
                match &l.wire {
                    Some(w) => format!(" or \"{w}\""),
                    None => String::new(),
                }
            ));
        }
        if missing.is_empty() {
            continue;
        }
        out.push(Diagnostic {
            lint: NAME,
            severity: Severity::Error,
            file: ws.files[enum_file].path.clone(),
            line: *line,
            message: format!(
                "`ErrorCode::{name}` is constructed ({site_file}:{site_line}) but missing \
                 {}: every wire-visible error needs all three legs or clients meet a code \
                 no test ever decoded",
                missing.join(", ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    const ENUM_SRC: &str = "pub enum ErrorCode { QueueFull, UnknownDataset }\n\
         impl ErrorCode {\n\
         pub fn label(self) -> &'static str {\n\
         match self { ErrorCode::QueueFull => \"queue_full\", ErrorCode::UnknownDataset => \"unknown_dataset\" }\n\
         }\n\
         pub fn from_label(l: &str) -> Option<ErrorCode> {\n\
         match l { \"queue_full\" => Some(ErrorCode::QueueFull), \"unknown_dataset\" => Some(ErrorCode::UnknownDataset), _ => None }\n\
         }\n\
         }\n";

    fn run(files: &[(&str, &str)], evidence: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ev = evidence
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        let ws = WorkspaceModel::build(models, ev);
        let mut out = Vec::new();
        check(&ws, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn constructed_variant_without_e2e_coverage_fires() {
        let d = run(
            &[
                ("crates/serve/src/protocol.rs", ENUM_SRC),
                (
                    "crates/serve/src/worker.rs",
                    "pub fn reject() -> ErrorCode { ErrorCode::UnknownDataset }\n",
                ),
            ],
            &[(
                "crates/serve/tests/e2e.rs",
                "#[test]\nfn full_queue() { assert_eq!(code, \"queue_full\"); }\n",
            )],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ErrorCode::UnknownDataset"));
        assert!(d[0].message.contains("e2e coverage"));
        assert!(d[0].message.contains("unknown_dataset"));
        assert!(d[0].file.contains("protocol.rs"), "anchored at the enum");
    }

    #[test]
    fn wire_string_in_the_e2e_suite_satisfies_the_third_leg() {
        let d = run(
            &[
                ("crates/serve/src/protocol.rs", ENUM_SRC),
                (
                    "crates/serve/src/worker.rs",
                    "pub fn reject() -> ErrorCode { ErrorCode::UnknownDataset }\n",
                ),
            ],
            &[(
                "crates/serve/tests/e2e.rs",
                "#[test]\nfn unknown() { assert_eq!(code, \"unknown_dataset\"); }\n",
            )],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_decode_arm_is_named() {
        let src = "pub enum ErrorCode { QueueFull }\n\
             impl ErrorCode {\n\
             pub fn label(self) -> &'static str { match self { ErrorCode::QueueFull => \"queue_full\" } }\n\
             pub fn from_label(l: &str) -> Option<ErrorCode> { None }\n\
             }\n";
        let d = run(
            &[
                ("crates/serve/src/protocol.rs", src),
                (
                    "crates/serve/src/worker.rs",
                    "pub fn reject() -> ErrorCode { ErrorCode::QueueFull }\n",
                ),
            ],
            &[(
                "crates/serve/tests/e2e.rs",
                "#[test]\nfn t() { let _ = \"queue_full\"; }\n",
            )],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("client decode"));
    }

    #[test]
    fn unconstructed_variants_and_test_only_mentions_are_ignored() {
        // QueueFull appears only in the codec and a #[cfg(test)] region:
        // not constructed, so no legs are demanded of it.
        let d = run(
            &[(
                "crates/serve/src/protocol.rs",
                &format!(
                    "{ENUM_SRC}#[cfg(test)]\nmod tests {{\n\
                     #[test]\nfn t() {{ let _ = ErrorCode::QueueFull; }}\n}}\n"
                ),
            )],
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
