//! The lint passes.
//!
//! Each lint is a token-level pass over a [`FileModel`] producing
//! [`Diagnostic`]s. The sixth project lint, `suppression-audit`, is not
//! here: it is engine-level (it needs the matched/unmatched state of
//! every suppression) and lives in [`crate::engine`].

use crate::model::FileModel;
use crate::report::Diagnostic;

pub mod asymmetric_expr;
pub mod float_order;
pub mod hot_path_alloc;
pub mod hot_path_bounds_check;
pub mod no_unwrap;
pub mod nondet_iter;

/// Names of every lint the engine knows, including the engine-level
/// `suppression-audit`. Suppressions naming anything else are rejected.
pub const LINT_NAMES: &[&str] = &[
    no_unwrap::NAME,
    float_order::NAME,
    nondet_iter::NAME,
    hot_path_alloc::NAME,
    hot_path_bounds_check::NAME,
    asymmetric_expr::NAME,
    crate::engine::SUPPRESSION_AUDIT,
];

/// Runs every token-level lint over one file.
pub fn run_all(model: &FileModel, no_unwrap_exempt: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !no_unwrap_exempt {
        no_unwrap::check(model, &mut out);
    }
    float_order::check(model, &mut out);
    nondet_iter::check(model, &mut out);
    hot_path_alloc::check(model, &mut out);
    hot_path_bounds_check::check(model, &mut out);
    asymmetric_expr::check(model, &mut out);
    out
}
