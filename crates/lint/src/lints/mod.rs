//! The lint passes.
//!
//! Two tiers. The *per-file* lints are token-level passes over one
//! [`FileModel`]; the *workspace* lints run over the
//! [`WorkspaceModel`](crate::graph::WorkspaceModel) call graph and see
//! every file (plus the integration-test evidence corpus) at once.
//! The engine-level `suppression-audit` is in neither list: it needs
//! the matched/unmatched state of every suppression and lives in
//! [`crate::engine`].

use crate::engine::LintConfig;
use crate::graph::WorkspaceModel;
use crate::model::FileModel;
use crate::report::Diagnostic;

pub mod asymmetric_expr;
pub mod float_order;
pub mod hot_path_alloc;
pub mod hot_path_bounds_check;
pub mod lock_discipline;
pub mod no_unwrap;
pub mod nondet_iter;
pub mod panic_reachability;
pub mod upto_contract;
pub mod wire_errors;

/// Names of every lint the engine knows, including the engine-level
/// `suppression-audit`. Suppressions naming anything else are rejected.
pub const LINT_NAMES: &[&str] = &[
    no_unwrap::NAME,
    float_order::NAME,
    nondet_iter::NAME,
    hot_path_alloc::NAME,
    hot_path_bounds_check::NAME,
    asymmetric_expr::NAME,
    panic_reachability::NAME,
    lock_discipline::NAME,
    upto_contract::NAME,
    wire_errors::NAME,
    crate::engine::SUPPRESSION_AUDIT,
];

/// Runs every per-file token-level lint over one file.
pub fn run_all(model: &FileModel, no_unwrap_exempt: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !no_unwrap_exempt {
        no_unwrap::check(model, &mut out);
    }
    float_order::check(model, &mut out);
    nondet_iter::check(model, &mut out);
    hot_path_alloc::check(model, &mut out);
    hot_path_bounds_check::check(model, &mut out);
    asymmetric_expr::check(model, &mut out);
    out
}

/// Runs every workspace (call-graph) lint.
pub fn run_workspace(ws: &WorkspaceModel, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    panic_reachability::check(ws, config, out);
    lock_discipline::check(ws, config, out);
    upto_contract::check(ws, config, out);
    wire_errors::check(ws, config, out);
}
