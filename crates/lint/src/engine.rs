//! The lint driver: file discovery, lint execution, suppression
//! matching, and the `suppression-audit` meta-lint.
//!
//! Since the flow-aware v2 the engine is two-phase: the per-file
//! token-tree lints run over each library file in isolation, then the
//! [`WorkspaceModel`] call graph is built over *all* files at once and
//! the workspace lints (panic-reachability, lock-discipline,
//! upto-contract-shape, wire-error-exhaustiveness) run over it.
//! Integration-test files ride along as *evidence* — never linted, but
//! visible to lints whose invariant is "some test covers X".

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::graph::WorkspaceModel;
use crate::lints::{self, LINT_NAMES};
use crate::model::FileModel;
use crate::report::{Diagnostic, Report, Severity, SuppressedDiagnostic};
use crate::suppress::{find_suppressions, Suppression};

/// Name of the engine-level lint auditing the suppressions themselves.
pub const SUPPRESSION_AUDIT: &str = "suppression-audit";

/// What to lint and which per-lint path exemptions apply.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes (workspace-relative, `/`-separated) skipped
    /// entirely: vendored stubs, build output, lint fixtures.
    pub skip_prefixes: Vec<String>,
    /// Path prefixes exempt from `no-unwrap-in-lib` *and*
    /// `panic-reachability`: the bench/report binaries, which
    /// abort-on-error by design.
    pub no_unwrap_exempt_prefixes: Vec<String>,
    /// Path prefixes `lock-discipline` analyzes: the crates that
    /// actually share Mutexes across threads. Everything else is out of
    /// scope (single-threaded code takes locks only in tests, if ever).
    pub lock_scope_prefixes: Vec<String>,
    /// Per-lint severity overrides (`lint-name` → severity), applied to
    /// findings before suppression matching. Lets a deployment demote a
    /// heuristic lint to warning or promote one to error without a
    /// rebuild.
    pub severity_overrides: BTreeMap<String, Severity>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            skip_prefixes: vec![
                "target/".into(),
                "compat/".into(),
                "crates/lint/tests/fixtures/".into(),
            ],
            no_unwrap_exempt_prefixes: vec!["crates/bench/".into()],
            lock_scope_prefixes: vec!["crates/serve/src/".into(), "crates/eval/src/".into()],
            severity_overrides: BTreeMap::new(),
        }
    }
}

impl LintConfig {
    fn skips(&self, rel: &str) -> bool {
        self.skip_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    fn no_unwrap_exempt(&self, rel: &str) -> bool {
        self.no_unwrap_exempt_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    /// Whether `panic-reachability` ignores this path. Shares the
    /// no-unwrap exemption list: a binary allowed to abort on error is
    /// equally allowed to assert.
    pub(crate) fn panic_exempt(&self, rel: &str) -> bool {
        self.no_unwrap_exempt(rel)
    }

    /// Whether `lock-discipline` analyzes this path.
    pub(crate) fn lock_scope(&self, rel: &str) -> bool {
        self.lock_scope_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }
}

/// One input to [`lint_files`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, forward-slash path (the diagnostic label;
    /// drives path-based exemptions and crate derivation).
    pub rel_path: String,
    pub source: String,
    /// Evidence files (integration tests) are parsed and searchable by
    /// workspace lints but produce no diagnostics of their own.
    pub evidence: bool,
}

/// Lints a file set: per-file passes over every non-evidence file, then
/// the workspace passes over the call graph of all of them together.
/// This is the single execution path — [`lint_source`] and
/// [`lint_workspace`] are wrappers.
pub fn lint_files(inputs: Vec<SourceFile>, config: &LintConfig) -> Report {
    let mut lib_models: Vec<FileModel> = Vec::new();
    let mut evidence_models: Vec<FileModel> = Vec::new();
    for f in inputs {
        if config.skips(&f.rel_path) {
            continue;
        }
        let model = FileModel::analyze(&f.rel_path, &f.source);
        if f.evidence {
            evidence_models.push(model);
        } else {
            lib_models.push(model);
        }
    }

    // Phase 1: per-file token-tree lints.
    let mut raw: Vec<Diagnostic> = Vec::new();
    for model in &lib_models {
        raw.extend(lints::run_all(model, config.no_unwrap_exempt(&model.path)));
    }

    // Phase 2: the call graph and the flow-aware lints.
    let ws = WorkspaceModel::build(lib_models, evidence_models);
    lints::run_workspace(&ws, config, &mut raw);

    // Severity overrides apply to every finding uniformly.
    for d in &mut raw {
        if let Some(sev) = config.severity_overrides.get(d.lint) {
            d.severity = *sev;
        }
    }

    let mut report = Report {
        files_scanned: ws.files.len(),
        graph: Some(ws.stats.clone()),
        ..Report::default()
    };

    // Suppression matching is per-file: parse each file's allows, match
    // findings (from either phase) by file + covered line.
    struct FileSuppressions {
        parsed: Vec<Suppression>,
        used: Vec<bool>,
    }
    let mut by_file: BTreeMap<&str, FileSuppressions> = BTreeMap::new();
    for fm in &ws.files {
        let found = find_suppressions(&fm.comments, &fm.tokens);
        for m in &found.malformed {
            report.diagnostics.push(Diagnostic {
                lint: SUPPRESSION_AUDIT,
                severity: Severity::Error,
                file: fm.path.clone(),
                line: m.line,
                message: m.message.clone(),
            });
        }
        let used = vec![false; found.parsed.len()];
        by_file.insert(
            fm.path.as_str(),
            FileSuppressions {
                parsed: found.parsed,
                used,
            },
        );
    }

    for d in raw {
        let mut hit: Option<Option<String>> = None;
        if let Some(fs) = by_file.get_mut(d.file.as_str()) {
            let found = fs
                .parsed
                .iter()
                .position(|s| s.lint == d.lint && (d.line == s.covers.0 || d.line == s.covers.1));
            if let Some(idx) = found {
                fs.used[idx] = true;
                hit = Some(fs.parsed[idx].reason.clone());
            }
        }
        match hit {
            Some(reason) => {
                report.suppressed.push(SuppressedDiagnostic {
                    lint: d.lint.to_string(),
                    file: d.file,
                    line: d.line,
                    // Reasonless allows still suppress (so the audit
                    // error below is the only new finding, not a
                    // duplicate pair); the placeholder keeps the JSON
                    // self-describing.
                    reason: reason.unwrap_or_else(|| "<missing>".into()),
                });
            }
            None => report.diagnostics.push(d),
        }
    }

    // Audit the suppressions themselves.
    for (path, fs) in &by_file {
        for (s, used) in fs.parsed.iter().zip(&fs.used) {
            audit_suppression(s, *used, path, &mut report.diagnostics);
        }
    }

    report.sort();
    report
}

/// Lints one source string. `rel_path` is the diagnostic label and
/// drives path-based exemptions. This is the unit the fixture suite
/// tests; the workspace lints see a one-file call graph.
pub fn lint_source(rel_path: &str, source: &str, config: &LintConfig) -> Report {
    lint_files(
        vec![SourceFile {
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            evidence: false,
        }],
        config,
    )
}

fn audit_suppression(s: &Suppression, used: bool, rel_path: &str, out: &mut Vec<Diagnostic>) {
    if !LINT_NAMES.contains(&s.lint.as_str()) {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "allow names unknown lint `{}` (known: {})",
                s.lint,
                LINT_NAMES.join(", ")
            ),
        });
        return;
    }
    if s.reason.is_none() {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "allow({}) without a reason: every suppression must say why it is sound",
                s.lint
            ),
        });
    }
    if !used {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Warning,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "stale suppression: allow({}) matches no finding on its line or the next \
                 code line — delete it or move it next to the violation",
                s.lint
            ),
        });
    }
}

/// Lints every library source file under `root` (the workspace
/// directory): `src/` and `crates/*/src/`. Integration-test files
/// (`tests/` and `crates/*/tests/`) are collected as evidence — never
/// linted, but searched by the workspace lints for coverage facts.
/// `compat/` is vendored and skipped.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut evidence: Vec<PathBuf> = Vec::new();
    collect_rs_files(&root.join("src"), &mut files)?;
    collect_rs_files(&root.join("tests"), &mut evidence)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs_files(&dir.join("src"), &mut files)?;
        collect_rs_files(&dir.join("tests"), &mut evidence)?;
    }
    files.sort();
    evidence.sort();

    let mut inputs: Vec<SourceFile> = Vec::new();
    for (list, is_evidence) in [(&files, false), (&evidence, true)] {
        for file in list {
            let rel = relative_label(root, file);
            if config.skips(&rel) {
                continue;
            }
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            inputs.push(SourceFile {
                rel_path: rel,
                source,
                evidence: is_evidence,
            });
        }
    }
    Ok(lint_files(inputs, config))
}

/// Recursively collects `*.rs` files; a missing directory is fine.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, forward-slash path label.
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut label = String::new();
    for component in rel.components() {
        if !label.is_empty() {
            label.push('/');
        }
        label.push_str(&component.as_os_str().to_string_lossy());
    }
    label
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root found above {} (looked for Cargo.toml with [workspace])",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn suppressed_finding_moves_to_the_suppressed_list() {
        let src =
            "fn f() { x.unwrap(); } // tsdist-lint: allow(no-unwrap-in-lib, reason = \"demo\")\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "demo");
    }

    #[test]
    fn standalone_suppression_covers_following_line() {
        let src =
            "// tsdist-lint: allow(no-unwrap-in-lib, reason = \"demo\")\nfn f() { x.unwrap(); }\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn reasonless_allow_suppresses_but_errors() {
        let src = "fn f() { x.unwrap(); } // tsdist-lint: allow(no-unwrap-in-lib)\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].lint, SUPPRESSION_AUDIT);
        assert!(r.diagnostics[0].message.contains("without a reason"));
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn stale_allow_warns() {
        let src = "// tsdist-lint: allow(no-unwrap-in-lib, reason = \"nothing here\")\nfn f() {}\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.warnings(), 1);
        assert!(r.diagnostics[0].message.contains("stale suppression"));
    }

    #[test]
    fn unknown_lint_name_errors() {
        let src = "// tsdist-lint: allow(no-such-lint, reason = \"oops\")\nfn f() {}\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.errors(), 1);
        assert!(r.diagnostics[0].message.contains("unknown lint"));
    }

    #[test]
    fn a_suppression_only_silences_its_own_lint() {
        let src = "fn f() { x.unwrap(); } // tsdist-lint: allow(float-total-order, reason = \"wrong lint\")\n";
        let r = lint_source("lib.rs", src, &cfg());
        // The unwrap still fires, and the allow is stale.
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn bench_paths_skip_no_unwrap_only() {
        let src = "fn f() { x.unwrap(); a.partial_cmp(&b); }\n";
        let r = lint_source("crates/bench/src/bin/table9.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, "float-total-order");
    }

    #[test]
    fn workspace_lints_run_and_suppress_across_the_file_set() {
        // A cross-file panic chain: the finding (from the workspace
        // phase) lands on entry.rs and a suppression there silences it;
        // the assert site itself also fires, un-suppressed.
        let inputs = vec![
            SourceFile {
                rel_path: "crates/cli/src/entry.rs".into(),
                source: "// tsdist-lint: allow(panic-reachability, reason = \"top-level CLI: aborting on a bad spec is the UX\")\n\
                         pub fn entry(x: usize) { tsdist_core::helper(x); }\n"
                    .into(),
                evidence: false,
            },
            SourceFile {
                rel_path: "crates/core/src/lib.rs".into(),
                source: "pub fn helper(x: usize) { assert!(x > 0); }\n".into(),
                evidence: false,
            },
        ];
        let r = lint_files(inputs, &cfg());
        assert_eq!(r.suppressed.len(), 1, "{r:?}");
        assert_eq!(r.suppressed[0].lint, "panic-reachability");
        assert_eq!(r.diagnostics.len(), 1, "{r:?}");
        assert!(r.diagnostics[0].file.contains("core"));
    }

    #[test]
    fn evidence_files_are_not_linted() {
        let inputs = vec![SourceFile {
            rel_path: "crates/serve/tests/e2e.rs".into(),
            source: "fn t() { x.unwrap(); let m = std::collections::HashMap::new(); }\n".into(),
            evidence: true,
        }];
        let r = lint_files(inputs, &cfg());
        assert!(r.diagnostics.is_empty(), "{r:?}");
        assert_eq!(r.files_scanned, 0);
    }

    #[test]
    fn severity_overrides_apply_before_denial() {
        let mut config = cfg();
        config
            .severity_overrides
            .insert("no-unwrap-in-lib".into(), Severity::Warning);
        let r = lint_source("lib.rs", "fn f() { x.unwrap(); }\n", &config);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn workspace_root_discovery_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
