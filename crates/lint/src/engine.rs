//! The lint driver: file discovery, lint execution, suppression
//! matching, and the `suppression-audit` meta-lint.

use std::path::{Path, PathBuf};

use crate::lints::{self, LINT_NAMES};
use crate::model::FileModel;
use crate::report::{Diagnostic, Report, Severity, SuppressedDiagnostic};
use crate::suppress::{find_suppressions, Suppression};

/// Name of the engine-level lint auditing the suppressions themselves.
pub const SUPPRESSION_AUDIT: &str = "suppression-audit";

/// What to lint and which per-lint path exemptions apply.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes (workspace-relative, `/`-separated) skipped
    /// entirely: vendored stubs, build output, lint fixtures.
    pub skip_prefixes: Vec<String>,
    /// Path prefixes exempt from `no-unwrap-in-lib`: the bench/report
    /// binaries, which abort-on-error by design.
    pub no_unwrap_exempt_prefixes: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            skip_prefixes: vec![
                "target/".into(),
                "compat/".into(),
                "crates/lint/tests/fixtures/".into(),
            ],
            no_unwrap_exempt_prefixes: vec!["crates/bench/".into()],
        }
    }
}

impl LintConfig {
    fn skips(&self, rel: &str) -> bool {
        self.skip_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    fn no_unwrap_exempt(&self, rel: &str) -> bool {
        self.no_unwrap_exempt_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }
}

/// Lints one source string. `rel_path` is the diagnostic label and
/// drives path-based exemptions. This is the unit the fixture suite
/// tests; [`lint_workspace`] folds it over the tree.
pub fn lint_source(rel_path: &str, source: &str, config: &LintConfig) -> Report {
    let model = FileModel::analyze(rel_path, source);
    let raw = lints::run_all(&model, config.no_unwrap_exempt(rel_path));
    let suppressions = find_suppressions(&model.comments, &model.tokens);

    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };

    // Malformed suppressions are always errors.
    for m in &suppressions.malformed {
        report.diagnostics.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: m.line,
            message: m.message.clone(),
        });
    }

    // Match each finding against the suppressions.
    let mut used = vec![false; suppressions.parsed.len()];
    for d in raw {
        let hit = suppressions
            .parsed
            .iter()
            .enumerate()
            .find(|(_, s)| s.lint == d.lint && (d.line == s.covers.0 || d.line == s.covers.1));
        match hit {
            Some((idx, s)) => {
                used[idx] = true;
                report.suppressed.push(SuppressedDiagnostic {
                    lint: d.lint.to_string(),
                    file: d.file,
                    line: d.line,
                    // Reasonless allows still suppress (so the audit
                    // error below is the only new finding, not a
                    // duplicate pair); the placeholder keeps the JSON
                    // self-describing.
                    reason: s.reason.clone().unwrap_or_else(|| "<missing>".into()),
                });
            }
            None => report.diagnostics.push(d),
        }
    }

    // Audit the suppressions themselves.
    for (s, used) in suppressions.parsed.iter().zip(&used) {
        audit_suppression(s, *used, rel_path, &mut report.diagnostics);
    }

    report.sort();
    report
}

fn audit_suppression(s: &Suppression, used: bool, rel_path: &str, out: &mut Vec<Diagnostic>) {
    if !LINT_NAMES.contains(&s.lint.as_str()) {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "allow names unknown lint `{}` (known: {})",
                s.lint,
                LINT_NAMES.join(", ")
            ),
        });
        return;
    }
    if s.reason.is_none() {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "allow({}) without a reason: every suppression must say why it is sound",
                s.lint
            ),
        });
    }
    if !used {
        out.push(Diagnostic {
            lint: SUPPRESSION_AUDIT,
            severity: Severity::Warning,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "stale suppression: allow({}) matches no finding on its line or the next \
                 code line — delete it or move it next to the violation",
                s.lint
            ),
        });
    }
}

/// Lints every library source file under `root` (the workspace
/// directory): `src/` and `crates/*/src/`. Integration tests and bench
/// suites are out of scope — the invariants are library invariants —
/// and `compat/` is vendored.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs_files(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for file in files {
        let rel = relative_label(root, &file);
        if config.skips(&rel) {
            continue;
        }
        let source = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let file_report = lint_source(&rel, &source, config);
        report.files_scanned += 1;
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed.extend(file_report.suppressed);
    }
    report.sort();
    Ok(report)
}

/// Recursively collects `*.rs` files; a missing directory is fine.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, forward-slash path label.
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut label = String::new();
    for component in rel.components() {
        if !label.is_empty() {
            label.push('/');
        }
        label.push_str(&component.as_os_str().to_string_lossy());
    }
    label
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root found above {} (looked for Cargo.toml with [workspace])",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn suppressed_finding_moves_to_the_suppressed_list() {
        let src =
            "fn f() { x.unwrap(); } // tsdist-lint: allow(no-unwrap-in-lib, reason = \"demo\")\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "demo");
    }

    #[test]
    fn standalone_suppression_covers_following_line() {
        let src =
            "// tsdist-lint: allow(no-unwrap-in-lib, reason = \"demo\")\nfn f() { x.unwrap(); }\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn reasonless_allow_suppresses_but_errors() {
        let src = "fn f() { x.unwrap(); } // tsdist-lint: allow(no-unwrap-in-lib)\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].lint, SUPPRESSION_AUDIT);
        assert!(r.diagnostics[0].message.contains("without a reason"));
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn stale_allow_warns() {
        let src = "// tsdist-lint: allow(no-unwrap-in-lib, reason = \"nothing here\")\nfn f() {}\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.warnings(), 1);
        assert!(r.diagnostics[0].message.contains("stale suppression"));
    }

    #[test]
    fn unknown_lint_name_errors() {
        let src = "// tsdist-lint: allow(no-such-lint, reason = \"oops\")\nfn f() {}\n";
        let r = lint_source("lib.rs", src, &cfg());
        assert_eq!(r.errors(), 1);
        assert!(r.diagnostics[0].message.contains("unknown lint"));
    }

    #[test]
    fn a_suppression_only_silences_its_own_lint() {
        let src = "fn f() { x.unwrap(); } // tsdist-lint: allow(float-total-order, reason = \"wrong lint\")\n";
        let r = lint_source("lib.rs", src, &cfg());
        // The unwrap still fires, and the allow is stale.
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn bench_paths_skip_no_unwrap_only() {
        let src = "fn f() { x.unwrap(); a.partial_cmp(&b); }\n";
        let r = lint_source("crates/bench/src/bin/table9.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, "float-total-order");
    }

    #[test]
    fn workspace_root_discovery_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
