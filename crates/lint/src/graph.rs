//! The workspace function call graph.
//!
//! [`WorkspaceModel::build`] takes every analyzed library file, derives
//! each file's crate and module path, qualifies every `fn` span with
//! its inline-`mod` chain and `impl`/`trait` type, extracts call sites
//! from every non-test body, and resolves them against the workspace
//! using [`crate::resolve`]. The result is a node/edge graph with
//! per-site resolution accounting ([`GraphStats`]) — the flow lints
//! (`panic-reachability`, `lock-discipline`, `upto-contract-shape`,
//! `wire-error-exhaustiveness`) all run over this structure.
//!
//! Resolution is approximate by design (no types, no trait solving);
//! the accounting keeps the approximation honest: a call site is
//! *resolved* (unique or small-ambiguity, edges to every candidate),
//! *unresolved* (workspace candidates exist but could not be narrowed),
//! *external* (no workspace candidate — std, enum constructors), or
//! *std-shadowed* (method name like `len`/`push`/`lock` that std owns
//! in practice; edges would be mostly false, so none are built).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::model::FileModel;
use crate::resolve::{build_use_map, crate_and_module, is_std_shadowed, UseMap};

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`WorkspaceModel::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Derived crate name (`tsdist_core`, …; binaries get `@`-suffixed
    /// names that never match path roots).
    pub crate_name: String,
    /// Module path inside the crate, including inline `mod` blocks.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, when any.
    pub type_name: Option<String>,
    pub name: String,
    pub is_pub: bool,
    pub in_test: bool,
    pub has_panics_doc: bool,
    /// Line of the `fn` keyword (diagnostic anchor).
    pub line: u32,
}

/// One resolved call edge out of a node.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    pub callee: usize,
    /// Line of the call site in the caller's file.
    pub line: u32,
    /// True when the site resolved to exactly one candidate; ambiguous
    /// sites fan out to every candidate with `certain: false`.
    pub certain: bool,
}

/// Per-site resolution accounting for the whole workspace.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    /// Call sites resolved to exactly one workspace target.
    pub resolved_unique: usize,
    /// Call sites resolved heuristically to a small candidate set
    /// (edges to each — approximates trait dispatch).
    pub resolved_ambiguous: usize,
    /// Sites with workspace candidates that could not be narrowed.
    pub unresolved: usize,
    /// Sites with no workspace candidate (std, constructors, macros).
    pub external: usize,
    /// Method names shadowed by std (`len`, `lock`, …): no edges built.
    pub std_shadowed: usize,
}

impl GraphStats {
    /// Percentage of intra-workspace call sites that resolved. The
    /// denominator is sites with workspace candidates (`resolved` +
    /// `unresolved`); external and std-shadowed sites are out of scope.
    pub fn resolution_pct(&self) -> f64 {
        let resolved = self.resolved_unique + self.resolved_ambiguous;
        let denom = resolved + self.unresolved;
        if denom == 0 {
            100.0
        } else {
            resolved as f64 * 100.0 / denom as f64
        }
    }
}

/// The analyzed workspace: lint-scope files, evidence-only files
/// (integration tests), and the call graph over the former.
#[derive(Debug)]
pub struct WorkspaceModel {
    pub files: Vec<FileModel>,
    /// Test-suite files used as *evidence* by contract lints (never
    /// linted themselves).
    pub evidence: Vec<FileModel>,
    pub nodes: Vec<FnNode>,
    /// `callees[n]` — resolved outgoing calls of node `n`.
    pub callees: Vec<Vec<Call>>,
    /// `callers[n]` — nodes with an edge into `n`.
    pub callers: Vec<Vec<usize>>,
    pub stats: GraphStats,
}

/// Enclosing-context kind for a token interval.
enum Ctx {
    Mod(String),
    Type(String),
}

struct CtxSpan {
    open: usize,
    close: usize,
    ctx: Ctx,
}

impl WorkspaceModel {
    /// Builds the graph. `files` are lint-scope sources; `evidence` are
    /// test-suite sources kept for contract-evidence scans.
    pub fn build(files: Vec<FileModel>, evidence: Vec<FileModel>) -> WorkspaceModel {
        // Crate dirs that have a lib.rs: their main.rs/bin files are
        // separate binary crates.
        let mut lib_dirs: BTreeSet<String> = BTreeSet::new();
        for f in &files {
            if let Some(rest) = f.path.strip_prefix("crates/") {
                if let Some((dir, tail)) = rest.split_once('/') {
                    if tail == "src/lib.rs" {
                        lib_dirs.insert(dir.to_string());
                    }
                }
            }
        }

        // Nodes, with per-file context qualification.
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut file_crates: Vec<Option<(String, Vec<String>)>> = Vec::new();
        for (fi, fm) in files.iter().enumerate() {
            let derived = crate_and_module(&fm.path, &lib_dirs);
            file_crates.push(derived.clone());
            let Some((crate_name, base_module)) = derived else {
                continue;
            };
            let spans = context_spans(&fm.tokens, &fm.match_of);
            for (gi, f) in fm.fns.iter().enumerate() {
                let mut module = base_module.clone();
                let mut type_name = None;
                // Innermost-last: spans are in open order, so later
                // matching spans are deeper.
                for s in &spans {
                    if s.open < f.fn_tok && f.fn_tok < s.close {
                        match &s.ctx {
                            Ctx::Mod(name) => module.push(name.clone()),
                            Ctx::Type(name) => type_name = Some(name.clone()),
                        }
                    }
                }
                let idx = nodes.len();
                node_of.insert((fi, gi), idx);
                nodes.push(FnNode {
                    file: fi,
                    fn_idx: gi,
                    crate_name: crate_name.clone(),
                    module,
                    type_name,
                    name: f.name.clone(),
                    is_pub: f.is_pub,
                    in_test: fm.in_test_region(f.fn_tok),
                    has_panics_doc: f.has_panics_doc,
                    line: fm.tokens[f.fn_tok].line,
                });
            }
        }

        // Indexes for resolution: callable nodes only (test fns are
        // neither candidates nor call-extraction roots).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut crate_roots: BTreeSet<&str> = BTreeSet::new();
        for (i, n) in nodes.iter().enumerate() {
            if !n.in_test {
                by_name.entry(n.name.as_str()).or_default().push(i);
            }
            if !n.crate_name.contains('@') {
                crate_roots.insert(n.crate_name.as_str());
            }
        }

        let mut stats = GraphStats {
            nodes: nodes.len(),
            ..GraphStats::default()
        };
        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut callees: Vec<Vec<Call>> = vec![Vec::new(); nodes.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];

        // Per-file use maps, then call extraction + resolution.
        let mut use_maps: Vec<UseMap> = Vec::new();
        for (fi, fm) in files.iter().enumerate() {
            let map = match &file_crates[fi] {
                Some((crate_name, module)) => build_use_map(&fm.tokens, crate_name, module),
                None => UseMap::default(),
            };
            use_maps.push(map);
        }

        let resolver = Resolver {
            nodes: &nodes,
            by_name: &by_name,
            crate_roots: &crate_roots,
        };
        for caller in 0..nodes.len() {
            let n = &nodes[caller];
            if n.in_test {
                continue;
            }
            let fm = &files[n.file];
            let span = &fm.fns[n.fn_idx];
            // Child fn definitions inside this body own their calls.
            let children: Vec<(usize, usize)> = fm
                .fns
                .iter()
                .filter(|g| g.open > span.open && g.close < span.close)
                .map(|g| (g.open, g.close))
                .collect();
            let sites = extract_calls(&fm.tokens, span.open + 1, span.close, &children);
            let ctx = SiteCtx {
                crate_name: &n.crate_name,
                module: &n.module,
                type_name: n.type_name.as_deref(),
                use_map: &use_maps[n.file],
            };
            for site in sites {
                let res = match site.kind {
                    SiteKind::Path(segs) => resolver.resolve_path(&segs, &ctx),
                    SiteKind::Method {
                        name,
                        receiver_is_self,
                    } => resolver.resolve_method(&name, receiver_is_self, &ctx),
                };
                match res {
                    Resolution::Hits(hits) => {
                        let certain = hits.len() == 1;
                        if certain {
                            stats.resolved_unique += 1;
                        } else {
                            stats.resolved_ambiguous += 1;
                        }
                        for callee in hits {
                            if callee != caller && edge_set.insert((caller, callee)) {
                                callees[caller].push(Call {
                                    callee,
                                    line: site.line,
                                    certain,
                                });
                                callers[callee].push(caller);
                            }
                        }
                    }
                    Resolution::Unresolved => stats.unresolved += 1,
                    Resolution::External => stats.external += 1,
                    Resolution::Shadowed => stats.std_shadowed += 1,
                }
            }
        }
        stats.edges = edge_set.len();

        WorkspaceModel {
            files,
            evidence,
            nodes,
            callees,
            callers,
            stats,
        }
    }

    /// Node index for `(file, fn_idx)`, when the file was qualifiable.
    pub fn node_at(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.fn_idx == fn_idx)
    }

    /// `Type::name` (or bare `name`) for diagnostics.
    pub fn display_name(&self, n: usize) -> String {
        let node = &self.nodes[n];
        match &node.type_name {
            Some(t) => format!("{t}::{}", node.name),
            None => node.name.clone(),
        }
    }
}

/// Finds `mod name { … }`, `impl … { … }`, and `trait Name … { … }`
/// token intervals, in opening order (outer before inner).
fn context_spans(tokens: &[Token], match_of: &[usize]) -> Vec<CtxSpan> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.is_ident("mod") {
            let Some(name) = tokens.get(i + 1) else {
                continue;
            };
            if name.kind != TokenKind::Ident {
                continue;
            }
            // `mod name;` declares an out-of-line module — no interval.
            if let Some(open) = tokens.get(i + 2) {
                if open.is_open("{") && match_of[i + 2] != usize::MAX {
                    spans.push(CtxSpan {
                        open: i + 2,
                        close: match_of[i + 2],
                        ctx: Ctx::Mod(name.text.clone()),
                    });
                }
            }
        } else if t.is_ident("impl") {
            if let Some((open, name)) = impl_header(tokens, match_of, i) {
                spans.push(CtxSpan {
                    open,
                    close: match_of[open],
                    ctx: Ctx::Type(name),
                });
            }
        } else if t.is_ident("trait") {
            let Some(name) = tokens.get(i + 1) else {
                continue;
            };
            if name.kind != TokenKind::Ident {
                continue;
            }
            let mut j = i + 2;
            while j < tokens.len() {
                if tokens[j].is_punct(";") {
                    break;
                }
                if tokens[j].is_open("{") {
                    if match_of[j] != usize::MAX {
                        spans.push(CtxSpan {
                            open: j,
                            close: match_of[j],
                            ctx: Ctx::Type(name.text.clone()),
                        });
                    }
                    break;
                }
                if tokens[j].kind == TokenKind::OpenDelim && match_of[j] != usize::MAX {
                    j = match_of[j] + 1;
                    continue;
                }
                j += 1;
            }
        }
    }
    spans.sort_by_key(|s| s.open);
    spans
}

/// Parses an `impl` header starting at token `i` (`impl`): returns the
/// body `{` index and the Self-type name. For `impl Trait for Type` the
/// type after `for` wins; `where` clauses are cut; generics are skipped
/// by angle-depth.
fn impl_header(tokens: &[Token], match_of: &[usize], i: usize) -> Option<(usize, String)> {
    let mut j = i + 1;
    let mut body = None;
    while j < tokens.len() {
        if tokens[j].is_punct(";") {
            return None;
        }
        if tokens[j].is_open("{") {
            if match_of[j] == usize::MAX {
                return None;
            }
            body = Some(j);
            break;
        }
        if tokens[j].kind == TokenKind::OpenDelim && match_of[j] != usize::MAX {
            j = match_of[j] + 1;
            continue;
        }
        j += 1;
    }
    let body = body?;
    // Region of interest: after the last top-level `for` (skipping
    // HRTB `for<…>`), cut at `where`.
    let mut start = i + 1;
    let mut end = body;
    let mut angle = 0i32;
    for k in i + 1..body {
        match tokens[k].text.as_str() {
            "<" if tokens[k].kind == TokenKind::Punct => angle += 1,
            ">" if tokens[k].kind == TokenKind::Punct => angle -= 1,
            ">>" if tokens[k].kind == TokenKind::Punct => angle -= 2,
            "for"
                if tokens[k].kind == TokenKind::Ident
                    && angle <= 0
                    && !tokens.get(k + 1).is_some_and(|t| t.is_punct("<")) =>
            {
                start = k + 1;
            }
            "where" if tokens[k].kind == TokenKind::Ident && angle <= 0 => {
                end = k;
                break;
            }
            _ => {}
        }
    }
    // Last ident at angle-depth 0 in the region is the type name.
    let mut angle = 0i32;
    let mut name = None;
    for t in &tokens[start..end] {
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => angle += 1,
            ">" if t.kind == TokenKind::Punct => angle -= 1,
            ">>" if t.kind == TokenKind::Punct => angle -= 2,
            _ => {
                if t.kind == TokenKind::Ident
                    && angle <= 0
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const")
                {
                    name = Some(t.text.clone());
                }
            }
        }
    }
    name.map(|n| (body, n))
}

/// One extracted call site, pre-resolution.
struct CallSite {
    kind: SiteKind,
    line: u32,
}

enum SiteKind {
    /// `a::b::c(…)` or bare `c(…)`.
    Path(Vec<String>),
    /// `.name(…)`.
    Method {
        name: String,
        receiver_is_self: bool,
    },
}

/// Idents that start statements/expressions but never calls when
/// directly followed by `(`; `self`/`Self`/`crate`/`super` are allowed
/// through when they begin a `::` path.
fn is_call_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "while"
            | "loop"
            | "for"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "const"
            | "static"
            | "type"
            | "mod"
            | "use"
            | "pub"
            | "fn"
            | "dyn"
            | "unsafe"
            | "async"
            | "await"
            | "box"
            | "yield"
            | "true"
            | "false"
            | "self"
            | "Self"
            | "crate"
            | "super"
    )
}

/// Skips a turbofish/generic `<…>` starting at the `<` token; returns
/// the index just past the closing `>`, or `None` when unbalanced.
fn skip_angles(tokens: &[Token], start: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = start;
    while k < limit {
        match tokens[k].text.as_str() {
            "<" if tokens[k].kind == TokenKind::Punct => depth += 1,
            "<<" if tokens[k].kind == TokenKind::Punct => depth += 2,
            ">" if tokens[k].kind == TokenKind::Punct => depth -= 1,
            ">>" if tokens[k].kind == TokenKind::Punct => depth -= 2,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            return Some(k);
        }
    }
    None
}

/// Extracts call sites from a token range, skipping `skip` child-fn
/// body intervals.
fn extract_calls(
    tokens: &[Token],
    from: usize,
    to: usize,
    skip: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut k = from;
    'outer: while k < to {
        for &(o, c) in skip {
            if k >= o && k <= c {
                k = c + 1;
                continue 'outer;
            }
        }
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        // Macro invocation: the name is not a call (arguments are still
        // scanned as ordinary tokens on later iterations).
        if tokens.get(k + 1).is_some_and(|n| n.is_punct("!")) {
            k += 2;
            continue;
        }
        let prev_dot = k > 0 && tokens[k - 1].is_punct(".");
        if prev_dot {
            // `.name(` or `.name::<…>(` — method call.
            let args = if tokens.get(k + 1).is_some_and(|n| n.is_open("(")) {
                true
            } else if tokens.get(k + 1).is_some_and(|n| n.is_punct("::"))
                && tokens.get(k + 2).is_some_and(|n| n.is_punct("<"))
            {
                skip_angles(tokens, k + 2, to)
                    .is_some_and(|after| tokens.get(after).is_some_and(|n| n.is_open("(")))
            } else {
                false
            };
            if args {
                let receiver_is_self = k >= 2
                    && tokens[k - 2].is_ident("self")
                    && !(k >= 3 && tokens[k - 3].is_punct("."));
                out.push(CallSite {
                    kind: SiteKind::Method {
                        name: t.text.clone(),
                        receiver_is_self,
                    },
                    line: t.line,
                });
            }
            k += 1;
            continue;
        }
        if k > 0 && tokens[k - 1].is_punct("::") {
            // Mid-path ident whose path head was not an ident
            // (`<T as Trait>::m`): skip, counted nowhere.
            k += 1;
            continue;
        }
        if k > 0 && tokens[k - 1].is_ident("fn") {
            k += 1;
            continue;
        }
        let path_head = matches!(t.text.as_str(), "self" | "Self" | "crate" | "super")
            && tokens.get(k + 1).is_some_and(|n| n.is_punct("::"));
        if is_call_keyword(&t.text) && !path_head {
            k += 1;
            continue;
        }
        // Collect the `::`-path.
        let mut segs = vec![t.text.clone()];
        let mut j = k + 1;
        while j + 1 < to
            && tokens[j].is_punct("::")
            && tokens[j + 1].kind == TokenKind::Ident
            && tokens[j + 1].text != "as"
        {
            segs.push(tokens[j + 1].text.clone());
            j += 2;
        }
        // Optional trailing turbofish, then the argument `(`.
        let mut call = tokens.get(j).is_some_and(|n| n.is_open("("));
        if !call
            && tokens.get(j).is_some_and(|n| n.is_punct("::"))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct("<"))
        {
            if let Some(after) = skip_angles(tokens, j + 1, to) {
                call = tokens.get(after).is_some_and(|n| n.is_open("("));
            }
        }
        if call {
            out.push(CallSite {
                kind: SiteKind::Path(segs),
                line: t.line,
            });
        }
        k = j.max(k + 1);
    }
    out
}

/// Where a call site sits, for resolution.
struct SiteCtx<'a> {
    crate_name: &'a str,
    module: &'a [String],
    type_name: Option<&'a str>,
    use_map: &'a UseMap,
}

/// Outcome of resolving one call site.
enum Resolution {
    /// Workspace targets (singleton = certain).
    Hits(Vec<usize>),
    Unresolved,
    External,
    Shadowed,
}

/// Maximum candidate-set size a heuristic resolution may fan out to;
/// larger sets (e.g. a method name every impl shares) are unresolved
/// for path calls, but method calls approximate trait dispatch and get
/// a higher cap.
const PATH_AMBIG_CAP: usize = 3;
const METHOD_AMBIG_CAP: usize = 32;

struct Resolver<'a> {
    nodes: &'a [FnNode],
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    crate_roots: &'a BTreeSet<&'a str>,
}

impl<'a> Resolver<'a> {
    fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Exact match of an absolute path `[crate, mods…, name]`, trying
    /// both free-fn (`mods` is the module path) and associated-fn
    /// (`mods[..-1]` module + `mods[-1]` type) interpretations.
    fn exact(&self, path: &[String]) -> Vec<usize> {
        let Some((name, prefix)) = path.split_last() else {
            return Vec::new();
        };
        let Some((crate_name, mods)) = prefix.split_first() else {
            return Vec::new();
        };
        let mut hits = Vec::new();
        for &i in self.candidates(name) {
            let n = &self.nodes[i];
            if n.crate_name != *crate_name {
                continue;
            }
            let free = n.type_name.is_none() && n.module == mods;
            let assoc = match (mods.split_last(), &n.type_name) {
                (Some((ty, mods_head)), Some(t)) => t == ty && n.module == mods_head,
                _ => false,
            };
            if free || assoc {
                hits.push(i);
            }
        }
        hits
    }

    fn resolve_path(&self, segs: &[String], ctx: &SiteCtx) -> Resolution {
        let mut segs: Vec<String> = segs.to_vec();
        // `Self::m` → assoc fn of the enclosing impl type.
        if segs.first().map(String::as_str) == Some("Self") {
            let Some(t) = ctx.type_name else {
                return Resolution::Unresolved;
            };
            segs[0] = t.to_string();
        }
        // Normalize relative roots.
        match segs.first().map(String::as_str) {
            Some("crate") => segs[0] = ctx.crate_name.to_string(),
            Some("self") => {
                let mut abs = vec![ctx.crate_name.to_string()];
                abs.extend(ctx.module.iter().cloned());
                abs.extend(segs[1..].iter().cloned());
                segs = abs;
            }
            Some("super") => {
                let mut up = 0usize;
                while segs.first().map(String::as_str) == Some("super") {
                    up += 1;
                    segs.remove(0);
                }
                let keep = ctx.module.len().saturating_sub(up);
                let mut abs = vec![ctx.crate_name.to_string()];
                abs.extend(ctx.module[..keep].iter().cloned());
                abs.extend(segs.iter().cloned());
                segs = abs;
            }
            _ => {}
        }
        // `use` alias splice on the head segment.
        if let Some(full) = ctx.use_map.aliases.get(&segs[0]) {
            let mut spliced = full.clone();
            spliced.extend(segs[1..].iter().cloned());
            segs = spliced;
        }

        if segs.len() == 1 {
            return self.resolve_bare(&segs[0], ctx);
        }
        let head = segs[0].as_str();
        if matches!(head, "std" | "core" | "alloc") {
            return Resolution::External;
        }
        if self.crate_roots.contains(head) {
            // Absolute workspace path: exact, then reexport-tolerant.
            let hits = self.exact(&segs);
            if !hits.is_empty() {
                return Resolution::Hits(hits);
            }
            return self.relaxed(&segs, Some(head));
        }
        // Relative path: try current module, parent, crate root.
        let name_only = &segs[..];
        for up in 0..=ctx.module.len() {
            let keep = ctx.module.len() - up;
            let mut abs = vec![ctx.crate_name.to_string()];
            abs.extend(ctx.module[..keep].iter().cloned());
            abs.extend(name_only.iter().cloned());
            let hits = self.exact(&abs);
            if !hits.is_empty() {
                return Resolution::Hits(hits);
            }
        }
        // `Type::name` with the type in scope but not use-mapped (local
        // types, glob imports): match by type name, same crate first.
        if segs.len() == 2 && segs[0].starts_with(char::is_uppercase) {
            let by_type: Vec<usize> = self
                .candidates(&segs[1])
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].type_name.as_deref() == Some(segs[0].as_str()))
                .collect();
            let local: Vec<usize> = by_type
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].crate_name == ctx.crate_name)
                .collect();
            let pick = if local.is_empty() { by_type } else { local };
            if !pick.is_empty() {
                return bounded(pick, PATH_AMBIG_CAP);
            }
        }
        self.relaxed(&segs, None)
    }

    /// Reexport-tolerant fallback: candidates by final segment, scoped
    /// to `crate_filter` when known, refined by the second-to-last
    /// segment as a type or module name when that narrows things.
    fn relaxed(&self, segs: &[String], crate_filter: Option<&str>) -> Resolution {
        let Some((name, prefix)) = segs.split_last() else {
            return Resolution::External;
        };
        let mut cands: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&i| match crate_filter {
                Some(c) => self.nodes[i].crate_name == c,
                None => true,
            })
            .collect();
        if cands.is_empty() {
            return Resolution::External;
        }
        if let Some(qual) = prefix.last() {
            if qual.as_str() != crate_filter.unwrap_or("") {
                let refined: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.nodes[i].type_name.as_deref() == Some(qual.as_str())
                            || self.nodes[i].module.last() == Some(qual)
                    })
                    .collect();
                if !refined.is_empty() {
                    cands = refined;
                }
            }
        }
        bounded(cands, PATH_AMBIG_CAP)
    }

    /// Bare-name call: local module first, then glob imports, then a
    /// workspace-unique name.
    fn resolve_bare(&self, name: &str, ctx: &SiteCtx) -> Resolution {
        let cands = self.candidates(name);
        if cands.is_empty() {
            return Resolution::External;
        }
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                let n = &self.nodes[i];
                n.crate_name == ctx.crate_name && n.module == ctx.module && n.type_name.is_none()
            })
            .collect();
        if !local.is_empty() {
            return Resolution::Hits(local);
        }
        let mut via_glob: Vec<usize> = Vec::new();
        for g in &ctx.use_map.globs {
            let mut full = g.clone();
            full.push(name.to_string());
            via_glob.extend(self.exact(&full));
        }
        if !via_glob.is_empty() {
            via_glob.sort_unstable();
            via_glob.dedup();
            return Resolution::Hits(via_glob);
        }
        bounded(cands.to_vec(), PATH_AMBIG_CAP)
    }

    fn resolve_method(&self, name: &str, receiver_is_self: bool, ctx: &SiteCtx) -> Resolution {
        // `self.m(…)` — the impl type's own method wins, including
        // std-shadowed names.
        if receiver_is_self {
            if let Some(t) = ctx.type_name {
                let own: Vec<usize> = self
                    .candidates(name)
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.nodes[i].type_name.as_deref() == Some(t)
                            && self.nodes[i].crate_name == ctx.crate_name
                    })
                    .collect();
                if !own.is_empty() {
                    return Resolution::Hits(own);
                }
            }
        }
        if is_std_shadowed(name) {
            return Resolution::Shadowed;
        }
        let cands: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].type_name.is_some())
            .collect();
        if cands.is_empty() {
            return Resolution::External;
        }
        bounded(cands, METHOD_AMBIG_CAP)
    }
}

/// Caps a candidate set: small sets become (possibly ambiguous) hits,
/// larger ones are honest `Unresolved`.
fn bounded(cands: Vec<usize>, cap: usize) -> Resolution {
    if cands.len() <= cap {
        Resolution::Hits(cands)
    } else {
        Resolution::Unresolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(files: &[(&str, &str)]) -> WorkspaceModel {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::analyze(p, s))
            .collect();
        WorkspaceModel::build(models, Vec::new())
    }

    fn node(ws: &WorkspaceModel, name: &str) -> usize {
        ws.nodes
            .iter()
            .position(|n| n.name == name)
            .expect("node present in fixture graph")
    }

    fn has_edge(ws: &WorkspaceModel, from: &str, to: &str) -> bool {
        let f = node(ws, from);
        let t = node(ws, to);
        ws.callees[f].iter().any(|c| c.callee == t)
    }

    #[test]
    fn qualification_covers_mods_impls_and_traits() {
        let ws = build(&[(
            "crates/core/src/elastic/dtw.rs",
            "pub struct Dtw;\n\
             impl Dtw { pub fn with_window(w: usize) -> Dtw { helper(w); Dtw } }\n\
             fn helper(w: usize) -> usize { w }\n\
             mod inner { pub fn deep() {} }\n\
             trait Shape { fn area(&self) -> f64 { 0.0 } }\n",
        )]);
        let with_window = &ws.nodes[node(&ws, "with_window")];
        assert_eq!(with_window.crate_name, "tsdist_core");
        assert_eq!(with_window.module, vec!["elastic", "dtw"]);
        assert_eq!(with_window.type_name.as_deref(), Some("Dtw"));
        assert!(with_window.is_pub);
        let deep = &ws.nodes[node(&ws, "deep")];
        assert_eq!(deep.module, vec!["elastic", "dtw", "inner"]);
        let area = &ws.nodes[node(&ws, "area")];
        assert_eq!(area.type_name.as_deref(), Some("Shape"));
        // with_window → helper resolved as a local bare call.
        assert!(has_edge(&ws, "with_window", "helper"));
        assert_eq!(ws.stats.resolved_unique, 1);
    }

    #[test]
    fn cross_crate_calls_resolve_through_use_and_reexports() {
        let ws = build(&[
            (
                "crates/core/src/lib.rs",
                "pub mod elastic { pub struct Dtw; impl Dtw { \
                 pub fn with_window_pct(p: f64) -> Dtw { Dtw } } }\n",
            ),
            ("crates/cli/src/main.rs", "mod measures;\nfn main() {}\n"),
            (
                "crates/cli/src/measures.rs",
                "use tsdist_core::elastic::Dtw;\n\
                 pub fn resolve(p: f64) { Dtw::with_window_pct(p); }\n",
            ),
        ]);
        assert!(has_edge(&ws, "resolve", "with_window_pct"));
        // The reexport-tolerant path also works without the exact
        // module chain: `tsdist_core::Dtw` is not where Dtw lives,
        // but crate + type still pins it.
        let ws2 = build(&[
            (
                "crates/core/src/elastic/dtw.rs",
                "pub struct Dtw; impl Dtw { pub fn with_window_pct(p: f64) -> Dtw { Dtw } }\n",
            ),
            (
                "crates/eval/src/nn.rs",
                "use tsdist_core::Dtw;\n\
                 pub fn run(p: f64) { Dtw::with_window_pct(p); }\n",
            ),
        ]);
        assert!(has_edge(&ws2, "run", "with_window_pct"));
    }

    #[test]
    fn method_calls_fan_out_but_std_shadowed_names_get_no_edges() {
        let ws = build(&[(
            "crates/core/src/measure.rs",
            "pub trait Distance { fn distance_ws(&self) -> f64; }\n\
             pub struct A; impl Distance for A { fn distance_ws(&self) -> f64 { 1.0 } }\n\
             pub struct B; impl Distance for B { fn distance_ws(&self) -> f64 { 2.0 } }\n\
             pub fn drive(d: &dyn Distance, v: &mut Vec<f64>) -> f64 \
             { v.push(1.0); d.distance_ws() }\n",
        )]);
        assert!(has_edge(&ws, "drive", "distance_ws"));
        assert_eq!(ws.stats.resolved_ambiguous, 1);
        assert_eq!(ws.stats.std_shadowed, 1);
        assert_eq!(ws.stats.unresolved, 0);
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let ws = build(&[(
            "crates/serve/src/engine.rs",
            "pub struct Engine;\n\
             impl Engine {\n\
             fn len(&self) -> usize { 7 }\n\
             pub fn answer(&self) -> usize { self.len() }\n\
             }\n",
        )]);
        // `self.len()` hits the impl's own `len` even though `len` is
        // std-shadowed for arbitrary receivers.
        assert!(has_edge(&ws, "answer", "len"));
    }

    #[test]
    fn super_and_crate_paths_normalize() {
        let ws = build(&[
            (
                "crates/core/src/elastic/dtw.rs",
                "pub fn banded() { super::wavefront::diag(); crate::lanes::sum8(); }\n",
            ),
            ("crates/core/src/elastic/wavefront.rs", "pub fn diag() {}\n"),
            ("crates/core/src/lanes.rs", "pub fn sum8() {}\n"),
        ]);
        assert!(has_edge(&ws, "banded", "diag"));
        assert!(has_edge(&ws, "banded", "sum8"));
        assert_eq!(ws.stats.resolved_unique, 2);
        assert_eq!(ws.stats.unresolved, 0);
    }

    #[test]
    fn test_fns_are_neither_callers_nor_candidates() {
        let ws = build(&[(
            "crates/core/src/shape.rs",
            "pub fn api() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n\
             fn helper() {}\n\
             #[test]\nfn t() { super::api(); helper(); }\n}\n",
        )]);
        let api = node(&ws, "api");
        // Only the lib helper is a candidate; the edge is unique.
        assert_eq!(ws.callees[api].len(), 1);
        assert!(ws.callees[api][0].certain);
        // The test fn produced no outgoing edges.
        let t = node(&ws, "t");
        assert!(ws.callees[t].is_empty());
        assert!(ws.nodes[t].in_test);
    }

    #[test]
    fn stats_percentage_accounts_only_workspace_sites() {
        let mut s = GraphStats::default();
        assert_eq!(s.resolution_pct(), 100.0);
        s.resolved_unique = 8;
        s.resolved_ambiguous = 1;
        s.unresolved = 1;
        s.external = 100;
        s.std_shadowed = 50;
        assert!((s.resolution_pct() - 90.0).abs() < 1e-9);
    }
}
