//! Structural recovery over the token stream.
//!
//! From the flat [`crate::lexer`] output this module computes the three
//! structural facts the lints need:
//!
//! 1. **Delimiter matching** — for every `(`/`[`/`{` token, the index
//!    of its partner.
//! 2. **Test regions** — token ranges under a `#[cfg(test)]` attribute
//!    (the conventional `mod tests`) or a `#[test]` function. Library
//!    invariants do not apply inside them: tests unwrap freely.
//! 3. **Function spans** — `(name, body range)` for every `fn`, so the
//!    hot-path lint can restrict itself to `*_ws` / `*_upto` bodies.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// A fully analyzed source file, ready for lint passes.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes (diagnostic label).
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `match_of[i]` is the partner index of a delimiter token, or
    /// `usize::MAX` for non-delimiters and unbalanced delimiters.
    pub match_of: Vec<usize>,
    /// Token index ranges (inclusive start, inclusive end) that are
    /// test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Every `fn` with a body in the file.
    pub fns: Vec<FnSpan>,
}

/// One function definition: its name, body delimiter indices, and the
/// signature facts the call-graph layer needs.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Index of the `fn` keyword token (diagnostic anchor; also where
    /// the visibility walk starts).
    pub fn_tok: usize,
    /// Index of the body's `{` token.
    pub open: usize,
    /// Index of the body's `}` token.
    pub close: usize,
    /// Declared `pub` with no restriction — `pub(crate)`/`pub(super)`
    /// are *not* public entry points for reachability purposes.
    pub is_pub: bool,
    /// Parameter binding names in order (`self` excluded; destructuring
    /// patterns contribute nothing).
    pub params: Vec<String>,
    /// A `# Panics` doc section sits in the doc block attached directly
    /// above this item: the panic behaviour is a documented part of the
    /// contract (an audited facade for `panic-reachability`).
    pub has_panics_doc: bool,
}

impl FileModel {
    /// Lexes and structurally analyzes one source file.
    pub fn analyze(path: &str, source: &str) -> FileModel {
        let lexed = lex(source);
        let match_of = match_delimiters(&lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens, &match_of);
        let fns = find_fns(&lexed.tokens, &match_of, &lexed.comments);
        FileModel {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            match_of,
            test_ranges,
            fns,
        }
    }

    /// True when token `i` lies inside any test region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// The source line of token `i`.
    pub fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map_or(0, |t| t.line)
    }
}

/// Stack-matches `()`, `[]`, `{}`.
fn match_delimiters(tokens: &[Token]) -> Vec<usize> {
    let mut match_of = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::OpenDelim => stack.push((i, t.text.as_str())),
            TokenKind::CloseDelim => {
                let want = match t.text.as_str() {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                // Pop until the matching opener: tolerates unbalanced
                // input instead of panicking.
                while let Some((j, open)) = stack.pop() {
                    if open == want {
                        match_of[i] = j;
                        match_of[j] = i;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

/// True when the attribute token range marks test-only code: it
/// mentions the bare ident `test` and is not a `not(test)` guard.
/// Covers `#[test]`, `#[cfg(test)]`, and `#[cfg(all(test, …))]`.
fn attr_is_test(tokens: &[Token], start: usize, end: usize) -> bool {
    let mut saw_test = false;
    let mut saw_not = false;
    for t in &tokens[start..=end] {
        if t.is_ident("test") {
            saw_test = true;
        }
        if t.is_ident("not") {
            saw_not = true;
        }
    }
    saw_test && !saw_not
}

/// Finds token ranges covered by test attributes. The range runs from
/// the `#` of the attribute to the `}` closing the next braced item
/// (module body or function body).
fn find_test_ranges(tokens: &[Token], match_of: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#")
            && i + 1 < tokens.len()
            && tokens[i + 1].is_open("[")
            && match_of[i + 1] != usize::MAX
        {
            let attr_end = match_of[i + 1];
            if attr_is_test(tokens, i + 1, attr_end) {
                // Find the opening `{` of the annotated item, skipping any
                // further attributes. Stop at `;` (e.g. `#[cfg(test)] use …;`
                // annotates a body-less item).
                let mut j = attr_end + 1;
                let mut open = None;
                while j < tokens.len() {
                    if tokens[j].is_punct("#")
                        && j + 1 < tokens.len()
                        && tokens[j + 1].is_open("[")
                        && match_of[j + 1] != usize::MAX
                    {
                        j = match_of[j + 1] + 1;
                        continue;
                    }
                    if tokens[j].is_punct(";") {
                        break;
                    }
                    if tokens[j].is_open("{") && match_of[j] != usize::MAX {
                        open = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    ranges.push((i, match_of[open]));
                    i = match_of[open] + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Finds every `fn name … { body }`. Trait-method declarations ending
/// in `;` have no body and are skipped.
fn find_fns(tokens: &[Token], match_of: &[usize], comments: &[Comment]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Scan the signature for the body's `{`; `;` means no body. The
        // signature contains only `()`/`[]`/`<>` nesting, so the first
        // top-level `{` is the body (skipping delimiter groups keeps
        // closure bodies in default-argument positions from confusing
        // this — not that Rust has those).
        let mut j = i + 2;
        while j < tokens.len() {
            if tokens[j].is_punct(";") {
                break;
            }
            if tokens[j].kind == TokenKind::OpenDelim {
                if tokens[j].text == "{" {
                    if match_of[j] != usize::MAX {
                        fns.push(FnSpan {
                            name: name_tok.text.clone(),
                            fn_tok: i,
                            open: j,
                            close: match_of[j],
                            is_pub: fn_is_pub(tokens, i),
                            params: fn_params(tokens, match_of, i),
                            has_panics_doc: fn_has_panics_doc(tokens, match_of, comments, i),
                        });
                    }
                    break;
                }
                // Skip `(…)` / `[…]` groups in the signature.
                if match_of[j] != usize::MAX {
                    j = match_of[j] + 1;
                    continue;
                }
            }
            j += 1;
        }
    }
    fns
}

/// True when the `fn` at `fn_idx` is declared bare `pub` (restricted
/// forms like `pub(crate)` are intra-crate and do not count).
fn fn_is_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        // Qualifiers that may sit between `pub` and `fn`.
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "unsafe" | "const" | "async" | "extern")
        {
            continue;
        }
        if t.kind == TokenKind::StrLit {
            // `extern "C"` ABI string.
            continue;
        }
        if t.is_close(")") {
            // `pub(crate)` / `pub(super)` / `pub(in …)`: restricted.
            return false;
        }
        return t.is_ident("pub");
    }
    false
}

/// Parameter binding names of the `fn` at `fn_idx`: the ident directly
/// before each top-level `:` inside the parameter parentheses. `self`
/// receivers and destructuring patterns contribute nothing.
fn fn_params(tokens: &[Token], match_of: &[usize], fn_idx: usize) -> Vec<String> {
    let mut params = Vec::new();
    // Find the parameter `(`, skipping a generics `<…>` region (tracked
    // by angle depth — `<` and `>` are plain puncts to the lexer).
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    let paren = loop {
        let Some(t) = tokens.get(j) else {
            return params;
        };
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => angle += 1,
            ">" if t.kind == TokenKind::Punct => angle -= 1,
            ">>" if t.kind == TokenKind::Punct => angle -= 2,
            "(" if t.kind == TokenKind::OpenDelim && angle <= 0 => break j,
            "{" | ";" => return params,
            _ => {}
        }
        j += 1;
    };
    let close = match_of[paren];
    if close == usize::MAX {
        return params;
    }
    let mut depth = 0i32;
    for k in paren + 1..close {
        match tokens[k].kind {
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => depth -= 1,
            TokenKind::Punct
                if depth == 0
                    && tokens[k].text == ":"
                    && k > paren + 1
                    && tokens[k - 1].kind == TokenKind::Ident =>
            {
                params.push(tokens[k - 1].text.clone());
            }
            _ => {}
        }
    }
    params
}

/// True when the doc block attached directly above the item holding the
/// `fn` at `fn_idx` contains a `# Panics` section. The item start is
/// found by walking back over visibility, qualifiers, and attributes;
/// doc comments between the previous token and the item start attach.
fn fn_has_panics_doc(
    tokens: &[Token],
    match_of: &[usize],
    comments: &[Comment],
    fn_idx: usize,
) -> bool {
    let mut k = fn_idx;
    loop {
        if k == 0 {
            break;
        }
        let t = &tokens[k - 1];
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "const" | "async" | "extern"
            )
        {
            k -= 1;
            continue;
        }
        if t.kind == TokenKind::StrLit && k >= 2 && tokens[k - 2].is_ident("extern") {
            k -= 1;
            continue;
        }
        if t.is_close(")") {
            // `pub(crate)` restriction group.
            let open = match_of[k - 1];
            if open != usize::MAX && open > 0 && tokens[open - 1].is_ident("pub") {
                k = open - 1;
                continue;
            }
            break;
        }
        if t.is_close("]") {
            // `#[attr]` — keep walking above the attribute.
            let open = match_of[k - 1];
            if open != usize::MAX && open > 0 && tokens[open - 1].is_punct("#") {
                k = open - 1;
                continue;
            }
            break;
        }
        break;
    }
    let start_line = tokens[k].line;
    let prev_line = if k > 0 { tokens[k - 1].line } else { 0 };
    comments.iter().any(|c| {
        c.is_doc && c.line >= prev_line && c.line <= start_line && c.text.contains("# Panics")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn library_fn(x: f64) -> f64 {
    x + 1.0
}

fn distance_ws(a: &[f64]) -> f64 {
    a.iter().sum()
}

trait T {
    fn declared_only(&self) -> f64;
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests() {
        let v: Vec<i32> = Vec::new();
        v.first().unwrap();
    }
}
"#;

    #[test]
    fn fn_spans_are_found() {
        let m = FileModel::analyze("x.rs", SRC);
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"library_fn"));
        assert!(names.contains(&"distance_ws"));
        assert!(names.contains(&"in_tests"));
        assert!(!names.contains(&"declared_only"));
    }

    #[test]
    fn test_region_covers_the_mod_body() {
        let m = FileModel::analyze("x.rs", SRC);
        assert_eq!(m.test_ranges.len(), 1);
        // The unwrap ident inside the tests module is in the region; the
        // library fn body is not.
        let unwrap_idx = m
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("fixture contains unwrap");
        assert!(m.in_test_region(unwrap_idx));
        let lib_idx = m
            .tokens
            .iter()
            .position(|t| t.is_ident("library_fn"))
            .expect("fixture contains library_fn");
        assert!(!m.in_test_region(lib_idx));
    }

    #[test]
    fn not_test_cfg_is_not_a_test_region() {
        let m = FileModel::analyze("x.rs", "#[cfg(not(test))]\nmod real { fn f() {} }");
        assert!(m.test_ranges.is_empty());
    }

    #[test]
    fn fn_metadata_is_extracted() {
        let src = "/// Does x.\n///\n/// # Panics\n/// Panics when `n` is 0.\n#[inline]\n\
                   pub fn checked(n: usize, label: &str) -> usize { n }\n\n\
                   pub(crate) fn internal(x: f64) -> f64 { x }\n\n\
                   fn private<T: Fn(f64) -> f64>(a: u8, f: T) -> u8 { a }\n";
        let m = FileModel::analyze("x.rs", src);
        let f = |name: &str| {
            m.fns
                .iter()
                .find(|f| f.name == name)
                .expect("fn present in fixture")
        };
        assert!(f("checked").is_pub);
        assert!(f("checked").has_panics_doc);
        assert_eq!(f("checked").params, vec!["n", "label"]);
        // Restricted visibility is not public, and the doc block above
        // `checked` does not leak onto later items.
        assert!(!f("internal").is_pub);
        assert!(!f("internal").has_panics_doc);
        // Generics with `Fn(…)` bounds don't confuse the param scan.
        assert!(!f("private").is_pub);
        assert_eq!(f("private").params, vec!["a", "f"]);
    }

    #[test]
    fn methods_with_self_receiver_have_no_self_param() {
        let m = FileModel::analyze(
            "x.rs",
            "impl W { pub fn dist(&self, x: &[f64], cutoff: f64) -> f64 { cutoff } }",
        );
        assert_eq!(m.fns[0].params, vec!["x", "cutoff"]);
        assert!(m.fns[0].is_pub);
    }

    #[test]
    fn delimiters_match() {
        let m = FileModel::analyze("x.rs", "fn f(a: (u8, u8)) { [1, 2]; }");
        for (i, t) in m.tokens.iter().enumerate() {
            if t.kind == TokenKind::OpenDelim {
                let j = m.match_of[i];
                assert_ne!(j, usize::MAX);
                assert_eq!(m.match_of[j], i);
            }
        }
    }
}
