//! The inline suppression syntax.
//!
//! ```text
//! // tsdist-lint: allow(<lint-name>, reason = "why this is sound")
//! ```
//!
//! A suppression silences findings of the named lint on **its own line**
//! (trailing-comment position) or on the **next line that has code**
//! (standalone-comment position). The reason string is mandatory: a
//! reasonless allow is itself a `suppression-audit` error, and an allow
//! that silences nothing is a stale-suppression warning. Doc comments
//! never carry suppressions.

use crate::lexer::{Comment, Token};

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The lint name inside `allow(…)`.
    pub lint: String,
    /// The mandatory reason; `None` when the comment omitted it (which
    /// is itself diagnosed).
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Lines this suppression covers: its own line and the next line
    /// carrying a token.
    pub covers: (u32, u32),
}

/// A comment that *looks* like a suppression but does not parse. These
/// are surfaced as `suppression-audit` errors rather than silently
/// ignored — a typo in an allow must not re-open a hole.
#[derive(Debug, Clone)]
pub struct MalformedSuppression {
    pub line: u32,
    pub message: String,
}

/// Everything the suppression scanner found in one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    pub parsed: Vec<Suppression>,
    pub malformed: Vec<MalformedSuppression>,
}

/// The marker every suppression comment starts with (after `//`).
const MARKER: &str = "tsdist-lint:";

/// Scans a file's comments for suppressions. `tokens` is needed to
/// compute each suppression's coverage (the next line with code).
pub fn find_suppressions(comments: &[Comment], tokens: &[Token]) -> Suppressions {
    let mut out = Suppressions::default();
    for comment in comments {
        let text = comment.text.trim();
        if !text.starts_with(MARKER) {
            continue;
        }
        if comment.is_doc {
            out.malformed.push(MalformedSuppression {
                line: comment.line,
                message: "suppressions must be plain `//` comments, not doc comments".into(),
            });
            continue;
        }
        let rest = text[MARKER.len()..].trim();
        match parse_allow(rest) {
            Ok((lint, reason)) => {
                let next_code_line = tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > comment.line)
                    .unwrap_or(comment.line);
                out.parsed.push(Suppression {
                    lint,
                    reason,
                    line: comment.line,
                    covers: (comment.line, next_code_line),
                });
            }
            Err(message) => out.malformed.push(MalformedSuppression {
                line: comment.line,
                message,
            }),
        }
    }
    out
}

/// Parses `allow(<lint>, reason = "…")` after the marker.
fn parse_allow(rest: &str) -> Result<(String, Option<String>), String> {
    let Some(args) = rest.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(<lint>, reason = \"…\")`, found {rest:?}"
        ));
    };
    let args = args.trim();
    let Some(args) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
        return Err("expected parentheses: `allow(<lint>, reason = \"…\")`".into());
    };
    // Split at the first comma outside quotes.
    let (lint_part, reason_part) = match args.find(',') {
        Some(pos) => (&args[..pos], Some(&args[pos + 1..])),
        None => (args, None),
    };
    let lint = lint_part.trim().to_string();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("bad lint name {lint:?} in allow(…)"));
    }
    let reason = match reason_part {
        None => None,
        Some(r) => {
            let r = r.trim();
            let Some(r) = r.strip_prefix("reason") else {
                return Err(format!("expected `reason = \"…\"`, found {r:?}"));
            };
            let r = r.trim_start();
            let Some(r) = r.strip_prefix('=') else {
                return Err("expected `=` after `reason`".into());
            };
            let r = r.trim();
            let Some(r) = r.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                return Err("reason must be a double-quoted string".into());
            };
            if r.trim().is_empty() {
                return Err("reason string is empty".into());
            }
            Some(r.to_string())
        }
    };
    Ok((lint, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> Suppressions {
        let lexed = lex(src);
        find_suppressions(&lexed.comments, &lexed.tokens)
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let s = scan("let x = a.partial_cmp(&b); // tsdist-lint: allow(float-total-order, reason = \"NaN-free by construction\")\n");
        assert_eq!(s.parsed.len(), 1);
        assert_eq!(s.parsed[0].lint, "float-total-order");
        assert_eq!(
            s.parsed[0].reason.as_deref(),
            Some("NaN-free by construction")
        );
        assert_eq!(s.parsed[0].covers.0, 1);
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let s = scan(
            "// tsdist-lint: allow(no-unwrap-in-lib, reason = \"poisoning is unreachable\")\n\n// another comment\nlet x = v.unwrap();\n",
        );
        assert_eq!(s.parsed.len(), 1);
        // Own line 1; next code line is 4 (blank line and comment skipped).
        assert_eq!(s.parsed[0].covers, (1, 4));
    }

    #[test]
    fn missing_reason_parses_with_none() {
        let s = scan("// tsdist-lint: allow(no-unwrap-in-lib)\nlet x = 1;\n");
        assert_eq!(s.parsed.len(), 1);
        assert!(s.parsed[0].reason.is_none());
    }

    #[test]
    fn malformed_suppressions_are_surfaced() {
        let cases = [
            "// tsdist-lint: allow no-unwrap-in-lib\n",
            "// tsdist-lint: allow(bad name!)\n",
            "// tsdist-lint: allow(x, reason = unquoted)\n",
            "// tsdist-lint: allow(x, reason = \"\")\n",
            "// tsdist-lint: deny(x)\n",
        ];
        for case in cases {
            let s = scan(case);
            assert_eq!(s.parsed.len(), 0, "{case:?} should not parse");
            assert_eq!(s.malformed.len(), 1, "{case:?} should be malformed");
        }
    }

    #[test]
    fn doc_comments_cannot_suppress() {
        let s = scan("/// tsdist-lint: allow(no-unwrap-in-lib, reason = \"doc\")\nfn f() {}\n");
        assert_eq!(s.parsed.len(), 0);
        assert_eq!(s.malformed.len(), 1);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let s = scan("// a normal comment mentioning allow(things)\nlet x = 1;\n");
        assert!(s.parsed.is_empty());
        assert!(s.malformed.is_empty());
    }
}
