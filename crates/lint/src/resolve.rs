//! Path-resolution-lite for the workspace call graph.
//!
//! This is deliberately *not* a name resolver for Rust — it is the
//! smallest approximation that resolves intra-workspace calls well
//! enough for flow lints, with every shortcut accounted for in
//! [`crate::graph::GraphStats`]. The moving parts:
//!
//! 1. **Crate/module derivation** from the file path: `crates/core/src/
//!    elastic/dtw.rs` → crate `tsdist_core`, module `[elastic, dtw]`.
//!    Inline `mod name { … }` blocks append segments.
//! 2. **`use` rewriting** — per-file alias tables (including `as`
//!    renames, nested `{…}` trees, and glob prefixes) with `crate::` /
//!    `self::` / `super::` normalized against the file's own module.
//! 3. **Candidate matching** — exact module-path matches first, then a
//!    reexport-tolerant relaxation (crate + `Type::name` or crate +
//!    final segment), because `pub use` facades make strict paths
//!    wrong more often than right in this workspace.
//! 4. **Method-name heuristics** — a `.name(…)` call resolves to every
//!    workspace method of that name (trait dispatch is approximated by
//!    edges to all impls) unless the name is a std-prelude staple
//!    (`len`, `push`, `lock`, …), which would drown the graph in false
//!    edges; those are counted separately as *std-shadowed* and get no
//!    edges. `self.m(…)` resolves within the impl type first.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};

/// Method names shadowed by std/core types in practice: resolving these
/// by bare name would attach workspace edges to `Vec::push`-style calls.
/// They are counted as `std_shadowed` and excluded from edge building
/// (a `self.name(…)` call still resolves within its impl type).
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "ceil",
    "chain",
    "clear",
    "clone",
    "cloned",
    "collect",
    "connect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "end",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fetch_add",
    "fetch_sub",
    "filter",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "or_insert",
    "parse",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "read_exact",
    "read_line",
    "read_to_string",
    "recv",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "send",
    "set_len",
    "skip",
    "sort",
    "sort_by",
    "sort_unstable",
    "split",
    "splitn",
    "sqrt",
    "start",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "windows",
    "write",
    "write_all",
    "zip",
];

/// True when `name` is a std-shadowed method name (see [`STD_METHODS`]).
pub fn is_std_shadowed(name: &str) -> bool {
    STD_METHODS.binary_search(&name).is_ok()
}

/// Crate name and module path derived from a workspace-relative file
/// path. Returns `None` for files outside the recognized layout.
///
/// * `src/lib.rs` → (`tsdist`, `[]`) — the root facade crate.
/// * `crates/X/src/lib.rs` → (`tsdist_X`, `[]`).
/// * `crates/X/src/foo/bar.rs` → (`tsdist_X`, `[foo, bar]`).
/// * `…/foo/mod.rs` collapses to `[foo]`.
/// * `crates/X/src/main.rs` and `crates/X/src/bin/y.rs` are their own
///   binary crates when the package also has a `lib.rs`; `lib_dirs`
///   lists the crate dirs that do. A package with only `main.rs`
///   (e.g. the CLI) roots the whole `src/` tree at the binary.
pub fn crate_and_module(path: &str, lib_dirs: &BTreeSet<String>) -> Option<(String, Vec<String>)> {
    let rest = if let Some(rest) = path.strip_prefix("crates/") {
        rest
    } else if let Some(rest) = path.strip_prefix("src/") {
        return Some(("tsdist".to_string(), module_of(rest)));
    } else {
        return None;
    };
    let (dir, in_crate) = rest.split_once('/')?;
    let in_src = in_crate.strip_prefix("src/")?;
    let crate_name = format!("tsdist_{}", dir.replace('-', "_"));
    let has_lib = lib_dirs.contains(dir);
    if has_lib {
        if in_src == "main.rs" {
            return Some((format!("{crate_name}@main"), Vec::new()));
        }
        if let Some(bin) = in_src.strip_prefix("bin/") {
            let stem = bin.strip_suffix(".rs").unwrap_or(bin);
            return Some((
                format!("{crate_name}@{}", stem.replace('/', "_")),
                Vec::new(),
            ));
        }
    }
    Some((crate_name, module_of(in_src)))
}

/// Module segments for a path relative to the crate's `src/` dir.
fn module_of(rel: &str) -> Vec<String> {
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut segs: Vec<String> = rel.split('/').map(str::to_string).collect();
    if matches!(
        segs.last().map(String::as_str),
        Some("lib" | "main" | "mod")
    ) {
        segs.pop();
    }
    segs
}

/// Per-file import table: `use` aliases and glob prefixes, with
/// `crate`/`self`/`super` already normalized to absolute form
/// (`[crate_name, segs…]`).
#[derive(Debug, Default)]
pub struct UseMap {
    /// Final alias (last segment or `as` rename) → absolute path of the
    /// imported item.
    pub aliases: BTreeMap<String, Vec<String>>,
    /// Prefixes imported via `use path::*`.
    pub globs: Vec<Vec<String>>,
}

/// Builds the import table for one file.
pub fn build_use_map(tokens: &[Token], crate_name: &str, module: &[String]) -> UseMap {
    let mut map = UseMap::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            i = parse_use_tree(tokens, i + 1, &mut Vec::new(), &mut map);
            continue;
        }
        i += 1;
    }
    // Normalize relative roots in one pass at the end.
    let normalize = |segs: &[String]| -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut rest = segs;
        match segs.first().map(String::as_str) {
            Some("crate") => {
                out.push(crate_name.to_string());
                rest = &segs[1..];
            }
            Some("self") => {
                out.push(crate_name.to_string());
                out.extend(module.iter().cloned());
                rest = &segs[1..];
            }
            Some("super") => {
                out.push(crate_name.to_string());
                let mut up = 0usize;
                while rest.first().map(String::as_str) == Some("super") {
                    up += 1;
                    rest = &rest[1..];
                }
                let keep = module.len().saturating_sub(up);
                out.extend(module[..keep].iter().cloned());
            }
            _ => {}
        }
        out.extend(rest.iter().cloned());
        out
    };
    map.aliases = map
        .aliases
        .into_iter()
        .map(|(k, v)| (k, normalize(&v)))
        .collect();
    map.globs = map.globs.iter().map(|g| normalize(g)).collect();
    map
}

/// Parses one `use`-tree node starting at `i` with the accumulated
/// `prefix`; returns the index just past the node.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    map: &mut UseMap,
) -> usize {
    loop {
        let Some(t) = tokens.get(i) else {
            return i;
        };
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("*") {
            map.globs.push(prefix.clone());
            return i + 1;
        }
        if t.is_open("{") {
            // Nested tree: parse children separated by `,` until `}`.
            i += 1;
            loop {
                match tokens.get(i) {
                    Some(t) if t.is_close("}") => return i + 1,
                    Some(t) if t.is_punct(",") => i += 1,
                    Some(_) => {
                        let mut child = prefix.clone();
                        i = parse_use_tree(tokens, i, &mut child, map);
                    }
                    None => return i,
                }
            }
        }
        if t.kind == TokenKind::Ident {
            if t.text == "as" {
                // `… as alias` — rebind the path to the alias name.
                if let Some(alias) = tokens.get(i + 1) {
                    if alias.kind == TokenKind::Ident && !prefix.is_empty() {
                        map.aliases.insert(alias.text.clone(), prefix.clone());
                    }
                }
                return i + 2;
            }
            prefix.push(t.text.clone());
            match tokens.get(i + 1) {
                Some(n) if n.is_punct("::") => {
                    i += 2;
                    continue;
                }
                Some(n) if n.is_ident("as") => {
                    i += 1;
                    continue;
                }
                _ => {
                    // Leaf: alias under its own final segment.
                    if let Some(last) = prefix.last() {
                        map.aliases.insert(last.clone(), prefix.clone());
                    }
                    return i + 1;
                }
            }
        }
        // `pub use`, attributes, anything unexpected: skip forward.
        if t.is_ident("pub") || t.is_punct("#") || t.is_open("[") {
            i += 1;
            continue;
        }
        return i + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn set(dirs: &[&str]) -> BTreeSet<String> {
        dirs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn crate_and_module_derivation() {
        let libs = set(&["core", "lint"]);
        assert_eq!(
            crate_and_module("crates/core/src/elastic/dtw.rs", &libs),
            Some(("tsdist_core".into(), vec!["elastic".into(), "dtw".into()]))
        );
        assert_eq!(
            crate_and_module("crates/core/src/lib.rs", &libs),
            Some(("tsdist_core".into(), vec![]))
        );
        assert_eq!(
            crate_and_module("crates/core/src/index/mod.rs", &libs),
            Some(("tsdist_core".into(), vec!["index".into()]))
        );
        assert_eq!(
            crate_and_module("src/lib.rs", &libs),
            Some(("tsdist".into(), vec![]))
        );
        // lint has a lib.rs, so its main.rs is a separate binary crate.
        assert_eq!(
            crate_and_module("crates/lint/src/main.rs", &libs),
            Some(("tsdist_lint@main".into(), vec![]))
        );
        // cli has no lib.rs: main.rs roots the crate, modules hang off it.
        assert_eq!(
            crate_and_module("crates/cli/src/main.rs", &libs),
            Some(("tsdist_cli".into(), vec![]))
        );
        assert_eq!(
            crate_and_module("crates/cli/src/measures.rs", &libs),
            Some(("tsdist_cli".into(), vec!["measures".into()]))
        );
    }

    #[test]
    fn use_map_handles_trees_renames_globs_and_relative_roots() {
        let src = "use tsdist_core::elastic::{Dtw, dtw::dtw_banded as banded};\n\
                   use crate::measure::Distance;\n\
                   use super::wavefront::*;\n\
                   use std::collections::BTreeMap;\n";
        let lexed = lex(src);
        let m = build_use_map(
            &lexed.tokens,
            "tsdist_core",
            &["elastic".into(), "dtw".into()],
        );
        assert_eq!(
            m.aliases.get("Dtw"),
            Some(&vec![
                "tsdist_core".to_string(),
                "elastic".to_string(),
                "Dtw".to_string()
            ])
        );
        assert_eq!(
            m.aliases.get("banded"),
            Some(&vec![
                "tsdist_core".to_string(),
                "elastic".to_string(),
                "dtw".to_string(),
                "dtw_banded".to_string()
            ])
        );
        assert_eq!(
            m.aliases.get("Distance"),
            Some(&vec![
                "tsdist_core".to_string(),
                "measure".to_string(),
                "Distance".to_string()
            ])
        );
        assert_eq!(
            m.globs,
            vec![vec![
                "tsdist_core".to_string(),
                "elastic".to_string(),
                "wavefront".to_string()
            ]]
        );
        assert_eq!(
            m.aliases.get("BTreeMap"),
            Some(&vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeMap".to_string()
            ])
        );
    }

    #[test]
    fn std_shadow_list_is_sorted_for_binary_search() {
        let mut sorted = STD_METHODS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STD_METHODS);
        assert!(is_std_shadowed("lock"));
        assert!(!is_std_shadowed("distance_ws"));
    }
}
