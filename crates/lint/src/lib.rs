//! `tsdist-lint` — the workspace invariant checker.
//!
//! The paper's conclusions rest on bit-reproducible accuracies, and the
//! codebase maintains that reproducibility through conventions:
//! `total_cmp` instead of `partial_cmp().unwrap()`, typed errors
//! instead of panics in fallible eval paths, allocation-free
//! `*_ws`/`*_upto` hot paths, and ordered collections wherever results
//! are rendered or journaled. This crate turns those conventions into
//! CI-gated facts: a from-scratch static analysis engine (hand-rolled
//! lexer + token-tree scanner, no `syn`, consistent with the
//! no-external-deps policy) that walks every workspace source file and
//! reports named, severity-tagged diagnostics with `file:line`
//! positions and machine-readable JSON output.
//!
//! Since v2 the engine is *flow-aware*: it resolves a workspace-wide
//! function call graph ([`graph::WorkspaceModel`]) — `use`-map path
//! resolution, `crate::`/`super::` normalization, method-call fan-out
//! with explicit unresolved-edge accounting — and runs four lints over
//! it that no single-file scan can express.
//!
//! # The lint set
//!
//! Per-file token-tree lints:
//!
//! | lint | severity | invariant |
//! |------|----------|-----------|
//! | `no-unwrap-in-lib` | error | no `.unwrap()`/`.expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` outside tests, benches, and reasoned facades |
//! | `float-total-order` | error | no `partial_cmp` and no `==`/`!=` against float literals — use `f64::total_cmp` |
//! | `nondeterministic-iteration` | error | no `HashMap`/`HashSet` in library code — `BTreeMap`/`BTreeSet` or sorted `Vec` |
//! | `hot-path-alloc` | error | no `Vec::new`/`vec!`/`to_vec`/`collect`/… inside `*_ws`/`*_upto` bodies — use the `Workspace` arena |
//! | `hot-path-bounds-check` | warning | no loop-variable indexing inside `lockstep/`/`elastic/` `*_ws`/`*_upto`/`*_pruned` bodies — zip or pre-cut slices so the checks fold away |
//! | `asymmetric-float-expr` | warning | no `(a / b).ln()`-style swap-asymmetric expressions in measures claiming symmetry |
//! | `suppression-audit` | error/warning | every allow carries a reason, names a known lint, and suppresses something |
//!
//! Workspace (call-graph) lints:
//!
//! | lint | severity | invariant |
//! |------|----------|-----------|
//! | `panic-reachability` | error | no public fn transitively reaches an `assert!` lacking a `# Panics` doc — the full call chain is printed |
//! | `lock-discipline` | error | consistent Mutex acquisition order in `crates/serve`/`crates/eval`; no blocking op (send/recv/IO/join/sleep) under a live guard |
//! | `upto-contract-shape` | error | every `distance_upto` override delegates or keeps the cutoff comparison reachable from each accumulation loop; every public `lb_*` has an admissibility test |
//! | `wire-error-exhaustiveness` | error | every constructed `ErrorCode` variant appears in `label()`, `from_label()`, and the serve e2e suite |
//!
//! # Suppressions
//!
//! ```text
//! // tsdist-lint: allow(<lint-name>, reason = "why this is sound")
//! ```
//!
//! placed trailing on the flagged line or standalone on the line above
//! it. The reason is mandatory and audited; a stale allow (matching no
//! finding) is itself a warning, so suppressions cannot outlive the
//! code they excuse.
//!
//! # The baseline
//!
//! Findings carry stable fingerprints (see [`report`]); a pinned
//! baseline file makes `--baseline` runs fail only on **new** findings.
//! `results/lint/baseline.json` is the committed pin; `check.sh` gates
//! on it with `--deny-warnings`.
//!
//! # Entry points
//!
//! Run as `tsdist lint [flags]` or standalone via
//! `cargo run -p tsdist-lint`. [`lint_workspace`] drives the whole
//! tree; [`lint_source`] lints one string (what the fixture suite
//! exercises); [`engine::lint_files`] is the multi-file core.

pub mod engine;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;
pub mod resolve;
pub mod suppress;

pub use engine::{
    find_workspace_root, lint_files, lint_source, lint_workspace, LintConfig, SourceFile,
};
pub use report::{Baseline, Diagnostic, Report, Severity, SuppressedDiagnostic};

/// Shared CLI driver for the standalone binary and the `tsdist lint`
/// subcommand. Parses the flags below, lints the workspace, prints the
/// report, writes the JSON artifact, and returns `Err` (with a summary
/// message) when the run must fail.
///
/// ```text
/// lint [--json] [--deny-warnings] [--root DIR] [--out FILE]
///      [--baseline FILE] [--write-baseline FILE] [--graph-stats]
///      [--severity LINT=LEVEL]...
/// ```
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut graph_stats = false;
    let mut root: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut baseline_file: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut config = LintConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--graph-stats" => graph_stats = true,
            "--root" => {
                root = Some(
                    iter.next()
                        .ok_or("--root needs a directory argument")?
                        .clone(),
                );
            }
            "--out" => {
                out_file = Some(iter.next().ok_or("--out needs a file argument")?.clone());
            }
            "--baseline" => {
                baseline_file = Some(
                    iter.next()
                        .ok_or("--baseline needs a file argument")?
                        .clone(),
                );
            }
            "--write-baseline" => {
                write_baseline = Some(
                    iter.next()
                        .ok_or("--write-baseline needs a file argument")?
                        .clone(),
                );
            }
            "--severity" => {
                let spec = iter.next().ok_or("--severity needs LINT=LEVEL")?;
                let (lint, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--severity {spec:?}: expected LINT=LEVEL"))?;
                if !lints::LINT_NAMES.contains(&lint) {
                    return Err(format!(
                        "--severity names unknown lint {lint:?} (known: {})",
                        lints::LINT_NAMES.join(", ")
                    ));
                }
                let severity = Severity::parse(level).ok_or_else(|| {
                    format!("--severity level {level:?}: expected `warning` or `error`")
                })?;
                config.severity_overrides.insert(lint.to_string(), severity);
            }
            other => {
                return Err(format!(
                    "unknown lint option {other:?}\n\
                     usage: lint [--json] [--deny-warnings] [--root DIR] [--out FILE]\n\
                     \x20           [--baseline FILE] [--write-baseline FILE] [--graph-stats]\n\
                     \x20           [--severity LINT=LEVEL]..."
                ));
            }
        }
    }

    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            find_workspace_root(&cwd)?
        }
    };
    let mut report = lint_workspace(&root, &config)?;

    if let Some(path) = &baseline_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        report.apply_baseline(&Baseline::parse(&text));
    }

    if let Some(path) = &write_baseline {
        // Pin everything currently firing (active + already-baselined):
        // the new baseline absorbs the old one plus the fresh debt.
        let mut all = Report {
            files_scanned: report.files_scanned,
            diagnostics: report
                .diagnostics
                .iter()
                .chain(report.baselined.iter())
                .cloned()
                .collect(),
            ..Report::default()
        };
        all.sort();
        write_text_file(path, &all.render_json())?;
    }
    if let Some(path) = &out_file {
        write_text_file(path, &report.render_json())?;
    }
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if graph_stats {
        print!("{}", report.render_graph_stats());
    }

    let errors = report.errors();
    let warnings = report.warnings();
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(format!(
            "lint failed: {errors} error(s), {warnings} warning(s){}",
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        ));
    }
    Ok(())
}

fn write_text_file(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}
