//! `tsdist-lint` — the workspace invariant checker.
//!
//! The paper's conclusions rest on bit-reproducible accuracies, and the
//! codebase maintains that reproducibility through conventions:
//! `total_cmp` instead of `partial_cmp().unwrap()`, typed errors
//! instead of panics in fallible eval paths, allocation-free
//! `*_ws`/`*_upto` hot paths, and ordered collections wherever results
//! are rendered or journaled. This crate turns those conventions into
//! CI-gated facts: a from-scratch static analysis engine (hand-rolled
//! lexer + token-tree scanner, no `syn`, consistent with the
//! no-external-deps policy) that walks every workspace source file and
//! reports named, severity-tagged diagnostics with `file:line`
//! positions and machine-readable JSON output.
//!
//! # The lint set
//!
//! | lint | severity | invariant |
//! |------|----------|-----------|
//! | `no-unwrap-in-lib` | error | no `.unwrap()`/`.expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` outside tests, benches, and reasoned facades |
//! | `float-total-order` | error | no `partial_cmp` and no `==`/`!=` against float literals — use `f64::total_cmp` |
//! | `nondeterministic-iteration` | error | no `HashMap`/`HashSet` in library code — `BTreeMap`/`BTreeSet` or sorted `Vec` |
//! | `hot-path-alloc` | error | no `Vec::new`/`vec!`/`to_vec`/`collect`/… inside `*_ws`/`*_upto` bodies — use the `Workspace` arena |
//! | `hot-path-bounds-check` | warning | no loop-variable indexing inside `lockstep/`/`elastic/` `*_ws`/`*_upto`/`*_pruned` bodies — zip or pre-cut slices so the checks fold away |
//! | `asymmetric-float-expr` | warning | no `(a / b).ln()`-style swap-asymmetric expressions in measures claiming symmetry |
//! | `suppression-audit` | error/warning | every allow carries a reason, names a known lint, and suppresses something |
//!
//! # Suppressions
//!
//! ```text
//! // tsdist-lint: allow(<lint-name>, reason = "why this is sound")
//! ```
//!
//! placed trailing on the flagged line or standalone on the line above
//! it. The reason is mandatory and audited; a stale allow (matching no
//! finding) is itself a warning, so suppressions cannot outlive the
//! code they excuse.
//!
//! # Entry points
//!
//! Run as `tsdist lint [--json] [--deny-warnings]` or standalone via
//! `cargo run -p tsdist-lint`. [`lint_workspace`] drives the whole
//! tree; [`lint_source`] lints one string (what the fixture suite
//! exercises).

pub mod engine;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;
pub mod suppress;

pub use engine::{find_workspace_root, lint_source, lint_workspace, LintConfig};
pub use report::{Diagnostic, Report, Severity, SuppressedDiagnostic};

/// Shared CLI driver for the standalone binary and the `tsdist lint`
/// subcommand. Parses `[--json] [--deny-warnings] [--root DIR]
/// [--out FILE]`, lints the workspace, prints the report, writes the
/// JSON artifact, and returns `Err` (with a summary message) when the
/// run must fail.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => {
                root = Some(
                    iter.next()
                        .ok_or("--root needs a directory argument")?
                        .clone(),
                );
            }
            "--out" => {
                out_file = Some(iter.next().ok_or("--out needs a file argument")?.clone());
            }
            other => {
                return Err(format!(
                    "unknown lint option {other:?}\n\
                     usage: lint [--json] [--deny-warnings] [--root DIR] [--out FILE]"
                ));
            }
        }
    }

    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            find_workspace_root(&cwd)?
        }
    };
    let report = lint_workspace(&root, &LintConfig::default())?;

    if let Some(path) = &out_file {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, report.render_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }

    let errors = report.errors();
    let warnings = report.warnings();
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(format!(
            "lint failed: {errors} error(s), {warnings} warning(s){}",
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        ));
    }
    Ok(())
}
