//! Fixture suite: each lint fires exactly once on its known-bad
//! fixture, stays silent on the suppressed and clean variants — and the
//! workspace itself is lint-clean (the self-test that keeps the gate
//! honest).

use std::fs;
use std::path::Path;

use tsdist_lint::{
    find_workspace_root, lint_files, lint_source, lint_workspace, LintConfig, Report, SourceFile,
};

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Lints a fixture file under the given workspace-relative path (which
/// drives path-based scoping: lock-discipline only runs under
/// `crates/serve/src/` / `crates/eval/src/`, exemptions likewise).
fn lint_fixture_at(rel_path: &str, name: &str) -> Report {
    lint_source(rel_path, &read_fixture(name), &LintConfig::default())
}

/// Lints a fixture file as if it lived in an ordinary library crate
/// (no path-based exemptions apply).
fn lint_fixture(name: &str) -> Report {
    lint_fixture_at(&format!("crates/example/src/{name}"), name)
}

/// Asserts the fixture yields exactly one finding, of the given lint.
fn assert_fires_once(fixture: &str, lint: &str) {
    let report = lint_fixture(fixture);
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec![lint],
        "{fixture}: expected exactly one `{lint}` finding, got {names:?}"
    );
}

#[test]
fn no_unwrap_fires_once_on_known_bad() {
    assert_fires_once("no_unwrap_bad.rs", "no-unwrap-in-lib");
}

#[test]
fn no_unwrap_is_silent_when_suppressed_with_reason() {
    let report = lint_fixture("no_unwrap_suppressed.rs");
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "no-unwrap-in-lib");
    assert_eq!(
        report.suppressed[0].reason,
        "fixture: documented panicking facade"
    );
}

#[test]
fn float_order_fires_once_on_partial_cmp() {
    assert_fires_once("float_order_bad.rs", "float-total-order");
}

#[test]
fn float_order_fires_once_on_literal_equality() {
    assert_fires_once("float_literal_eq_bad.rs", "float-total-order");
}

#[test]
fn nondet_iter_fires_once_on_hashmap() {
    assert_fires_once("nondet_iter_bad.rs", "nondeterministic-iteration");
}

#[test]
fn hot_path_alloc_fires_once_in_upto_fn() {
    assert_fires_once("hot_path_alloc_bad.rs", "hot-path-alloc");
}

#[test]
fn asymmetric_expr_fires_once_on_jeffreys_shape() {
    assert_fires_once("asymmetric_expr_bad.rs", "asymmetric-float-expr");
    // And it is the only warning-severity lint in the set.
    let report = lint_fixture("asymmetric_expr_bad.rs");
    assert_eq!(report.warnings(), 1);
    assert_eq!(report.errors(), 0);
}

#[test]
fn reasonless_suppression_is_audited_but_still_suppresses() {
    let report = lint_fixture("suppression_audit_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["suppression-audit"],
        "the unwrap must be suppressed, the missing reason must be flagged"
    );
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn clean_fixture_is_silent() {
    let report = lint_fixture("clean.rs");
    assert!(
        report.diagnostics.is_empty(),
        "clean fixture produced findings: {:?}",
        report.diagnostics
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn panic_reachability_fires_once_on_the_constructor_assert_chain() {
    // The PR 7 shape: a public entry walks into a panicking constructor
    // facade. One diagnostic, on the entry, printing the chain.
    let report = lint_fixture("panic_reach_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["panic-reachability"],
        "{:?}",
        report.diagnostics
    );
    let msg = &report.diagnostics[0].message;
    assert!(
        msg.contains("resolve_band") && msg.contains("Band::new"),
        "chain missing from: {msg}"
    );
}

#[test]
fn panic_reachability_suppressed_and_documented_variants_are_silent() {
    let report = lint_fixture("panic_reach_suppressed.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "panic-reachability");

    // A `# Panics` doc on the asserting fn absorbs the whole sub-tree.
    let report = lint_fixture("panic_reach_clean.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.suppressed.is_empty());
}

#[test]
fn lock_discipline_fires_once_on_opposite_acquisition_orders() {
    let report = lint_fixture_at("crates/serve/src/registry.rs", "lock_order_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(names, vec!["lock-discipline"], "{:?}", report.diagnostics);
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("conns") && msg.contains("senders"), "{msg}");
}

#[test]
fn lock_discipline_reports_each_pair_of_a_three_lock_cycle() {
    // a -> b -> c -> a: no pair is inverted in isolation, only the
    // order graph's cycle reveals the deadlock — one finding per pair.
    let report = lint_fixture_at("crates/serve/src/trio.rs", "lock_three_cycle_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["lock-discipline"; 3],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn lock_discipline_blocking_send_fires_and_a_reasoned_allow_silences() {
    let report = lint_fixture_at("crates/serve/src/hub.rs", "lock_blocking_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(names, vec!["lock-discipline"], "{:?}", report.diagnostics);
    assert!(report.diagnostics[0].message.contains("send"));

    let report = lint_fixture_at("crates/serve/src/hub.rs", "lock_blocking_suppressed.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn lock_discipline_is_scoped_to_the_concurrent_crates() {
    // The same deadlock shape outside crates/serve|eval/src/ is out of
    // scope: single-threaded crates hold locks only in tests.
    let report = lint_fixture("lock_order_bad.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);

    let report = lint_fixture_at("crates/serve/src/registry.rs", "lock_order_clean.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn upto_contract_fires_on_unpruned_loop_and_untested_lower_bound() {
    let report = lint_fixture("upto_contract_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["upto-contract-shape"],
        "{:?}",
        report.diagnostics
    );
    assert!(report.diagnostics[0].message.contains("cutoff"));

    let report = lint_fixture("upto_lb_untested_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["upto-contract-shape"],
        "{:?}",
        report.diagnostics
    );
    assert!(report.diagnostics[0].message.contains("lb_fixture"));

    // Cutoff consulted in the loop + an admissibility-marked test
    // referencing the bound: silent.
    let report = lint_fixture("upto_contract_clean.rs");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn wire_error_exhaustiveness_flags_the_partially_wired_variant() {
    // QueueFull has all three legs; Stale is constructed but never
    // decoded and never observed end-to-end — exactly one finding.
    let inputs = vec![
        SourceFile {
            rel_path: "crates/serve/src/protocol.rs".into(),
            source: read_fixture("wire/protocol.rs"),
            evidence: false,
        },
        SourceFile {
            rel_path: "crates/serve/src/handler.rs".into(),
            source: read_fixture("wire/handler.rs"),
            evidence: false,
        },
        SourceFile {
            rel_path: "crates/serve/tests/e2e.rs".into(),
            source: read_fixture("wire/e2e.rs"),
            evidence: true,
        },
    ];
    let report = lint_files(inputs, &LintConfig::default());
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["wire-error-exhaustiveness"],
        "{:?}",
        report.diagnostics
    );
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("Stale"), "{msg}");
    assert!(msg.contains("from_label"), "{msg}");
    assert!(msg.contains("e2e"), "{msg}");
    // The diagnostic anchors at the variant's declaration line.
    assert_eq!(report.diagnostics[0].file, "crates/serve/src/protocol.rs");
}

#[test]
fn workspace_is_lint_clean_and_every_suppression_has_a_reason() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fixture suite runs inside the workspace");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace scan");
    assert_eq!(
        report.errors(),
        0,
        "workspace has lint errors:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.warnings(),
        0,
        "workspace has lint warnings:\n{}",
        report.render_human()
    );
    for s in &report.suppressed {
        assert!(
            !s.reason.is_empty() && s.reason != "<missing>",
            "reasonless suppression at {}:{}",
            s.file,
            s.line
        );
    }
    // The call graph the workspace lints ran over must be trustworthy:
    // at least 80% of intra-workspace call sites resolved.
    let graph = report
        .graph
        .as_ref()
        .expect("workspace scan builds a graph");
    assert!(
        graph.resolution_pct() >= 80.0,
        "call-graph resolution regressed to {:.1}% ({graph:?})",
        graph.resolution_pct()
    );
}

#[test]
fn workspace_is_clean_under_the_pinned_baseline() {
    // The committed baseline is what CI gates on (`--baseline
    // results/lint/baseline.json`): applying it must leave zero *new*
    // findings, whatever legacy fingerprints it pins.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fixture suite runs inside the workspace");
    let mut report = lint_workspace(&root, &LintConfig::default()).expect("workspace scan");
    let pinned = fs::read_to_string(root.join("results/lint/baseline.json"))
        .expect("results/lint/baseline.json is committed");
    report.apply_baseline(&tsdist_lint::Baseline::parse(&pinned));
    assert_eq!(
        report.errors() + report.warnings(),
        0,
        "new findings not covered by the pinned baseline:\n{}",
        report.render_human()
    );
}
