//! Fixture suite: each lint fires exactly once on its known-bad
//! fixture, stays silent on the suppressed and clean variants — and the
//! workspace itself is lint-clean (the self-test that keeps the gate
//! honest).

use std::fs;
use std::path::Path;

use tsdist_lint::{find_workspace_root, lint_source, lint_workspace, LintConfig, Report};

/// Lints a fixture file as if it lived in an ordinary library crate
/// (no path-based exemptions apply).
fn lint_fixture(name: &str) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    lint_source(
        &format!("crates/example/src/{name}"),
        &source,
        &LintConfig::default(),
    )
}

/// Asserts the fixture yields exactly one finding, of the given lint.
fn assert_fires_once(fixture: &str, lint: &str) {
    let report = lint_fixture(fixture);
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec![lint],
        "{fixture}: expected exactly one `{lint}` finding, got {names:?}"
    );
}

#[test]
fn no_unwrap_fires_once_on_known_bad() {
    assert_fires_once("no_unwrap_bad.rs", "no-unwrap-in-lib");
}

#[test]
fn no_unwrap_is_silent_when_suppressed_with_reason() {
    let report = lint_fixture("no_unwrap_suppressed.rs");
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "no-unwrap-in-lib");
    assert_eq!(
        report.suppressed[0].reason,
        "fixture: documented panicking facade"
    );
}

#[test]
fn float_order_fires_once_on_partial_cmp() {
    assert_fires_once("float_order_bad.rs", "float-total-order");
}

#[test]
fn float_order_fires_once_on_literal_equality() {
    assert_fires_once("float_literal_eq_bad.rs", "float-total-order");
}

#[test]
fn nondet_iter_fires_once_on_hashmap() {
    assert_fires_once("nondet_iter_bad.rs", "nondeterministic-iteration");
}

#[test]
fn hot_path_alloc_fires_once_in_upto_fn() {
    assert_fires_once("hot_path_alloc_bad.rs", "hot-path-alloc");
}

#[test]
fn asymmetric_expr_fires_once_on_jeffreys_shape() {
    assert_fires_once("asymmetric_expr_bad.rs", "asymmetric-float-expr");
    // And it is the only warning-severity lint in the set.
    let report = lint_fixture("asymmetric_expr_bad.rs");
    assert_eq!(report.warnings(), 1);
    assert_eq!(report.errors(), 0);
}

#[test]
fn reasonless_suppression_is_audited_but_still_suppresses() {
    let report = lint_fixture("suppression_audit_bad.rs");
    let names: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
    assert_eq!(
        names,
        vec!["suppression-audit"],
        "the unwrap must be suppressed, the missing reason must be flagged"
    );
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn clean_fixture_is_silent() {
    let report = lint_fixture("clean.rs");
    assert!(
        report.diagnostics.is_empty(),
        "clean fixture produced findings: {:?}",
        report.diagnostics
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn workspace_is_lint_clean_and_every_suppression_has_a_reason() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fixture suite runs inside the workspace");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace scan");
    assert_eq!(
        report.errors(),
        0,
        "workspace has lint errors:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.warnings(),
        0,
        "workspace has lint warnings:\n{}",
        report.render_human()
    );
    for s in &report.suppressed {
        assert!(
            !s.reason.is_empty() && s.reason != "<missing>",
            "reasonless suppression at {}:{}",
            s.file,
            s.line
        );
    }
}
