//! Known-bad: a blocking channel send while an unrelated MutexGuard is
//! live — every thread needing that mutex stalls behind the send.

use std::sync::Mutex;

pub struct Hub {
    peers: Mutex<Vec<u32>>,
}

impl Hub {
    pub fn broadcast(&self, out: &std::sync::mpsc::Sender<u32>) {
        let peers = self.peers.lock();
        out.send(1);
        drop(peers);
    }
}
