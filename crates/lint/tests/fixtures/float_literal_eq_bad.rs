// Fixture: `float-total-order` also fires on `==` against a float
// literal — exactly once here. Integer comparisons must stay silent.

pub fn is_origin(x: f64, count: usize) -> bool {
    count == 0 && x == 0.0
}
