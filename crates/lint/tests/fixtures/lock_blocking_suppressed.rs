//! The blocking-send shape with a reasoned suppression on the blocking
//! call line, where the diagnostic anchors.

use std::sync::Mutex;

pub struct Hub {
    peers: Mutex<Vec<u32>>,
}

impl Hub {
    pub fn broadcast(&self, out: &std::sync::mpsc::Sender<u32>) {
        let peers = self.peers.lock();
        // tsdist-lint: allow(lock-discipline, reason = "fixture: bounded channel drained by a dedicated thread; send cannot block")
        out.send(1);
        drop(peers);
    }
}
