// Fixture: idiomatic code that every lint must stay silent on —
// total_cmp ordering, BTreeMap, workspace-reusing hot path, typed
// errors instead of unwraps.

use std::collections::BTreeMap;

pub fn sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.total_cmp(b));
}

pub fn tally(keys: &[String]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for k in keys {
        *m.entry(k.clone()).or_insert(0) += 1;
    }
    m
}

pub fn distance_upto(x: &[f64], y: &[f64], scratch: &mut [f64], cutoff: f64) -> f64 {
    let mut sum = 0.0;
    for ((a, b), s) in x.iter().zip(y).zip(scratch.iter_mut()) {
        *s = a - b;
        sum += *s * *s;
        if sum > cutoff {
            return f64::INFINITY;
        }
    }
    sum
}

pub fn head(values: &[f64]) -> Result<f64, &'static str> {
    values.first().copied().ok_or("empty input")
}
