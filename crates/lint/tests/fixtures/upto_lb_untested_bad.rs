//! Known-bad: a public lower bound no admissibility test references —
//! an inadmissible bound silently corrupts 1-NN answers.

pub fn lb_fixture(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a - b;
    }
    acc
}
