//! Known-bad: a `distance_upto` override whose accumulation loop never
//! consults the cutoff and calls no pruning kernel — unpruned work at
//! best, a fork from the exact value at worst.

pub struct Sq;

impl Sq {
    pub fn distance_upto(&self, x: &[f64], y: &[f64], cutoff: f64) -> f64 {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y) {
            let d = a - b;
            acc += d * d;
        }
        acc
    }
}
