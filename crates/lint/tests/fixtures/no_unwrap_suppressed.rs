// Fixture: the same violation as no_unwrap_bad.rs, silenced by a
// reasoned suppression. Must produce zero findings and one recorded
// suppression.

pub fn first(values: &[f64]) -> f64 {
    // tsdist-lint: allow(no-unwrap-in-lib, reason = "fixture: documented panicking facade")
    *values.first().unwrap()
}
