// Fixture: `no-unwrap-in-lib` fires exactly once, on the unwrap below.
// The test-module unwrap at the bottom must stay exempt.

pub fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
