// Fixture: `float-total-order` fires exactly once, on the partial_cmp
// call. (Its unwrap is a separate lint and is deliberately absent here:
// the comparator result feeds unwrap_or, which no-unwrap-in-lib allows.)

pub fn sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
