// Fixture: `hot-path-alloc` fires exactly once, on the allocation in
// the `_upto` function. The same allocation in a plain function is
// fine.

pub fn distance_upto(x: &[f64], y: &[f64], cutoff: f64) -> f64 {
    let scratch: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).collect();
    scratch.iter().map(|d| d * d).sum::<f64>().min(cutoff)
}

pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    let scratch: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).collect();
    scratch.iter().map(|d| d * d).sum()
}
