//! Known-bad: a public entry reaches an undocumented constructor
//! `assert!` through the call graph — the PR 7 shape (`resolve` walking
//! into a panicking facade) that panic-reachability exists to catch.

pub struct Band {
    width: usize,
}

impl Band {
    fn new(width: usize) -> Self {
        assert!(width > 0, "band width must be positive");
        Self { width }
    }
}

pub fn resolve_band(width: usize) -> Band {
    Band::new(width)
}
