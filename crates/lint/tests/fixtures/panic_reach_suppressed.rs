//! The bad shape with a reasoned suppression on the public entry: the
//! diagnostic anchors there, so the allow silences exactly that chain.

pub struct Band {
    width: usize,
}

impl Band {
    fn new(width: usize) -> Self {
        assert!(width > 0, "band width must be positive");
        Self { width }
    }
}

// tsdist-lint: allow(panic-reachability, reason = "fixture: width is validated by every caller in this crate")
pub fn resolve_band(width: usize) -> Band {
    Band::new(width)
}
