//! Clean: the asserting constructor documents its `# Panics` contract,
//! which absorbs the whole caller sub-tree.

pub struct Band {
    width: usize,
}

impl Band {
    /// Builds a band.
    ///
    /// # Panics
    /// Panics when `width` is zero.
    fn new(width: usize) -> Self {
        assert!(width > 0, "band width must be positive");
        Self { width }
    }
}

pub fn resolve_band(width: usize) -> Band {
    Band::new(width)
}
