// Fixture: `asymmetric-float-expr` fires exactly once, on the
// historical Jeffreys shape. The `asymmetric`-marked measure below uses
// the same expression legally.

lockstep_measure!(
    Jeffreys,
    "Jeffreys",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        (ca - cb) * (ca / cb).ln()
    })
);

lockstep_measure!(
    asymmetric
    KullbackLeibler,
    "KullbackLeibler",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        ca * (ca / cb).ln()
    })
);
