// Fixture: `nondeterministic-iteration` fires exactly once, on the
// HashMap in library code (the lint flags every mention, so the fixture
// has exactly one). The test-module HashSet is exempt.

pub fn count(keys: &[String]) -> usize {
    let mut m = std::collections::HashMap::new();
    for k in keys {
        m.insert(k.clone(), ());
    }
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_collections_in_tests_are_fine() {
        let s: std::collections::HashSet<u8> = [1, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
