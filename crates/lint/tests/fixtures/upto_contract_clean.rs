//! Clean: the override's loop breaks on the cutoff, and the public
//! lower bound is referenced from an admissibility-marked test.

pub struct Sq;

impl Sq {
    pub fn distance_upto(&self, x: &[f64], y: &[f64], cutoff: f64) -> f64 {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y) {
            let d = a - b;
            acc += d * d;
            if acc > cutoff {
                return f64::INFINITY;
            }
        }
        acc
    }
}

pub fn lb_fixture(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a - b;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_fixture_lower_bounds_the_distance() {
        let x = [1.0, 2.0];
        let y = [0.0, 1.0];
        let lb = lb_fixture(&x, &y);
        let exact = Sq.distance_upto(&x, &y, f64::INFINITY);
        assert!(lb <= exact);
    }
}
