// Fixture: `suppression-audit` fires exactly once, on the reasonless
// allow. The unwrap itself is still suppressed (the audit finding is
// the record that the suppression is incomplete).

pub fn first(values: &[f64]) -> f64 {
    // tsdist-lint: allow(no-unwrap-in-lib)
    *values.first().unwrap()
}
