//! Clean: both functions honor the same global order (conns before
//! senders), and every blocking-looking call targets its own guard.

use std::sync::Mutex;

pub struct Registry {
    conns: Mutex<Vec<u32>>,
    senders: Mutex<Vec<u32>>,
}

impl Registry {
    pub fn forward(&self) {
        let c = self.conns.lock();
        let s = self.senders.lock();
        drop(s);
        drop(c);
    }

    pub fn forward_again(&self) {
        let c = self.conns.lock();
        let s = self.senders.lock();
        drop(s);
        drop(c);
    }
}
