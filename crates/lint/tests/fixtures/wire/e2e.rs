//! Wire fixture, e2e side: only `queue_full` is ever observed on a
//! socket — `Stale` has zero end-to-end coverage.

#[test]
fn overload_is_rejected_with_queue_full() {
    let code = "queue_full";
    assert_eq!(code, "queue_full");
}
