//! Wire fixture, codec side: `Stale` is encoded but never decoded —
//! `from_label` silently drops it on the client.

pub enum ErrorCode {
    QueueFull,
    Stale,
}

impl ErrorCode {
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Stale => "stale",
        }
    }

    pub fn from_label(s: &str) -> Option<ErrorCode> {
        match s {
            "queue_full" => Some(ErrorCode::QueueFull),
            _ => None,
        }
    }
}
