//! Wire fixture, server side: both variants are constructed, so both
//! owe all three coverage legs.

use crate::protocol::ErrorCode;

pub fn admit(pending: usize, epoch_ok: bool) -> Result<(), ErrorCode> {
    if pending > 64 {
        return Err(ErrorCode::QueueFull);
    }
    if !epoch_ok {
        return Err(ErrorCode::Stale);
    }
    Ok(())
}
