//! Known-bad: two functions take the same pair of mutexes in opposite
//! orders — the classic deadlock when both run concurrently.

use std::sync::Mutex;

pub struct Registry {
    conns: Mutex<Vec<u32>>,
    senders: Mutex<Vec<u32>>,
}

impl Registry {
    pub fn forward(&self) {
        let c = self.conns.lock();
        let s = self.senders.lock();
        drop(s);
        drop(c);
    }

    pub fn reverse(&self) {
        let s = self.senders.lock();
        let c = self.conns.lock();
        drop(c);
        drop(s);
    }
}
