//! Known-bad: three locks acquired in a rock-paper-scissors cycle
//! (a before b, b before c, c before a). No single pair looks inverted
//! in isolation — only the order graph's cycle reveals the deadlock.

use std::sync::Mutex;

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    pub fn bc(&self) {
        let gb = self.b.lock();
        let gc = self.c.lock();
        drop(gc);
        drop(gb);
    }

    pub fn ca(&self) {
        let gc = self.c.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gc);
    }
}
