//! Loader for the UCR archive text format.
//!
//! Each line of a UCR file is `label<sep>v1<sep>v2<sep>...` where the
//! separator is a comma (2018 archive) or tab/whitespace (older
//! releases). Missing values appear as `NaN`. Labels may be arbitrary
//! integers (including negatives); they are remapped to dense `0..k`
//! class indices, consistently across the train and test files.
//!
//! The loader applies the paper's compatibility pipeline
//! ([`crate::preprocess::harmonize`]) so that varying-length or
//! missing-value datasets come out rectangular and finite, exactly as the
//! paper prepared the 2018 archive.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::dataset::{Dataset, DatasetError};
use crate::preprocess::harmonize;

/// Errors raised while parsing UCR-format data.
#[derive(Debug)]
pub enum UcrError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (bad number, missing label, no values).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The parsed data failed dataset validation.
    Invalid(DatasetError),
}

impl fmt::Display for UcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UcrError::Io(e) => write!(f, "I/O error: {e}"),
            UcrError::Parse { line, message } => write!(f, "line {line}: {message}"),
            UcrError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for UcrError {}

impl From<std::io::Error> for UcrError {
    fn from(e: std::io::Error) -> Self {
        UcrError::Io(e)
    }
}

/// One parsed split: raw labels and (possibly ragged, NaN-containing) series.
#[derive(Debug, Clone, Default)]
pub struct RawSplit {
    /// Raw labels as they appear in the file.
    pub labels: Vec<i64>,
    /// Raw series values.
    pub series: Vec<Vec<f64>>,
}

/// Parses UCR-format text. Empty lines are skipped. `NaN` (any case)
/// parses as a missing value.
pub fn parse_ucr_text(text: &str) -> Result<RawSplit, UcrError> {
    let mut split = RawSplit::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let sep_is_comma = line.contains(',');
        let mut fields = if sep_is_comma {
            itertools_split(line, ',')
        } else {
            line.split_whitespace().map(str::to_owned).collect()
        };
        if fields.len() < 2 {
            return Err(UcrError::Parse {
                line: lineno + 1,
                message: "expected a label followed by at least one value".into(),
            });
        }
        let label_str = fields.remove(0);
        // UCR labels are integral but sometimes serialized as "1.0".
        let label = label_str
            .parse::<f64>()
            .ok()
            // tsdist-lint: allow(float-total-order, reason = "exact integrality test: `fract() == 0.0` is the definition of an integral float")
            .filter(|v| v.fract() == 0.0 && v.is_finite())
            .map(|v| v as i64)
            .ok_or_else(|| UcrError::Parse {
                line: lineno + 1,
                message: format!("bad label {label_str:?}"),
            })?;
        let mut values = Vec::with_capacity(fields.len());
        for fstr in &fields {
            if fstr.eq_ignore_ascii_case("nan") || fstr.is_empty() {
                values.push(f64::NAN);
            } else {
                let v: f64 = fstr.parse().map_err(|_| UcrError::Parse {
                    line: lineno + 1,
                    message: format!("bad value {fstr:?}"),
                })?;
                values.push(v);
            }
        }
        // Trailing NaNs in the 2018 archive denote varying lengths: trim them
        // so resampling works on the real observations.
        while values.len() > 1 && values.last().is_some_and(|v| v.is_nan()) {
            values.pop();
        }
        split.labels.push(label);
        split.series.push(values);
    }
    Ok(split)
}

fn itertools_split(line: &str, sep: char) -> Vec<String> {
    line.split(sep).map(|s| s.trim().to_owned()).collect()
}

/// Builds a [`Dataset`] from two parsed splits: remaps labels to dense
/// class indices (consistent across splits) and harmonizes lengths and
/// missing values across *both* splits together, so train and test end up
/// with the same series length.
pub fn dataset_from_splits(
    name: impl Into<String>,
    train: RawSplit,
    test: RawSplit,
) -> Result<Dataset, UcrError> {
    let mut label_map: BTreeMap<i64, usize> = BTreeMap::new();
    for l in train.labels.iter().chain(&test.labels) {
        let next = label_map.len();
        label_map.entry(*l).or_insert(next);
    }
    let train_labels: Vec<usize> = train.labels.iter().map(|l| label_map[l]).collect();
    let test_labels: Vec<usize> = test.labels.iter().map(|l| label_map[l]).collect();

    let n_train = train.series.len();
    let mut all = train.series;
    all.extend(test.series);
    let fixed = harmonize(&all);
    let test_series = fixed[n_train..].to_vec();
    let train_series = fixed[..n_train].to_vec();

    Dataset::new(name, train_series, train_labels, test_series, test_labels)
        .map_err(UcrError::Invalid)
}

/// Serializes one split of a dataset as UCR-format tab-separated text
/// (`label<TAB>v1<TAB>v2...`), the inverse of [`parse_ucr_text`]. Labels
/// are written as the dense class indices.
///
/// # Panics
///
/// Panics when `series` and `labels` disagree in length.
pub fn to_ucr_text(series: &[Vec<f64>], labels: &[usize]) -> String {
    assert_eq!(series.len(), labels.len(), "series/label count mismatch");
    let mut out = String::new();
    for (s, label) in series.iter().zip(labels) {
        out.push_str(&label.to_string());
        for v in s {
            out.push('\t');
            out.push_str(&format!("{v:.12e}"));
        }
        out.push('\n');
    }
    out
}

/// Writes a dataset as a `<Name>_TRAIN.tsv` / `<Name>_TEST.tsv` pair in
/// `dir`, the archive's layout, so that [`load_ucr_dataset`] round-trips.
pub fn write_ucr_dataset(ds: &Dataset, dir: impl AsRef<Path>) -> Result<(), UcrError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    // Dataset names may contain '/' (the synthetic archive does); keep
    // the last path component for the file stem.
    let stem = ds.name.rsplit('/').next().unwrap_or(&ds.name);
    fs::write(
        dir.join(format!("{stem}_TRAIN.tsv")),
        to_ucr_text(&ds.train, &ds.train_labels),
    )?;
    fs::write(
        dir.join(format!("{stem}_TEST.tsv")),
        to_ucr_text(&ds.test, &ds.test_labels),
    )?;
    Ok(())
}

/// Loads a dataset from a pair of UCR-format files (the archive's
/// `<Name>_TRAIN.tsv` / `<Name>_TEST.tsv` convention).
pub fn load_ucr_dataset(
    name: impl Into<String>,
    train_path: impl AsRef<Path>,
    test_path: impl AsRef<Path>,
) -> Result<Dataset, UcrError> {
    let train = parse_ucr_text(&fs::read_to_string(train_path)?)?;
    let test = parse_ucr_text(&fs::read_to_string(test_path)?)?;
    dataset_from_splits(name, train, test)
}

/// Walks `root` for UCR-layout dataset directories, returning the sorted
/// `(name, train path, test path)` triples both archive loaders share.
fn dataset_file_pairs(
    root: &Path,
) -> Result<Vec<(String, std::path::PathBuf, std::path::PathBuf)>, UcrError> {
    let mut pairs = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(root)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for dir in entries {
        let Some(name) = dir.file_name().map(|s| s.to_string_lossy().into_owned()) else {
            continue;
        };
        for ext in ["tsv", "txt", "csv"] {
            let train = dir.join(format!("{name}_TRAIN.{ext}"));
            let test = dir.join(format!("{name}_TEST.{ext}"));
            if train.exists() && test.exists() {
                pairs.push((name, train, test));
                break;
            }
        }
    }
    Ok(pairs)
}

/// Loads every dataset under `root`, where each subdirectory follows the
/// UCR layout (`<Name>/<Name>_TRAIN.tsv` + `<Name>/<Name>_TEST.tsv`; the
/// `.txt`/`.csv` extensions are also accepted). Subdirectories without a
/// train/test pair are skipped. Datasets are returned sorted by name so
/// runs are deterministic regardless of filesystem order.
///
/// The first malformed dataset aborts the whole load; see
/// [`load_ucr_archive_lenient`] for the collect-and-continue variant.
pub fn load_ucr_archive(root: impl AsRef<Path>) -> Result<Vec<Dataset>, UcrError> {
    let mut datasets = Vec::new();
    for (name, train, test) in dataset_file_pairs(root.as_ref())? {
        datasets.push(load_ucr_dataset(&name, &train, &test)?);
    }
    Ok(datasets)
}

/// One dataset that failed to load during a lenient archive walk.
#[derive(Debug)]
pub struct DatasetFailure {
    /// Dataset (directory) name.
    pub name: String,
    /// What went wrong.
    pub error: UcrError,
}

/// Outcome of [`load_ucr_archive_lenient`]: the datasets that parsed,
/// plus a per-dataset failure report for those that did not.
#[derive(Debug, Default)]
pub struct LenientArchive {
    /// Successfully loaded datasets, sorted by name.
    pub datasets: Vec<Dataset>,
    /// Datasets that failed to load, sorted by name.
    pub failures: Vec<DatasetFailure>,
}

impl LenientArchive {
    /// A deterministic human-readable report of the load, one line per
    /// failed dataset.
    pub fn render_report(&self) -> String {
        let mut out = format!(
            "archive: {} dataset(s) loaded, {} failed\n",
            self.datasets.len(),
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!("  FAILED {}: {}\n", f.name, f.error));
        }
        out
    }
}

/// Like [`load_ucr_archive`], but a malformed dataset no longer aborts
/// the whole archive: its [`UcrError`] is collected into the returned
/// report and the remaining datasets still load. Only the directory walk
/// itself can fail.
pub fn load_ucr_archive_lenient(root: impl AsRef<Path>) -> Result<LenientArchive, UcrError> {
    let mut archive = LenientArchive::default();
    for (name, train, test) in dataset_file_pairs(root.as_ref())? {
        match load_ucr_dataset(&name, &train, &test) {
            Ok(ds) => archive.datasets.push(ds),
            Err(error) => archive.failures.push(DatasetFailure { name, error }),
        }
    }
    Ok(archive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_walker_finds_written_datasets() {
        let root = std::env::temp_dir().join("tsdist_ucr_archive_walk");
        let _ = std::fs::remove_dir_all(&root);
        for (name, label_offset) in [("Alpha", 0usize), ("Beta", 1usize)] {
            let ds = Dataset::new(
                name,
                vec![vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]],
                vec![label_offset % 2, (label_offset + 1) % 2],
                vec![vec![0.1, 1.1, 2.1]],
                vec![0],
            )
            .unwrap();
            write_ucr_dataset(&ds, root.join(name)).unwrap();
        }
        // A distractor directory without a pair.
        std::fs::create_dir_all(root.join("NotADataset")).unwrap();
        let archive = load_ucr_archive(&root).unwrap();
        assert_eq!(archive.len(), 2);
        assert_eq!(archive[0].name, "Alpha");
        assert_eq!(archive[1].name, "Beta");
    }

    #[test]
    fn lenient_archive_collects_failures_and_keeps_good_datasets() {
        let root = std::env::temp_dir().join("tsdist_ucr_archive_lenient");
        let _ = std::fs::remove_dir_all(&root);
        for name in ["Good", "Sound"] {
            let ds = Dataset::new(
                name,
                vec![vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]],
                vec![0, 1],
                vec![vec![0.1, 1.1, 2.1]],
                vec![0],
            )
            .unwrap();
            write_ucr_dataset(&ds, root.join(name)).unwrap();
        }
        // A corrupted dataset: unparseable value in the train split.
        let bad = root.join("Broken");
        std::fs::create_dir_all(&bad).unwrap();
        std::fs::write(bad.join("Broken_TRAIN.tsv"), "1\t0.5\t<oops>\n").unwrap();
        std::fs::write(bad.join("Broken_TEST.tsv"), "1\t0.5\t0.6\n").unwrap();

        // Strict loading aborts on the corrupted dataset...
        assert!(load_ucr_archive(&root).is_err());
        // ...lenient loading keeps the two good ones and reports the bad.
        let lenient = load_ucr_archive_lenient(&root).unwrap();
        assert_eq!(lenient.datasets.len(), 2);
        assert_eq!(lenient.failures.len(), 1);
        assert_eq!(lenient.failures[0].name, "Broken");
        assert!(matches!(
            lenient.failures[0].error,
            UcrError::Parse { line: 1, .. }
        ));
        let report = lenient.render_report();
        assert!(report.contains("2 dataset(s) loaded, 1 failed"));
        assert!(report.contains("FAILED Broken"));
    }

    #[test]
    fn lenient_archive_with_no_failures_matches_strict() {
        let root = std::env::temp_dir().join("tsdist_ucr_archive_lenient_clean");
        let _ = std::fs::remove_dir_all(&root);
        let ds = Dataset::new(
            "Only",
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![0, 1],
            vec![vec![0.5, 0.5]],
            vec![0],
        )
        .unwrap();
        write_ucr_dataset(&ds, root.join("Only")).unwrap();
        let strict = load_ucr_archive(&root).unwrap();
        let lenient = load_ucr_archive_lenient(&root).unwrap();
        assert_eq!(strict.len(), 1);
        assert_eq!(lenient.datasets.len(), 1);
        assert!(lenient.failures.is_empty());
    }

    #[test]
    fn parses_tab_separated() {
        let text = "1\t0.5\t0.7\t0.9\n2\t1.0\t1.1\t1.2\n";
        let s = parse_ucr_text(text).unwrap();
        assert_eq!(s.labels, vec![1, 2]);
        assert_eq!(s.series[0], vec![0.5, 0.7, 0.9]);
    }

    #[test]
    fn parses_comma_separated_with_nan() {
        let text = "-1,0.5,NaN,0.9\n1,1.0,1.1,1.2\n";
        let s = parse_ucr_text(text).unwrap();
        assert_eq!(s.labels, vec![-1, 1]);
        assert!(s.series[0][1].is_nan());
    }

    #[test]
    fn trailing_nans_are_trimmed_as_varying_length() {
        let text = "1,0.5,0.7,NaN,NaN\n";
        let s = parse_ucr_text(text).unwrap();
        assert_eq!(s.series[0], vec![0.5, 0.7]);
    }

    #[test]
    fn float_labels_are_accepted() {
        let s = parse_ucr_text("3.0,1.0,2.0\n").unwrap();
        assert_eq!(s.labels, vec![3]);
    }

    #[test]
    fn bad_value_is_reported_with_line_number() {
        let e = parse_ucr_text("1,0.5\n1,oops\n").unwrap_err();
        match e {
            UcrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn labels_are_densified_consistently() {
        let train = parse_ucr_text("5,1.0,2.0\n-1,3.0,4.0\n").unwrap();
        let test = parse_ucr_text("5,0.0,1.0\n").unwrap();
        let ds = dataset_from_splits("t", train, test).unwrap();
        // First-seen order: 5 -> 0, -1 -> 1.
        assert_eq!(ds.train_labels, vec![0, 1]);
        assert_eq!(ds.test_labels, vec![0]);
        assert_eq!(ds.n_classes(), 2);
    }

    #[test]
    fn ragged_series_are_harmonized_across_splits() {
        let train = parse_ucr_text("1,1.0,2.0,3.0,4.0\n").unwrap();
        let test = parse_ucr_text("1,5.0,6.0\n").unwrap();
        let ds = dataset_from_splits("t", train, test).unwrap();
        assert_eq!(ds.series_len(), 4);
        assert_eq!(ds.test[0].len(), 4);
        assert_eq!(ds.test[0][0], 5.0);
        assert_eq!(ds.test[0][3], 6.0);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let s = parse_ucr_text("\n1,1.0,2.0\n\n\n2,3.0,4.0\n").unwrap();
        assert_eq!(s.labels.len(), 2);
    }

    #[test]
    fn write_then_load_roundtrips_values() {
        let ds = Dataset::new(
            "demo",
            vec![vec![0.125, -3.5, 2.0], vec![1.0, 2.0, 3.0]],
            vec![0, 1],
            vec![vec![-0.25, 0.5, 0.75]],
            vec![1],
        )
        .unwrap();
        let dir = std::env::temp_dir().join("tsdist_ucr_write_test");
        write_ucr_dataset(&ds, &dir).unwrap();
        let back = load_ucr_dataset(
            "demo",
            dir.join("demo_TRAIN.tsv"),
            dir.join("demo_TEST.tsv"),
        )
        .unwrap();
        assert_eq!(back.train_labels, ds.train_labels);
        assert_eq!(back.test_labels, ds.test_labels);
        for (a, b) in back.train.iter().flatten().zip(ds.train.iter().flatten()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn load_from_files_roundtrip() {
        let dir = std::env::temp_dir().join("tsdist_ucr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let train_p = dir.join("X_TRAIN.tsv");
        let test_p = dir.join("X_TEST.tsv");
        std::fs::write(&train_p, "1\t0.1\t0.2\n2\t0.3\t0.4\n").unwrap();
        std::fs::write(&test_p, "1\t0.5\t0.6\n").unwrap();
        let ds = load_ucr_dataset("X", &train_p, &test_p).unwrap();
        assert_eq!(ds.n_train(), 2);
        assert_eq!(ds.n_test(), 1);
        assert_eq!(ds.series_len(), 2);
    }
}
