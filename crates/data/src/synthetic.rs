//! A seeded synthetic archive that stands in for the UCR Time-Series
//! Archive.
//!
//! The real archive cannot be redistributed here, so we generate
//! class-labelled datasets whose *distortion structure* reproduces the
//! phenomena that drive the paper's findings:
//!
//! * **Shape** datasets: classes differ by smooth base shape; instances
//!   add noise only. Lock-step measures suffice.
//! * **Shifted** datasets: instances are randomly shifted in time. Sliding
//!   measures (the NCC family) dominate lock-step ones — the mechanism
//!   behind the paper's M3 finding.
//! * **Warped** datasets: instances undergo smooth local time warping.
//!   Elastic measures (DTW, MSM, TWE, ...) dominate — M4's territory.
//! * **HeavyTailed** datasets: occasional large spikes contaminate the
//!   noise. L1-family lock-step measures (Lorentzian, Manhattan) are more
//!   robust than ED — the mechanism behind the paper's M2 finding.
//! * **AmplitudeScaled** datasets: instances are rescaled/offset, so the
//!   choice of normalization matters — M1's territory.
//! * **Trended** datasets: instances carry random linear trends.
//! * **Mixed** datasets: shift + warp + noise together, the hard case.
//!
//! Each dataset's class shapes, sizes, and distortion magnitudes are drawn
//! from a per-dataset RNG seeded deterministically from the archive seed,
//! so a given `ArchiveConfig` always produces the identical archive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::preprocess::harmonize;

/// The distortion archetype of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Distinct smooth shapes per class; additive Gaussian noise only.
    Shape,
    /// Shape + random time shift per instance.
    Shifted,
    /// Shape + smooth local time warping per instance.
    Warped,
    /// Shape + Gaussian noise contaminated with sparse large spikes.
    HeavyTailed,
    /// Shape + per-instance amplitude scaling and offset.
    AmplitudeScaled,
    /// Shape + random linear trend per instance.
    Trended,
    /// Shift + warp + noise together.
    Mixed,
}

impl Archetype {
    /// All archetypes, in the order the archive cycles through them.
    pub const ALL: [Archetype; 7] = [
        Archetype::Shape,
        Archetype::Shifted,
        Archetype::Warped,
        Archetype::HeavyTailed,
        Archetype::AmplitudeScaled,
        Archetype::Trended,
        Archetype::Mixed,
    ];

    /// Short name used in dataset names.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Shape => "shape",
            Archetype::Shifted => "shift",
            Archetype::Warped => "warp",
            Archetype::HeavyTailed => "heavytail",
            Archetype::AmplitudeScaled => "ampscale",
            Archetype::Trended => "trend",
            Archetype::Mixed => "mixed",
        }
    }
}

/// Configuration of the synthetic archive.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Number of datasets to generate.
    pub n_datasets: usize,
    /// Master seed; everything is derived deterministically from it.
    pub seed: u64,
    /// Series length range (inclusive).
    pub length: (usize, usize),
    /// Number of classes range (inclusive).
    pub classes: (usize, usize),
    /// Total training-series count range (inclusive).
    pub train_size: (usize, usize),
    /// Total test-series count range (inclusive).
    pub test_size: (usize, usize),
    /// Fraction of datasets that carry missing values / varying lengths
    /// (exercising the harmonization path, like the 2018 UCR archive).
    pub irregular_fraction: f64,
}

impl ArchiveConfig {
    /// A small archive for unit/integration tests (fast).
    pub fn quick(n_datasets: usize, seed: u64) -> Self {
        ArchiveConfig {
            n_datasets,
            seed,
            length: (40, 80),
            classes: (2, 4),
            train_size: (12, 24),
            test_size: (20, 40),
            irregular_fraction: 0.1,
        }
    }

    /// The default reproduction-scale archive: big enough for stable
    /// statistics, small enough to run the full study on a laptop.
    pub fn standard(n_datasets: usize, seed: u64) -> Self {
        ArchiveConfig {
            n_datasets,
            seed,
            length: (64, 160),
            classes: (2, 6),
            train_size: (20, 50),
            test_size: (40, 90),
            irregular_fraction: 0.08,
        }
    }
}

/// Generates the full archive described by `config`.
pub fn generate_archive(config: &ArchiveConfig) -> Vec<Dataset> {
    (0..config.n_datasets)
        .map(|i| generate_dataset(config, i))
        .collect()
}

/// Generates dataset `index` of the archive (deterministic in
/// `(config.seed, index)`).
pub fn generate_dataset(config: &ArchiveConfig, index: usize) -> Dataset {
    let archetype = Archetype::ALL[index % Archetype::ALL.len()];
    // SplitMix64-style seed derivation keeps per-dataset streams independent.
    let seed = splitmix64(config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)));
    let mut rng = StdRng::seed_from_u64(seed);

    let m = rng.gen_range(config.length.0..=config.length.1);
    let k = rng.gen_range(config.classes.0..=config.classes.1);
    let n_train = rng
        .gen_range(config.train_size.0..=config.train_size.1)
        .max(k);
    let n_test = rng
        .gen_range(config.test_size.0..=config.test_size.1)
        .max(k);
    let irregular = rng.gen_bool(config.irregular_fraction);

    let params = DistortionParams::sample(archetype, &mut rng);

    // Classes are *related*: every class shape is the dataset's base shape
    // plus a small class-specific delta. The separation factor controls
    // dataset difficulty — with independent random shapes per class every
    // measure scores near 100% and no differences are observable; related
    // classes put accuracies in the UCR-like 0.5-0.9 band.
    let base = random_shape(&mut rng, m);
    let separation = rng.gen_range(0.25..0.6);
    let shapes: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            let delta = random_shape(&mut rng, m);
            let mut shape: Vec<f64> = base
                .iter()
                .zip(&delta)
                .map(|(b, d)| b + separation * d)
                .collect();
            znorm_in_place(&mut shape);
            shape
        })
        .collect();

    let make_split = |n: usize, rng: &mut StdRng| -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut series = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin guarantees every class appears in both splits.
            let class = i % k;
            labels.push(class);
            series.push(generate_instance(&shapes[class], &params, rng));
        }
        (series, labels)
    };

    let (mut train, train_labels) = make_split(n_train, &mut rng);
    let (mut test, test_labels) = make_split(n_test, &mut rng);

    if irregular {
        inject_irregularities(&mut train, &mut rng);
        inject_irregularities(&mut test, &mut rng);
        let n_train_series = train.len();
        let mut all = train;
        all.extend(test);
        let fixed = harmonize(&all);
        test = fixed[n_train_series..].to_vec();
        train = fixed[..n_train_series].to_vec();
    }

    let name = format!("synthetic/{}-{:03}", archetype.name(), index);
    Dataset::new(name, train, train_labels, test, test_labels)
        // tsdist-lint: allow(no-unwrap-in-lib, reason = "generator invariant: the loops above construct consistent shapes and labels")
        .expect("generator produced an invalid dataset")
}

/// Per-dataset distortion magnitudes, sampled once per dataset so datasets
/// of the same archetype still differ in difficulty.
#[derive(Debug, Clone, Copy)]
struct DistortionParams {
    noise_sigma: f64,
    max_shift_frac: f64,
    warp_strength: f64,
    spike_prob: f64,
    spike_scale: f64,
    amp_range: (f64, f64),
    offset_range: (f64, f64),
    trend_slope: f64,
}

impl DistortionParams {
    fn sample(archetype: Archetype, rng: &mut StdRng) -> Self {
        let mut p = DistortionParams {
            noise_sigma: rng.gen_range(0.5..1.0),
            max_shift_frac: 0.0,
            warp_strength: 0.0,
            spike_prob: 0.0,
            spike_scale: 0.0,
            amp_range: (1.0, 1.0),
            offset_range: (0.0, 0.0),
            trend_slope: 0.0,
        };
        match archetype {
            Archetype::Shape => {}
            Archetype::Shifted => {
                p.max_shift_frac = rng.gen_range(0.15..0.35);
            }
            Archetype::Warped => {
                p.warp_strength = rng.gen_range(0.35..0.75);
                p.noise_sigma *= 0.8;
            }
            Archetype::HeavyTailed => {
                p.spike_prob = rng.gen_range(0.02..0.06);
                p.spike_scale = rng.gen_range(4.0..9.0);
            }
            Archetype::AmplitudeScaled => {
                p.amp_range = (0.4, 2.5);
                p.offset_range = (-2.0, 2.0);
            }
            Archetype::Trended => {
                p.trend_slope = rng.gen_range(1.0..3.0);
            }
            Archetype::Mixed => {
                p.max_shift_frac = rng.gen_range(0.08..0.2);
                p.warp_strength = rng.gen_range(0.2..0.45);
                p.noise_sigma *= 0.9;
            }
        }
        p
    }
}

/// A smooth random base shape of length `m`: a short random Fourier series
/// plus a few Gaussian bumps, z-normalized.
fn random_shape(rng: &mut StdRng, m: usize) -> Vec<f64> {
    let harmonics = rng.gen_range(2..=5);
    let mut freqs = Vec::with_capacity(harmonics);
    let mut amps = Vec::with_capacity(harmonics);
    let mut phases = Vec::with_capacity(harmonics);
    for h in 0..harmonics {
        freqs.push(rng.gen_range(1.0..7.0));
        amps.push(rng.gen_range(0.4..1.0) / (h as f64 + 1.0));
        phases.push(rng.gen_range(0.0..std::f64::consts::TAU));
    }
    let n_bumps = rng.gen_range(1..=3);
    let mut bumps = Vec::with_capacity(n_bumps);
    for _ in 0..n_bumps {
        let center = rng.gen_range(0.1..0.9);
        let width = rng.gen_range(0.02..0.12);
        let height: f64 = rng.gen_range(0.8..2.2) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        bumps.push((center, width, height));
    }

    let mut shape: Vec<f64> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            let mut v = 0.0;
            for h in 0..harmonics {
                v += amps[h] * (std::f64::consts::TAU * freqs[h] * t + phases[h]).sin();
            }
            for &(c, w, height) in &bumps {
                let d = (t - c) / w;
                v += height * (-0.5 * d * d).exp();
            }
            v
        })
        .collect();
    znorm_in_place(&mut shape);
    shape
}

fn znorm_in_place(x: &mut [f64]) {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt().max(1e-12);
    for v in x.iter_mut() {
        *v = (*v - mean) / sd;
    }
}

/// Samples one instance of a class shape with the dataset's distortions.
fn generate_instance(shape: &[f64], p: &DistortionParams, rng: &mut StdRng) -> Vec<f64> {
    let m = shape.len();

    // 1. Smooth monotone time warp (identity when warp_strength == 0).
    let warped: Vec<f64> = if p.warp_strength > 0.0 {
        let warp_map = random_warp_map(rng, m, p.warp_strength);
        warp_map
            .iter()
            .map(|&pos| sample_linear(shape, pos * (m - 1) as f64))
            .collect()
    } else {
        shape.to_vec()
    };

    // 2. Circular shift.
    let shifted: Vec<f64> = if p.max_shift_frac > 0.0 {
        let max_s = ((m as f64) * p.max_shift_frac) as isize;
        let s = rng.gen_range(-max_s..=max_s);
        (0..m)
            .map(|i| {
                let j = (i as isize - s).rem_euclid(m as isize) as usize;
                warped[j]
            })
            .collect()
    } else {
        warped
    };

    // 3. Amplitude / offset / trend / noise / spikes.
    let amp = if p.amp_range.0 != p.amp_range.1 {
        rng.gen_range(p.amp_range.0..p.amp_range.1)
    } else {
        1.0
    };
    let offset = if p.offset_range.0 != p.offset_range.1 {
        rng.gen_range(p.offset_range.0..p.offset_range.1)
    } else {
        0.0
    };
    let slope = if p.trend_slope > 0.0 {
        rng.gen_range(-p.trend_slope..p.trend_slope)
    } else {
        0.0
    };

    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            let mut v = amp * shifted[i] + offset + slope * t;
            v += p.noise_sigma * gaussian(rng);
            if p.spike_prob > 0.0 && rng.gen_bool(p.spike_prob) {
                v += p.spike_scale * gaussian(rng);
            }
            v
        })
        .collect()
}

/// A smooth monotone map `[0,1] -> [0,1]` built from a random piecewise-
/// linear density with `strength` controlling how far it bends from the
/// identity.
fn random_warp_map(rng: &mut StdRng, m: usize, strength: f64) -> Vec<f64> {
    let knots = 6;
    let mut increments: Vec<f64> = (0..knots)
        .map(|_| rng.gen_range((1.0 - strength).max(0.05)..(1.0 + strength)))
        .collect();
    let total: f64 = increments.iter().sum();
    for v in &mut increments {
        *v /= total;
    }
    // Cumulative knot positions of the warp at knot boundaries.
    let mut cum = vec![0.0];
    for &inc in &increments {
        // tsdist-lint: allow(no-unwrap-in-lib, reason = "`cum` is seeded with one element two lines above")
        cum.push(cum.last().unwrap() + inc);
    }
    (0..m)
        .map(|i| {
            let t = i as f64 / (m.max(2) - 1) as f64;
            let seg = ((t * knots as f64).floor() as usize).min(knots - 1);
            let frac = t * knots as f64 - seg as f64;
            (cum[seg] + frac * increments[seg]).clamp(0.0, 1.0)
        })
        .collect()
}

/// Linear interpolation of `x` at fractional position `pos` (clamped).
fn sample_linear(x: &[f64], pos: f64) -> f64 {
    let pos = pos.clamp(0.0, (x.len() - 1) as f64);
    let lo = pos.floor() as usize;
    if lo + 1 >= x.len() {
        x[x.len() - 1]
    } else {
        let frac = pos - lo as f64;
        x[lo] * (1.0 - frac) + x[lo + 1] * frac
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Knocks NaN holes into ~5% of values and truncates a few series, to
/// exercise the harmonization path.
fn inject_irregularities(series: &mut [Vec<f64>], rng: &mut StdRng) {
    for s in series.iter_mut() {
        if rng.gen_bool(0.3) {
            let holes = (s.len() / 20).max(1);
            for _ in 0..holes {
                let i = rng.gen_range(0..s.len());
                s[i] = f64::NAN;
            }
        }
        if rng.gen_bool(0.2) && s.len() > 10 {
            let new_len = rng.gen_range(s.len() * 7 / 10..s.len());
            s.truncate(new_len);
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ArchiveConfig::quick(7, 42);
        let a = generate_archive(&cfg);
        let b = generate_archive(&cfg);
        assert_eq!(a.len(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.train, y.train);
            assert_eq!(x.test, y.test);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dataset(&ArchiveConfig::quick(1, 1), 0);
        let b = generate_dataset(&ArchiveConfig::quick(1, 2), 0);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn all_archetypes_are_cycled() {
        let cfg = ArchiveConfig::quick(14, 7);
        let archive = generate_archive(&cfg);
        for (i, arch) in Archetype::ALL.iter().enumerate() {
            assert!(archive[i].name.contains(arch.name()));
            assert!(archive[i + 7].name.contains(arch.name()));
        }
    }

    #[test]
    fn datasets_are_valid_and_within_config_bounds() {
        let cfg = ArchiveConfig::standard(14, 3);
        for ds in generate_archive(&cfg) {
            ds.validate().unwrap();
            assert!(ds.series_len() >= cfg.length.0);
            assert!(ds.n_classes() >= cfg.classes.0 && ds.n_classes() <= cfg.classes.1);
            assert!(ds.n_train() >= cfg.train_size.0.min(ds.n_classes()));
        }
    }

    #[test]
    fn every_class_appears_in_both_splits() {
        let cfg = ArchiveConfig::quick(7, 11);
        for ds in generate_archive(&cfg) {
            let k = ds.n_classes();
            let mut train_classes: Vec<usize> = ds.train_labels.clone();
            train_classes.sort_unstable();
            train_classes.dedup();
            assert_eq!(train_classes.len(), k, "{}", ds.name);
            let mut test_classes: Vec<usize> = ds.test_labels.clone();
            test_classes.sort_unstable();
            test_classes.dedup();
            assert_eq!(test_classes.len(), k, "{}", ds.name);
        }
    }

    #[test]
    fn warp_map_is_monotone_and_spans_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let map = random_warp_map(&mut rng, 100, 0.6);
            assert!(map[0] >= 0.0 && map[0] < 0.05);
            assert!(*map.last().unwrap() > 0.95 && *map.last().unwrap() <= 1.0);
            for w in map.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "warp map not monotone");
            }
        }
    }

    #[test]
    fn base_shapes_are_z_normalized() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = random_shape(&mut rng, 128);
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
