//! Archive summaries — the descriptive statistics the paper quotes for
//! the UCR archive ("each dataset contains from 40 to 24,000 time series,
//! the lengths vary from 15 to 2,844, ...").

use crate::dataset::Dataset;

/// Descriptive statistics of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Training-series count.
    pub n_train: usize,
    /// Test-series count.
    pub n_test: usize,
    /// Series length.
    pub length: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Fraction of the majority class over both splits (class imbalance).
    pub majority_fraction: f64,
}

impl DatasetSummary {
    /// Summarizes a dataset.
    pub fn of(ds: &Dataset) -> Self {
        let mut counts: Vec<usize> = Vec::new();
        for &l in ds.train_labels.iter().chain(&ds.test_labels) {
            if l >= counts.len() {
                counts.resize(l + 1, 0);
            }
            counts[l] += 1;
        }
        let total: usize = counts.iter().sum();
        let majority = counts.iter().copied().max().unwrap_or(0);
        DatasetSummary {
            name: ds.name.clone(),
            n_train: ds.n_train(),
            n_test: ds.n_test(),
            length: ds.series_len(),
            n_classes: ds.n_classes(),
            majority_fraction: if total == 0 {
                0.0
            } else {
                majority as f64 / total as f64
            },
        }
    }
}

/// Aggregate statistics over an archive.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveSummary {
    /// Number of datasets.
    pub n_datasets: usize,
    /// Smallest / largest per-dataset series count (train + test).
    pub series_count_range: (usize, usize),
    /// Smallest / largest series length.
    pub length_range: (usize, usize),
    /// Smallest / largest class count.
    pub class_range: (usize, usize),
    /// Per-dataset summaries.
    pub datasets: Vec<DatasetSummary>,
}

impl ArchiveSummary {
    /// Summarizes an archive.
    ///
    /// # Panics
    /// Panics on an empty archive.
    pub fn of(archive: &[Dataset]) -> Self {
        assert!(!archive.is_empty(), "empty archive");
        let datasets: Vec<DatasetSummary> = archive.iter().map(DatasetSummary::of).collect();
        let counts: Vec<usize> = datasets.iter().map(|d| d.n_train + d.n_test).collect();
        let lengths: Vec<usize> = datasets.iter().map(|d| d.length).collect();
        let classes: Vec<usize> = datasets.iter().map(|d| d.n_classes).collect();
        let range = |v: &[usize]| {
            (
                v.iter().copied().min().expect("non-empty"), // tsdist-lint: allow(no-unwrap-in-lib, reason = "the `assert!` above rejects the empty archive")
                v.iter().copied().max().expect("non-empty"),
            )
        };
        ArchiveSummary {
            n_datasets: archive.len(),
            series_count_range: range(&counts),
            length_range: range(&lengths),
            class_range: range(&classes),
            datasets,
        }
    }

    /// Renders a text table of the archive (one row per dataset plus an
    /// aggregate header), like the UCR archive's listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "archive: {} datasets; series/dataset {}-{}; lengths {}-{}; classes {}-{}\n",
            self.n_datasets,
            self.series_count_range.0,
            self.series_count_range.1,
            self.length_range.0,
            self.length_range.1,
            self.class_range.0,
            self.class_range.1,
        ));
        out.push_str(&format!(
            "{:<28} {:>6} {:>6} {:>7} {:>8} {:>9}\n",
            "dataset", "train", "test", "length", "classes", "majority"
        ));
        for d in &self.datasets {
            out.push_str(&format!(
                "{:<28} {:>6} {:>6} {:>7} {:>8} {:>9.3}\n",
                d.name, d.n_train, d.n_test, d.length, d.n_classes, d.majority_fraction
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_archive, ArchiveConfig};

    #[test]
    fn dataset_summary_fields() {
        let ds = Dataset::new(
            "t",
            vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![3.0, 4.0]],
            vec![0, 0, 1],
            vec![vec![1.5, 2.5]],
            vec![0],
        )
        .unwrap();
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.n_train, 3);
        assert_eq!(s.n_test, 1);
        assert_eq!(s.length, 2);
        assert_eq!(s.n_classes, 2);
        assert!((s.majority_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn archive_summary_ranges_cover_all_datasets() {
        let archive = generate_archive(&ArchiveConfig::quick(7, 5));
        let s = ArchiveSummary::of(&archive);
        assert_eq!(s.n_datasets, 7);
        assert_eq!(s.datasets.len(), 7);
        for d in &s.datasets {
            assert!(d.length >= s.length_range.0 && d.length <= s.length_range.1);
            assert!(d.n_classes >= s.class_range.0 && d.n_classes <= s.class_range.1);
        }
    }

    #[test]
    fn render_contains_every_dataset_name() {
        let archive = generate_archive(&ArchiveConfig::quick(3, 5));
        let text = ArchiveSummary::of(&archive).render();
        for ds in &archive {
            assert!(text.contains(&ds.name), "missing {}", ds.name);
        }
    }

    #[test]
    #[should_panic(expected = "empty archive")]
    fn empty_archive_panics() {
        let _ = ArchiveSummary::of(&[]);
    }
}
