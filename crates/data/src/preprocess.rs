//! Preprocessing steps that make raw archives compatible with all distance
//! measures, mirroring the paper's handling of the 2018 UCR archive:
//! shorter series are resampled to the longest length in the dataset and
//! missing values are filled with linear interpolation (Section 3,
//! "Datasets").

/// Fills NaN gaps by linear interpolation between the nearest finite
/// neighbours; leading/trailing gaps are extended from the nearest finite
/// value. A series with no finite value at all becomes all zeros.
pub fn fill_missing_linear(series: &[f64]) -> Vec<f64> {
    let n = series.len();
    let mut out = series.to_vec();
    if n == 0 {
        return out;
    }
    if series.iter().all(|v| !v.is_finite()) {
        return vec![0.0; n];
    }

    // Forward pass: indices of finite values.
    let finite: Vec<usize> = (0..n).filter(|&i| series[i].is_finite()).collect();

    // Leading gap.
    let first = finite[0];
    for v in out.iter_mut().take(first) {
        *v = series[first];
    }
    // Trailing gap.
    // tsdist-lint: allow(no-unwrap-in-lib, reason = "`finite[0]` above already proves the index list is non-empty")
    let last = *finite.last().expect("at least one finite value");
    for v in out.iter_mut().skip(last + 1) {
        *v = series[last];
    }
    // Interior gaps.
    for w in finite.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > a + 1 {
            let va = series[a];
            let vb = series[b];
            let span = (b - a) as f64;
            for (i, slot) in out.iter_mut().enumerate().take(b).skip(a + 1) {
                let t = (i - a) as f64 / span;
                *slot = va + t * (vb - va);
            }
        }
    }
    out
}

/// Linearly resamples `series` to `target_len` points, preserving the first
/// and last samples. `target_len == series.len()` is a clone.
///
/// # Panics
/// Panics if `series` is empty or `target_len == 0`.
pub fn resample_linear(series: &[f64], target_len: usize) -> Vec<f64> {
    assert!(!series.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    let n = series.len();
    if n == 1 {
        return vec![series[0]; target_len];
    }
    if target_len == 1 {
        return vec![series[0]];
    }
    let mut out = Vec::with_capacity(target_len);
    let scale = (n - 1) as f64 / (target_len - 1) as f64;
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        if lo + 1 >= n {
            out.push(series[n - 1]);
        } else {
            let frac = pos - lo as f64;
            out.push(series[lo] * (1.0 - frac) + series[lo + 1] * frac);
        }
    }
    out
}

/// Applies the paper's archive-compatibility pipeline to a ragged,
/// possibly-NaN-containing collection: fill missing values, then resample
/// every series to the longest length present.
pub fn harmonize(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let max_len = series.iter().map(|s| s.len()).max().unwrap_or(0);
    series
        .iter()
        .map(|s| {
            let filled = fill_missing_linear(s);
            resample_linear(&filled, max_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_gap_is_interpolated() {
        let s = [1.0, f64::NAN, f64::NAN, 4.0];
        assert_eq!(fill_missing_linear(&s), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn edge_gaps_are_extended() {
        let s = [f64::NAN, 2.0, 3.0, f64::NAN, f64::NAN];
        assert_eq!(fill_missing_linear(&s), vec![2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn all_nan_becomes_zeros() {
        let s = [f64::NAN, f64::NAN];
        assert_eq!(fill_missing_linear(&s), vec![0.0, 0.0]);
    }

    #[test]
    fn no_gaps_is_identity() {
        let s = [1.0, -2.0, 3.5];
        assert_eq!(fill_missing_linear(&s), s.to_vec());
    }

    #[test]
    fn resample_identity_length() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&s, 3), s.to_vec());
    }

    #[test]
    fn resample_preserves_endpoints() {
        let s = [5.0, 1.0, 9.0, 2.0];
        for &len in &[2usize, 7, 16, 101] {
            let r = resample_linear(&s, len);
            assert_eq!(r.len(), len);
            assert_eq!(r[0], 5.0);
            assert!((r[len - 1] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn upsampling_a_line_stays_a_line() {
        let s = [0.0, 1.0, 2.0, 3.0];
        let r = resample_linear(&s, 7);
        for (i, v) in r.iter().enumerate() {
            assert!((v - i as f64 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_series_resamples_to_constant() {
        let r = resample_linear(&[2.5], 5);
        assert_eq!(r, vec![2.5; 5]);
    }

    #[test]
    fn harmonize_produces_equal_lengths() {
        let raw = vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![1.0, f64::NAN, 3.0],
            vec![2.0, 2.0],
        ];
        let fixed = harmonize(&raw);
        assert!(fixed.iter().all(|s| s.len() == 5));
        assert!(fixed.iter().flatten().all(|v| v.is_finite()));
        // The NaN in the second series was filled before resampling.
        assert!((fixed[1][2] - 2.0).abs() < 1e-12);
    }
}
