//! # tsdist-data
//!
//! The dataset substrate of the `tsdist` workspace.
//!
//! The paper evaluates distance measures over the 128 class-labelled
//! datasets of the UCR Time-Series Archive, respecting each dataset's
//! shipped train/test split. This crate provides:
//!
//! * [`Dataset`] — a validated, labelled dataset with a fixed split,
//! * [`ucr`] — a loader for the UCR text format (tab or comma separated,
//!   `NaN` missing values), so the identical pipeline runs on the real
//!   archive when it is available,
//! * [`preprocess`] — the paper's archive-compatibility steps: linear
//!   interpolation of missing values and resampling of shorter series to
//!   the longest length,
//! * [`synthetic`] — a deterministic generator for an archive of
//!   UCR-like datasets across seven distortion archetypes. This is the
//!   substitution documented in `DESIGN.md`: the real archive cannot be
//!   bundled, but the relative behaviour of measure categories is driven
//!   by distortion structure (shift, warp, heavy-tailed noise, amplitude
//!   scaling), which the generator reproduces.
//!
//! ```
//! use tsdist_data::synthetic::{generate_archive, ArchiveConfig};
//! let archive = generate_archive(&ArchiveConfig::quick(7, 42));
//! assert_eq!(archive.len(), 7);
//! for ds in &archive {
//!     assert!(ds.validate().is_ok());
//! }
//! ```

#![warn(missing_docs)]

mod dataset;
pub mod preprocess;
pub mod summary;
pub mod synthetic;
pub mod ucr;

pub use dataset::{Dataset, DatasetError, Label};
pub use summary::{ArchiveSummary, DatasetSummary};
pub use ucr::{
    load_ucr_archive, load_ucr_archive_lenient, DatasetFailure, LenientArchive, UcrError,
};
