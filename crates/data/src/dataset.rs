//! Labelled time-series datasets with a fixed train/test split.
//!
//! The paper's evaluation framework (Section 3) deliberately respects the
//! train/test split shipped with each UCR dataset instead of re-sampling,
//! to make the evaluation "as close to deterministic as possible". The
//! [`Dataset`] type mirrors that: a named pair of labelled series
//! collections whose split never changes.

/// A class label. UCR labels are small integers; we normalize them to
/// `usize` class indices at load/generation time.
pub type Label = usize;

/// A labelled time-series dataset with a fixed train/test split.
///
/// All series in a dataset have the same length (the preprocessing in
/// [`crate::preprocess`] takes care of resampling and missing values
/// before a `Dataset` is constructed).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"ECGFiveDays"` or `"synthetic/shift-03"`).
    pub name: String,
    /// Training series, one `Vec<f64>` per series.
    pub train: Vec<Vec<f64>>,
    /// Class label of each training series.
    pub train_labels: Vec<Label>,
    /// Test series.
    pub test: Vec<Vec<f64>>,
    /// Class label of each test series.
    pub test_labels: Vec<Label>,
}

/// Errors raised when constructing or validating a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Train series and label counts disagree.
    TrainLabelMismatch {
        /// Number of training series.
        series: usize,
        /// Number of training labels.
        labels: usize,
    },
    /// Test series and label counts disagree.
    TestLabelMismatch {
        /// Number of test series.
        series: usize,
        /// Number of test labels.
        labels: usize,
    },
    /// A split is empty.
    EmptySplit(&'static str),
    /// Series lengths are not all equal.
    UnequalLengths {
        /// The expected (first-seen) length.
        expected: usize,
        /// The offending length.
        found: usize,
    },
    /// A series contains NaN or infinite values.
    NonFiniteValue {
        /// Which split the bad series is in.
        split: &'static str,
        /// Index of the offending series.
        index: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::TrainLabelMismatch { series, labels } => {
                write!(f, "{series} training series but {labels} labels")
            }
            DatasetError::TestLabelMismatch { series, labels } => {
                write!(f, "{series} test series but {labels} labels")
            }
            DatasetError::EmptySplit(which) => write!(f, "empty {which} split"),
            DatasetError::UnequalLengths { expected, found } => {
                write!(f, "series length {found} differs from expected {expected}")
            }
            DatasetError::NonFiniteValue { split, index } => {
                write!(f, "non-finite value in {split} series {index}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Constructs and validates a dataset.
    pub fn new(
        name: impl Into<String>,
        train: Vec<Vec<f64>>,
        train_labels: Vec<Label>,
        test: Vec<Vec<f64>>,
        test_labels: Vec<Label>,
    ) -> Result<Self, DatasetError> {
        let ds = Dataset {
            name: name.into(),
            train,
            train_labels,
            test,
            test_labels,
        };
        ds.validate()?;
        Ok(ds)
    }

    /// Checks the structural invariants (matching label counts, non-empty
    /// splits, equal series lengths, finite values).
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.train.len() != self.train_labels.len() {
            return Err(DatasetError::TrainLabelMismatch {
                series: self.train.len(),
                labels: self.train_labels.len(),
            });
        }
        if self.test.len() != self.test_labels.len() {
            return Err(DatasetError::TestLabelMismatch {
                series: self.test.len(),
                labels: self.test_labels.len(),
            });
        }
        if self.train.is_empty() {
            return Err(DatasetError::EmptySplit("train"));
        }
        if self.test.is_empty() {
            return Err(DatasetError::EmptySplit("test"));
        }
        let m = self.train[0].len();
        for (split, series) in [("train", &self.train), ("test", &self.test)] {
            for (i, s) in series.iter().enumerate() {
                if s.len() != m {
                    return Err(DatasetError::UnequalLengths {
                        expected: m,
                        found: s.len(),
                    });
                }
                if s.iter().any(|v| !v.is_finite()) {
                    return Err(DatasetError::NonFiniteValue { split, index: i });
                }
            }
        }
        Ok(())
    }

    /// Length of every series in the dataset.
    pub fn series_len(&self) -> usize {
        self.train[0].len()
    }

    /// Number of training series.
    pub fn n_train(&self) -> usize {
        self.train.len()
    }

    /// Number of test series.
    pub fn n_test(&self) -> usize {
        self.test.len()
    }

    /// Number of distinct classes across both splits.
    pub fn n_classes(&self) -> usize {
        let mut labels: Vec<Label> = self
            .train_labels
            .iter()
            .chain(&self.test_labels)
            .copied()
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Applies a transformation to every series in both splits, returning
    /// a new dataset. Used to apply normalizations up front.
    pub fn map_series(&self, mut f: impl FnMut(&[f64]) -> Vec<f64>) -> Dataset {
        Dataset {
            name: self.name.clone(),
            train: self.train.iter().map(|s| f(s)).collect(),
            train_labels: self.train_labels.clone(),
            test: self.test.iter().map(|s| f(s)).collect(),
            test_labels: self.test_labels.clone(),
        }
    }

    /// Returns a copy with at most `n` training series, preserving order
    /// (used by the Figure 10 convergence experiment).
    pub fn with_train_prefix(&self, n: usize) -> Dataset {
        let n = n.min(self.train.len());
        Dataset {
            name: self.name.clone(),
            train: self.train[..n].to_vec(),
            train_labels: self.train_labels[..n].to_vec(),
            test: self.test.clone(),
            test_labels: self.test_labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![0, 1],
            vec![vec![0.5, 0.5]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn valid_dataset_passes() {
        let d = tiny();
        assert_eq!(d.series_len(), 2);
        assert_eq!(d.n_train(), 2);
        assert_eq!(d.n_test(), 1);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn label_mismatch_is_rejected() {
        let e = Dataset::new("bad", vec![vec![1.0]], vec![], vec![vec![1.0]], vec![0]);
        assert!(matches!(e, Err(DatasetError::TrainLabelMismatch { .. })));
    }

    #[test]
    fn unequal_lengths_rejected() {
        let e = Dataset::new(
            "bad",
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![0, 1],
            vec![vec![1.0, 2.0]],
            vec![0],
        );
        assert!(matches!(e, Err(DatasetError::UnequalLengths { .. })));
    }

    #[test]
    fn nan_rejected() {
        let e = Dataset::new(
            "bad",
            vec![vec![1.0, f64::NAN]],
            vec![0],
            vec![vec![1.0, 2.0]],
            vec![0],
        );
        assert!(matches!(e, Err(DatasetError::NonFiniteValue { .. })));
    }

    #[test]
    fn empty_split_rejected() {
        let e = Dataset::new("bad", vec![], vec![], vec![vec![1.0]], vec![0]);
        assert!(matches!(e, Err(DatasetError::EmptySplit("train"))));
    }

    #[test]
    fn map_series_preserves_structure() {
        let d = tiny().map_series(|s| s.iter().map(|v| v * 2.0).collect());
        assert_eq!(d.train[0], vec![0.0, 2.0]);
        assert_eq!(d.train_labels, vec![0, 1]);
        d.validate().unwrap();
    }

    #[test]
    fn train_prefix_truncates() {
        let d = tiny().with_train_prefix(1);
        assert_eq!(d.n_train(), 1);
        assert_eq!(d.train_labels, vec![0]);
        // Larger than available is a no-op.
        assert_eq!(tiny().with_train_prefix(99).n_train(), 2);
    }
}
