//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use tsdist_data::preprocess::{fill_missing_linear, harmonize, resample_linear};
use tsdist_data::synthetic::{generate_dataset, ArchiveConfig};
use tsdist_data::ucr::{dataset_from_splits, parse_ucr_text};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interpolation leaves fully finite series untouched and always
    /// produces finite output for partially finite input.
    #[test]
    fn fill_missing_is_identity_on_finite_and_total_on_mixed(
        values in proptest::collection::vec(-100.0f64..100.0, 1..64),
        holes in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        prop_assert_eq!(fill_missing_linear(&values), values.clone());
        let mut holey = values.clone();
        for h in &holes {
            let i = h.index(holey.len());
            holey[i] = f64::NAN;
        }
        let filled = fill_missing_linear(&holey);
        prop_assert_eq!(filled.len(), holey.len());
        prop_assert!(filled.iter().all(|v| v.is_finite()));
        // Finite positions are preserved.
        for (orig, new) in holey.iter().zip(&filled) {
            if orig.is_finite() {
                prop_assert_eq!(*orig, *new);
            }
        }
    }

    /// Resampling preserves endpoints and the value range.
    #[test]
    fn resample_preserves_endpoints_and_range(
        values in proptest::collection::vec(-100.0f64..100.0, 2..64),
        target in 2usize..128,
    ) {
        let out = resample_linear(&values, target);
        prop_assert_eq!(out.len(), target);
        prop_assert!((out[0] - values[0]).abs() < 1e-9);
        prop_assert!((out[target - 1] - values[values.len() - 1]).abs() < 1e-9);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
    }

    /// Harmonization always yields a rectangular, finite collection.
    #[test]
    fn harmonize_is_rectangular_and_finite(
        lens in proptest::collection::vec(1usize..32, 1..8),
    ) {
        let raw: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|j| (i * 31 + j) as f64 * 0.1).collect())
            .collect();
        let fixed = harmonize(&raw);
        let max_len = lens.iter().copied().max().unwrap();
        prop_assert!(fixed.iter().all(|s| s.len() == max_len));
        prop_assert!(fixed.iter().flatten().all(|v| v.is_finite()));
    }

    /// Every synthetic dataset validates and has a consistent shape for
    /// arbitrary seeds and indices.
    #[test]
    fn synthetic_datasets_always_validate(seed in 0u64..1000, index in 0usize..28) {
        let ds = generate_dataset(&ArchiveConfig::quick(28, seed), index);
        prop_assert!(ds.validate().is_ok());
        prop_assert!(ds.n_classes() >= 2);
    }

    /// UCR text written from numbers parses back to the same values.
    #[test]
    fn ucr_roundtrip(
        rows in proptest::collection::vec(
            (0i64..5, proptest::collection::vec(-100.0f64..100.0, 2..16)),
            2..8,
        ),
    ) {
        let text: String = rows
            .iter()
            .map(|(label, vals)| {
                let vs: Vec<String> = vals.iter().map(|v| format!("{v:.12}")).collect();
                format!("{label}\t{}", vs.join("\t"))
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_ucr_text(&text).unwrap();
        prop_assert_eq!(parsed.labels.len(), rows.len());
        for ((label, vals), (plabel, pvals)) in
            rows.iter().zip(parsed.labels.iter().zip(&parsed.series))
        {
            prop_assert_eq!(label, plabel);
            prop_assert_eq!(vals.len(), pvals.len());
            for (a, b) in vals.iter().zip(pvals) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
        // And the split builds a valid dataset when reused for both sides.
        let ds = dataset_from_splits("prop", parsed.clone(), parsed);
        prop_assert!(ds.is_ok());
    }
}
