//! Fixture-based coverage of [`load_ucr_archive_lenient`]'s error paths:
//! a single on-disk archive mixing valid datasets with every per-dataset
//! failure class (`Parse`, `Invalid`, `Io`), plus the walker's extension
//! handling and the report renderer.

use std::fs;
use std::path::{Path, PathBuf};

use tsdist_data::ucr::{load_ucr_archive, load_ucr_archive_lenient, UcrError};
use tsdist_data::DatasetError;

/// A throwaway archive root, wiped on creation so reruns are clean.
fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("tsdist_lenient_fixtures_{tag}"));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    root
}

fn write_pair(root: &Path, name: &str, ext: &str, train: &str, test: &str) {
    let dir = root.join(name);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(format!("{name}_TRAIN.{ext}")), train).unwrap();
    fs::write(dir.join(format!("{name}_TEST.{ext}")), test).unwrap();
}

const GOOD_TRAIN: &str = "0\t0.0\t1.0\t2.0\n1\t2.0\t1.0\t0.0\n";
const GOOD_TEST: &str = "0\t0.1\t1.1\t2.1\n";

#[test]
fn mixed_archive_partitions_good_and_bad_datasets() {
    let root = fresh_root("mixed");

    // Three healthy datasets exercising each accepted extension.
    write_pair(&root, "Alpha", "tsv", GOOD_TRAIN, GOOD_TEST);
    write_pair(
        &root,
        "Gamma",
        "csv",
        "0,0.0,1.0\n1,1.0,0.0\n",
        "0,0.5,0.5\n",
    );
    write_pair(&root, "Tabby", "txt", GOOD_TRAIN, GOOD_TEST);

    // Parse failure: unparseable value, reported with its line number.
    write_pair(
        &root,
        "Broken",
        "tsv",
        "0\t0.5\t0.7\n1\t0.5\t<oops>\n",
        GOOD_TEST,
    );

    // Invalid dataset: the train split parses to zero series.
    write_pair(&root, "Hollow", "tsv", "\n\n", GOOD_TEST);

    // Invalid dataset, other split: the test file is all blank lines.
    write_pair(&root, "Vacant", "tsv", GOOD_TRAIN, "\n");

    // NOT a failure: "inf" parses as a float, but the harmonize pipeline
    // treats every non-finite value as missing and imputes it, so the
    // dataset comes out clean and loads.
    write_pair(
        &root,
        "Infinite",
        "tsv",
        "0\t0.5\tinf\n1\t1.0\t2.0\n",
        GOOD_TEST,
    );

    // I/O failure: the train "file" is actually a directory, so the pair
    // is discovered but reading it fails.
    let io_dir = root.join("IoBoom");
    fs::create_dir_all(io_dir.join("IoBoom_TRAIN.tsv")).unwrap();
    fs::write(io_dir.join("IoBoom_TEST.tsv"), GOOD_TEST).unwrap();

    // Distractor: a directory with no train/test pair is silently skipped.
    fs::create_dir_all(root.join("NotADataset")).unwrap();

    // Strict loading aborts on the first bad dataset...
    assert!(load_ucr_archive(&root).is_err());

    // ...while the lenient walk loads everything loadable and files one
    // failure per bad dataset, both halves sorted by name.
    let archive = load_ucr_archive_lenient(&root).unwrap();
    let loaded: Vec<&str> = archive.datasets.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(loaded, ["Alpha", "Gamma", "Infinite", "Tabby"]);
    let infinite = &archive.datasets[2];
    assert!(infinite.train.iter().flatten().all(|v| v.is_finite()));
    let failed: Vec<&str> = archive.failures.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(failed, ["Broken", "Hollow", "IoBoom", "Vacant"]);

    assert!(matches!(
        archive.failures[0].error,
        UcrError::Parse { line: 2, .. }
    ));
    assert!(matches!(
        archive.failures[1].error,
        UcrError::Invalid(DatasetError::EmptySplit("train"))
    ));
    assert!(matches!(archive.failures[2].error, UcrError::Io(_)));
    assert!(matches!(
        archive.failures[3].error,
        UcrError::Invalid(DatasetError::EmptySplit("test"))
    ));

    let report = archive.render_report();
    assert!(report.starts_with("archive: 4 dataset(s) loaded, 4 failed\n"));
    assert!(report.contains("FAILED Broken: line 2:"));
    assert!(report.contains("FAILED Hollow: invalid dataset:"));
    assert!(report.contains("FAILED IoBoom: I/O error:"));
    assert!(report.contains("FAILED Vacant: invalid dataset:"));
}

#[test]
fn all_failures_still_returns_ok_with_empty_datasets() {
    let root = fresh_root("all_bad");
    write_pair(&root, "Junk", "tsv", "not-a-label\t1.0\n", GOOD_TEST);
    let archive = load_ucr_archive_lenient(&root).unwrap();
    assert!(archive.datasets.is_empty());
    assert_eq!(archive.failures.len(), 1);
    assert!(matches!(
        archive.failures[0].error,
        UcrError::Parse { line: 1, .. }
    ));
    assert!(archive
        .render_report()
        .starts_with("archive: 0 dataset(s) loaded, 1 failed\n"));
}

#[test]
fn missing_root_fails_the_walk_itself() {
    let root = std::env::temp_dir().join("tsdist_lenient_fixtures_definitely_absent");
    let _ = fs::remove_dir_all(&root);
    let err = load_ucr_archive_lenient(&root).unwrap_err();
    assert!(matches!(err, UcrError::Io(_)));
}

#[test]
fn tsv_takes_precedence_over_later_extensions() {
    let root = fresh_root("precedence");
    // A healthy .tsv pair next to a corrupt .txt pair in the same
    // directory: the walker must pick .tsv and never read the .txt files.
    write_pair(&root, "Dual", "tsv", GOOD_TRAIN, GOOD_TEST);
    write_pair(&root, "Dual", "txt", "garbage\n", "garbage\n");
    let archive = load_ucr_archive_lenient(&root).unwrap();
    assert_eq!(archive.datasets.len(), 1);
    assert!(archive.failures.is_empty());
}

#[test]
fn half_pairs_are_skipped_not_failed() {
    let root = fresh_root("half_pair");
    // TRAIN without TEST: not a discoverable pair, so it is skipped by
    // the walker rather than surfaced as a failure.
    let dir = root.join("Lonely");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("Lonely_TRAIN.tsv"), GOOD_TRAIN).unwrap();
    write_pair(&root, "Whole", "tsv", GOOD_TRAIN, GOOD_TEST);
    let archive = load_ucr_archive_lenient(&root).unwrap();
    assert_eq!(archive.datasets.len(), 1);
    assert_eq!(archive.datasets[0].name, "Whole");
    assert!(archive.failures.is_empty());
}
