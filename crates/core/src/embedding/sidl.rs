//! SIDL: Shift-Invariant Dictionary Learning (Zheng et al. 2016).
//!
//! SIDL learns a dictionary of short atoms such that every series is
//! approximated by shift-aligned atoms; the representation of a series is
//! its per-atom activation. Our from-scratch variant (simplification
//! documented in `DESIGN.md`):
//!
//! 1. atoms are initialized from subsequences of the training split,
//! 2. encoding finds, per atom, the shift with maximal normalized
//!    cross-correlation (the activation),
//! 3. dictionary update replaces each atom by the z-normalized average of
//!    its best-aligned windows, for a few alternating iterations.
//!
//! Table 4's SIDL grid (λ sparsity, `r` atom-length ratio) maps to the
//! atom-length ratio here; the paper's finding is that SIDL trails all
//! other measures by a wide margin, which this simplified variant
//! reproduces.

use super::Embedding;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsdist_linalg::Matrix;

/// The SIDL embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Sidl {
    /// Number of dictionary atoms = representation length.
    pub atoms: usize,
    /// Atom length in samples (the paper's `r` ratio times the series
    /// length; pass the resolved length here).
    pub atom_len: usize,
    /// Alternating optimization iterations.
    pub iterations: usize,
    /// Seed for atom initialization.
    pub seed: u64,
}

impl Sidl {
    /// Creates a SIDL embedder.
    ///
    /// # Panics
    ///
    /// Panics when `atoms` is zero or `atom_len` is below two.
    pub fn new(atoms: usize, atom_len: usize, iterations: usize, seed: u64) -> Self {
        assert!(atoms > 0, "SIDL needs at least one atom");
        assert!(atom_len >= 2, "SIDL atoms need at least two samples");
        Sidl {
            atoms,
            atom_len,
            iterations,
            seed,
        }
    }

    /// Best normalized-correlation activation of `atom` over all windows
    /// of `x`, and the offset achieving it.
    fn best_activation(atom: &[f64], x: &[f64]) -> (f64, usize) {
        let l = atom.len().min(x.len());
        let atom = &atom[..l];
        let atom_norm = atom.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        let mut best = f64::NEG_INFINITY;
        let mut best_off = 0;
        for off in 0..=(x.len() - l) {
            let window = &x[off..off + l];
            let dot: f64 = window.iter().zip(atom).map(|(a, b)| a * b).sum();
            let wnorm = window.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            let corr = dot / (atom_norm * wnorm);
            if corr > best {
                best = corr;
                best_off = off;
            }
        }
        (best, best_off)
    }

    fn znorm(v: &mut [f64]) {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let sd = (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n)
            .sqrt()
            .max(1e-12);
        for x in v.iter_mut() {
            *x = (*x - mean) / sd;
        }
    }
}

impl Embedding for Sidl {
    fn name(&self) -> String {
        format!("SIDL(K={},L={})", self.atoms, self.atom_len)
    }

    fn embed(&self, series: &[Vec<f64>], n_train: usize) -> Matrix {
        let n_fit = n_train.max(1).min(series.len());
        let min_len = series.iter().map(|s| s.len()).min().unwrap_or(2);
        let l = self.atom_len.min(min_len).max(2);

        // 1. Initialize atoms from training subsequences.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51D1_51D1_51D1_51D1);
        let mut atoms: Vec<Vec<f64>> = (0..self.atoms)
            .map(|_| {
                let s = &series[rng.gen_range(0..n_fit)];
                let off = rng.gen_range(0..=(s.len() - l));
                let mut atom = s[off..off + l].to_vec();
                Self::znorm(&mut atom);
                atom
            })
            .collect();

        // 2./3. Alternate encoding and dictionary update on the fit set.
        for _ in 0..self.iterations {
            let mut sums: Vec<Vec<f64>> = vec![vec![0.0; l]; self.atoms];
            let mut counts = vec![0usize; self.atoms];
            for s in series.iter().take(n_fit) {
                for (a, atom) in atoms.iter().enumerate() {
                    let (act, off) = Self::best_activation(atom, s);
                    if act > 0.0 {
                        for (t, sum) in sums[a].iter_mut().enumerate() {
                            *sum += s[off + t];
                        }
                        counts[a] += 1;
                    }
                }
            }
            for (a, atom) in atoms.iter_mut().enumerate() {
                if counts[a] > 0 {
                    let mut updated: Vec<f64> =
                        sums[a].iter().map(|v| v / counts[a] as f64).collect();
                    Self::znorm(&mut updated);
                    *atom = updated;
                }
            }
        }

        // Final encoding of every series.
        Matrix::from_fn(series.len(), self.atoms, |i, a| {
            Self::best_activation(&atoms[a], &series[i]).0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| (j as f64 * 0.5 + i as f64 * 1.3).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn activations_are_correlations_in_unit_range() {
        let s = toy(6, 24);
        let z = Sidl::new(4, 8, 2, 3).embed(&s, 5);
        assert_eq!(z.rows(), 6);
        assert_eq!(z.cols(), 4);
        for i in 0..z.rows() {
            for &v in z.row(i) {
                assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "activation {v}");
            }
        }
    }

    #[test]
    fn atom_containing_series_activates_strongly() {
        // A series that literally contains an atom-initializing window
        // should have at least one near-1 activation.
        let s = toy(5, 32);
        let z = Sidl::new(8, 10, 1, 7).embed(&s, 5);
        let max_act = (0..z.cols()).map(|c| z[(0, c)]).fold(f64::MIN, f64::max);
        assert!(max_act > 0.8, "max activation {max_act}");
    }

    #[test]
    fn best_activation_finds_exact_match() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let atom = x[5..11].to_vec();
        let (act, off) = Sidl::best_activation(&atom, &x);
        assert!((act - 1.0).abs() < 1e-12);
        assert_eq!(off, 5);
    }

    #[test]
    fn shift_invariance_of_activation() {
        // The same pattern at two different offsets activates equally.
        let pat = [0.0, 1.0, 2.0, 1.0, 0.0];
        let mut a = vec![0.0; 20];
        let mut b = vec![0.0; 20];
        a[3..8].copy_from_slice(&pat);
        b[11..16].copy_from_slice(&pat);
        let atom = pat.to_vec();
        let (act_a, _) = Sidl::best_activation(&atom, &a);
        let (act_b, _) = Sidl::best_activation(&atom, &b);
        assert!((act_a - act_b).abs() < 1e-12);
    }

    #[test]
    fn atom_len_is_clamped_to_shortest_series() {
        let s = vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 1.5, 2.5, 3.5]];
        let z = Sidl::new(2, 100, 1, 0).embed(&s, 2);
        assert_eq!(z.rows(), 2);
    }
}
