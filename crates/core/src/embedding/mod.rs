//! The 4 embedding measures of Section 9.
//!
//! Embedding measures use a similarity function only to *construct* a new
//! fixed-length representation per series; series are then compared with
//! plain ED over the representations. Following the paper, all four
//! methods produce representations of the same length (100 by default)
//! for fairness:
//!
//! * [`Grail`] — Nyström approximation of the SINK kernel space over
//!   landmark series (Paparrizos & Franklin 2019),
//! * [`Rws`] — Random Warping Series: alignment features against random
//!   short series (Wu et al. 2018),
//! * [`Spiral`] — similarity-preserving factorization of a landmark DTW
//!   similarity matrix (Lei et al. 2017),
//! * [`Sidl`] — Shift-Invariant Dictionary Learning: activations of
//!   shift-aligned learned atoms (Zheng et al. 2016).
//!
//! RWS, SPIRAL, and SIDL are simplified from-scratch reimplementations
//! (documented in `DESIGN.md`); the paper's relevant finding — only GRAIL
//! reaches NCC_c-level accuracy, the rest fall significantly behind — is
//! a property of what each representation preserves, which the
//! simplifications retain.

mod grail;
mod rws;
mod sidl;
mod spiral;

pub use grail::Grail;
pub use rws::Rws;
pub use sidl::Sidl;
pub use spiral::Spiral;

use tsdist_linalg::Matrix;

/// A method that embeds a collection of time series into fixed-length
/// representations (rows of the returned matrix, one per input series).
///
/// Embeddings are *transductive* in this study: the representation basis
/// (landmarks, random series, dictionary) is constructed from the train
/// split and applied to all series.
pub trait Embedding: Send + Sync {
    /// Human-readable name, e.g. `"GRAIL(γ=5)"`.
    fn name(&self) -> String;

    /// Builds representations for all `series`, using the first `n_train`
    /// of them as the fitting set.
    fn embed(&self, series: &[Vec<f64>], n_train: usize) -> Matrix;
}

/// Deterministic k-means++-style landmark selection under ED: the first
/// landmark is the seed index, each further landmark is the series
/// farthest (max-min ED) from those already chosen. Returns indices into
/// `series[..n_fit]`.
pub(crate) fn select_landmarks(
    series: &[Vec<f64>],
    n_fit: usize,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let n = n_fit.min(series.len());
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut chosen = Vec::with_capacity(k);
    chosen.push((seed as usize) % n);
    let ed2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum() };
    let mut min_dist: Vec<f64> = (0..n)
        .map(|i| ed2(&series[i], &series[chosen[0]]))
        .collect();
    while chosen.len() < k {
        let mut next = 0usize;
        for (i, d) in min_dist.iter().enumerate().skip(1) {
            if d.total_cmp(&min_dist[next]).is_gt() {
                next = i;
            }
        }
        chosen.push(next);
        for i in 0..n {
            min_dist[i] = min_dist[i].min(ed2(&series[i], &series[next]));
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_series(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| ((i * 7 + j * 3) % 11) as f64 / 5.0 - 1.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn landmarks_are_distinct_and_within_fit_range() {
        let s = toy_series(20, 16);
        let lm = select_landmarks(&s, 12, 5, 3);
        assert_eq!(lm.len(), 5);
        let mut sorted = lm.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "landmarks must be distinct");
        assert!(lm.iter().all(|&i| i < 12));
    }

    #[test]
    fn landmark_count_is_capped_by_fit_size() {
        let s = toy_series(4, 8);
        let lm = select_landmarks(&s, 4, 10, 0);
        assert_eq!(lm.len(), 4);
    }

    #[test]
    fn landmark_selection_is_deterministic() {
        let s = toy_series(15, 12);
        assert_eq!(
            select_landmarks(&s, 15, 6, 9),
            select_landmarks(&s, 15, 6, 9)
        );
    }

    #[test]
    fn all_embeddings_produce_requested_shape() {
        let s = toy_series(14, 24);
        let embeddings: Vec<Box<dyn Embedding>> = vec![
            Box::new(Grail::new(5.0, 8, 6, 7)),
            Box::new(Rws::new(1.0, 6, 25, 7)),
            Box::new(Spiral::new(1.0, 8, 6, 7)),
            Box::new(Sidl::new(6, 8, 2, 7)),
        ];
        for e in embeddings {
            let z = e.embed(&s, 10);
            assert_eq!(z.rows(), 14, "{}", e.name());
            assert!(
                z.cols() <= 6 || z.cols() == 6,
                "{}: cols {}",
                e.name(),
                z.cols()
            );
            assert!(z.cols() >= 1);
            for i in 0..z.rows() {
                for v in z.row(i) {
                    assert!(v.is_finite(), "{} produced non-finite value", e.name());
                }
            }
        }
    }

    #[test]
    fn embeddings_are_deterministic() {
        let s = toy_series(10, 16);
        for (a, b) in [
            (
                Grail::new(5.0, 6, 4, 1).embed(&s, 8),
                Grail::new(5.0, 6, 4, 1).embed(&s, 8),
            ),
            (
                Rws::new(1.0, 4, 10, 1).embed(&s, 8),
                Rws::new(1.0, 4, 10, 1).embed(&s, 8),
            ),
            (
                Spiral::new(1.0, 6, 4, 1).embed(&s, 8),
                Spiral::new(1.0, 6, 4, 1).embed(&s, 8),
            ),
            (
                Sidl::new(4, 6, 2, 1).embed(&s, 8),
                Sidl::new(4, 6, 2, 1).embed(&s, 8),
            ),
        ] {
            assert!(a.max_abs_diff(&b) < 1e-12);
        }
    }

    #[test]
    fn similar_series_embed_closer_than_dissimilar_ones_grail() {
        // Two tight clusters; GRAIL embeddings must separate them.
        let m = 32;
        let mk = |phase: f64, eps: f64| -> Vec<f64> {
            (0..m)
                .map(|j| (j as f64 * 0.4 + phase).sin() + eps)
                .collect()
        };
        let mut series = Vec::new();
        for i in 0..6 {
            series.push(mk(0.0, i as f64 * 0.01));
        }
        for i in 0..6 {
            series.push(mk(std::f64::consts::PI, i as f64 * 0.01));
        }
        let z = Grail::new(5.0, 8, 8, 3).embed(&series, 12);
        let ed = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
        };
        let within = ed(z.row(0), z.row(1));
        let across = ed(z.row(0), z.row(6));
        assert!(within < across, "within {within} !< across {across}");
    }
}
