//! GRAIL: Generic RepresentAtIon Learning (Paparrizos & Franklin 2019).
//!
//! GRAIL approximates the feature space of the SINK kernel with the
//! Nyström method: `k` landmark series are selected from the training
//! split, the normalized landmark kernel matrix is eigendecomposed, and
//! each series is represented by its projected kernel values against the
//! landmarks. ED over these representations approximates the SINK
//! similarity — this is the only embedding the paper finds to reach
//! NCC_c-level accuracy.

use super::{select_landmarks, Embedding};
use crate::kernel::Sink;
use crate::measure::Kernel;
use tsdist_linalg::{nystroem_features, Matrix};

/// The GRAIL embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grail {
    /// SINK exponent weight γ.
    pub gamma: f64,
    /// Number of landmark series.
    pub landmarks: usize,
    /// Representation length (dimensions kept after eigendecomposition).
    pub dims: usize,
    /// Seed for landmark selection.
    pub seed: u64,
}

impl Grail {
    /// Creates a GRAIL embedder.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not positive or `landmarks`/`dims` is
    /// zero.
    pub fn new(gamma: f64, landmarks: usize, dims: usize, seed: u64) -> Self {
        assert!(gamma > 0.0, "GRAIL gamma must be positive");
        assert!(
            landmarks > 0 && dims > 0,
            "landmarks and dims must be positive"
        );
        Grail {
            gamma,
            landmarks,
            dims,
            seed,
        }
    }

    fn normalized_sink(&self, kernel: &Sink, x: &[f64], y: &[f64], kxx: f64, kyy: f64) -> f64 {
        kernel.kernel(x, y) / (kxx * kyy).sqrt().max(f64::MIN_POSITIVE)
    }
}

impl Embedding for Grail {
    fn name(&self) -> String {
        format!("GRAIL(γ={})", self.gamma)
    }

    fn embed(&self, series: &[Vec<f64>], n_train: usize) -> Matrix {
        let kernel = Sink::new(self.gamma);
        let lm_idx = select_landmarks(series, n_train.max(1), self.landmarks, self.seed);
        let k = lm_idx.len();
        let n = series.len();

        // Self-kernels for coefficient normalization.
        let self_k: Vec<f64> = series.iter().map(|s| kernel.self_kernel(s)).collect();

        // Landmark kernel matrix (k x k) and data-to-landmark matrix (n x k).
        let k_ll = Matrix::from_fn(k, k, |i, j| {
            let (a, b) = (lm_idx[i], lm_idx[j]);
            self.normalized_sink(&kernel, &series[a], &series[b], self_k[a], self_k[b])
        });
        let k_nl = Matrix::from_fn(n, k, |i, j| {
            let b = lm_idx[j];
            self.normalized_sink(&kernel, &series[i], &series[b], self_k[i], self_k[b])
        });

        nystroem_features(&k_ll, &k_nl, self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| ((j as f64 * 0.5) + i as f64 * 0.7).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn representation_length_is_capped_by_landmarks() {
        let s = toy(10, 20);
        let z = Grail::new(5.0, 4, 100, 0).embed(&s, 8);
        assert!(z.cols() <= 4);
        assert_eq!(z.rows(), 10);
    }

    #[test]
    fn embedding_preserves_sink_similarity_approximately() {
        // Z Z^T should approximate the normalized SINK matrix when the
        // landmark set is the whole fitting set.
        let s = toy(6, 24);
        let g = Grail::new(5.0, 6, 6, 0);
        let z = g.embed(&s, 6);
        let kernel = Sink::new(5.0);
        let self_k: Vec<f64> = s.iter().map(|x| kernel.self_kernel(x)).collect();
        for i in 0..6 {
            for j in 0..6 {
                let approx: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
                let exact = kernel.kernel(&s[i], &s[j]) / (self_k[i] * self_k[j]).sqrt();
                assert!(
                    (approx - exact).abs() < 1e-6,
                    "({i},{j}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn identical_series_have_identical_rows() {
        let mut s = toy(5, 16);
        s.push(s[0].clone());
        let z = Grail::new(5.0, 4, 4, 0).embed(&s, 5);
        let last = z.rows() - 1;
        for c in 0..z.cols() {
            assert!((z[(0, c)] - z[(last, c)]).abs() < 1e-9);
        }
    }
}
