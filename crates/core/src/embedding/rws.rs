//! RWS: Random Warping Series (Wu et al. 2018).
//!
//! RWS approximates an alignment kernel with random features: `R` short
//! random series are sampled (lengths up to `D_max = 25`, as in Table 4),
//! and each time series is represented by its alignment score against
//! each random series, `φ_r(x) = exp(-DTW(x, ω_r) / (γ m)) / sqrt(R)`.
//!
//! This is a simplified variant of the original (which uses the GAK
//! alignment soft-score); the essential property — a fixed-length,
//! warping-aware random feature map whose ED approximates an alignment
//! kernel — is retained.

use super::Embedding;
use crate::elastic::dtw::dtw_banded;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsdist_linalg::Matrix;

/// The RWS embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rws {
    /// Alignment bandwidth γ (Table 4's grid, 1e-3 ..= 1e3).
    pub gamma: f64,
    /// Number of random series `R` = representation length.
    pub features: usize,
    /// Maximum random-series length `D_max` (Table 4: 25).
    pub d_max: usize,
    /// Seed for the random series.
    pub seed: u64,
}

impl Rws {
    /// Creates an RWS embedder.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not positive, `features` is zero, or
    /// `d_max` is zero.
    pub fn new(gamma: f64, features: usize, d_max: usize, seed: u64) -> Self {
        assert!(gamma > 0.0, "RWS gamma must be positive");
        assert!(features > 0, "RWS needs at least one feature");
        assert!(d_max >= 1, "RWS needs positive random-series length");
        Rws {
            gamma,
            features,
            d_max,
            seed,
        }
    }

    fn random_series(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        (0..self.features)
            .map(|_| {
                let len = rng.gen_range(1..=self.d_max);
                (0..len)
                    .map(|_| {
                        // Box–Muller standard normal.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    })
                    .collect()
            })
            .collect()
    }
}

impl Embedding for Rws {
    fn name(&self) -> String {
        format!("RWS(γ={})", self.gamma)
    }

    fn embed(&self, series: &[Vec<f64>], _n_train: usize) -> Matrix {
        let omegas = self.random_series();
        let scale = 1.0 / (self.features as f64).sqrt();
        Matrix::from_fn(series.len(), self.features, |i, r| {
            let x = &series[i];
            let omega = &omegas[r];
            let band = x.len().max(omega.len());
            let dtw = dtw_banded(x, omega, band);
            scale * (-dtw / (self.gamma * x.len().max(1) as f64)).exp()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..m).map(|j| (j as f64 * 0.3 + i as f64).sin()).collect())
            .collect()
    }

    #[test]
    fn shape_and_bounds() {
        let s = toy(8, 20);
        let z = Rws::new(1.0, 10, 25, 5).embed(&s, 8);
        assert_eq!(z.rows(), 8);
        assert_eq!(z.cols(), 10);
        let scale = 1.0 / 10f64.sqrt();
        for i in 0..8 {
            for &v in z.row(i) {
                assert!(v > 0.0 && v <= scale + 1e-12);
            }
        }
    }

    #[test]
    fn identical_series_identical_features() {
        let mut s = toy(4, 16);
        s.push(s[2].clone());
        let z = Rws::new(1.0, 8, 10, 1).embed(&s, 4);
        for c in 0..z.cols() {
            assert_eq!(z[(2, c)], z[(4, c)]);
        }
    }

    #[test]
    fn different_seeds_give_different_features() {
        let s = toy(4, 16);
        let a = Rws::new(1.0, 8, 10, 1).embed(&s, 4);
        let b = Rws::new(1.0, 8, 10, 2).embed(&s, 4);
        assert!(a.max_abs_diff(&b) > 1e-9);
    }

    #[test]
    fn warped_copies_embed_nearby() {
        let m = 40;
        let x: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 20.0) / 5.0).powi(2) / 2.0).exp())
            .collect();
        let warped: Vec<f64> = (0..m)
            .map(|i| {
                let t = (i as f64 / (m - 1) as f64).powf(1.2) * (m - 1) as f64;
                let d = (t - 20.0) / 5.0;
                (-d * d / 2.0).exp()
            })
            .collect();
        let unrelated: Vec<f64> = (0..m).map(|i| ((i * 13 % 7) as f64) / 3.0).collect();
        let z = Rws::new(1.0, 32, 25, 11).embed(&[x, warped, unrelated], 3);
        let ed = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>()
        };
        assert!(ed(z.row(0), z.row(1)) < ed(z.row(0), z.row(2)));
    }
}
