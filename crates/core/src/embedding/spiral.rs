//! SPIRAL: Similarity-PreservIng RepresentAtion Learning (Lei et al.
//! 2017).
//!
//! SPIRAL builds a partial DTW similarity matrix and factorizes it so
//! that inner products of the representations preserve the sampled
//! similarities. Our from-scratch variant samples the similarity matrix
//! at `k` landmark columns and factorizes with the Nyström method —
//! the same "preserve a sampled similarity matrix by low-rank
//! factorization" construction, with the landmark pattern replacing
//! uniform random sampling (documented as a simplification in
//! `DESIGN.md`).

use super::{select_landmarks, Embedding};
use crate::elastic::dtw::dtw_banded;
use tsdist_linalg::{nystroem_features, Matrix};

/// The SPIRAL embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spiral {
    /// Bandwidth γ of the DTW-to-similarity transform
    /// `s = exp(-DTW / (γ m))`.
    pub gamma: f64,
    /// Number of landmark columns sampled from the similarity matrix.
    pub landmarks: usize,
    /// Representation length.
    pub dims: usize,
    /// Seed for landmark selection.
    pub seed: u64,
}

impl Spiral {
    /// Creates a SPIRAL embedder.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not positive or `landmarks`/`dims` is
    /// zero.
    pub fn new(gamma: f64, landmarks: usize, dims: usize, seed: u64) -> Self {
        assert!(gamma > 0.0, "SPIRAL gamma must be positive");
        assert!(
            landmarks > 0 && dims > 0,
            "landmarks and dims must be positive"
        );
        Spiral {
            gamma,
            landmarks,
            dims,
            seed,
        }
    }

    fn similarity(&self, x: &[f64], y: &[f64]) -> f64 {
        let band = x.len().max(y.len());
        let dtw = dtw_banded(x, y, band);
        (-dtw / (self.gamma * x.len().max(1) as f64)).exp()
    }
}

impl Embedding for Spiral {
    fn name(&self) -> String {
        format!("SPIRAL(γ={})", self.gamma)
    }

    fn embed(&self, series: &[Vec<f64>], n_train: usize) -> Matrix {
        let lm_idx = select_landmarks(series, n_train.max(1), self.landmarks, self.seed);
        let k = lm_idx.len();
        let n = series.len();

        let s_ll = Matrix::from_fn(k, k, |i, j| {
            self.similarity(&series[lm_idx[i]], &series[lm_idx[j]])
        });
        let s_nl = Matrix::from_fn(n, k, |i, j| self.similarity(&series[i], &series[lm_idx[j]]));
        nystroem_features(&s_ll, &s_nl, self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| (j as f64 * 0.4 + (i % 3) as f64 * 2.0).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shape_is_respected() {
        let s = toy(9, 20);
        let z = Spiral::new(1.0, 6, 4, 2).embed(&s, 7);
        assert_eq!(z.rows(), 9);
        assert!(z.cols() <= 4);
    }

    #[test]
    fn self_similarity_is_one() {
        let s = toy(3, 16);
        let sp = Spiral::new(1.0, 3, 3, 0);
        assert!((sp.similarity(&s[0], &s[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_class_series_embed_nearby() {
        // Classes repeat with period 3 in `toy`.
        let s = toy(9, 24);
        let z = Spiral::new(1.0, 6, 6, 0).embed(&s, 9);
        let ed = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>()
        };
        // Series 0 and 3 share a class; 0 and 1 do not.
        assert!(ed(z.row(0), z.row(3)) < ed(z.row(0), z.row(1)));
    }

    #[test]
    fn preserves_landmark_similarities_when_landmarks_cover_everything() {
        let s = toy(5, 16);
        let sp = Spiral::new(1.0, 5, 5, 0);
        let z = sp.embed(&s, 5);
        for i in 0..5 {
            for j in 0..5 {
                let approx: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
                let exact = sp.similarity(&s[i], &s[j]);
                assert!(
                    (approx - exact).abs() < 1e-6,
                    "({i},{j}): {approx} vs {exact}"
                );
            }
        }
    }
}
