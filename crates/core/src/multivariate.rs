//! Multivariate extensions of the core measures.
//!
//! The paper restricts itself to univariate series and notes (footnote 1)
//! that "most of the measures we consider can be extended with some
//! effort for ... multivariate time series where each point represents a
//! vector", leaving that as future work. This module provides the
//! standard extensions for the headline measures: a multivariate series
//! is a `d x m` collection, `series[dim][t]`.
//!
//! * [`ed_multivariate`] — lock-step ED over vector-valued points,
//! * [`dtw_dependent`] — one shared warping path, vector local costs
//!   (the "DTW_D" of the multivariate literature),
//! * [`dtw_independent`] — per-dimension warping, summed ("DTW_I");
//!   `DTW_I <= DTW_D` always, since each dimension may warp freely,
//! * [`sbd_independent`] — per-dimension SBD, averaged,
//! * [`znorm_dims`] — per-dimension z-normalization.

use crate::elastic::dtw::dtw_banded;
use crate::measure::Distance;
use crate::normalization::Normalization;
use crate::sliding::CrossCorrelation;

/// Validates a `d x m` multivariate series pair and returns `(d, m)`.
///
/// # Panics
/// Panics on empty inputs, mismatched dimension counts, or ragged
/// dimensions.
fn check_pair(x: &[Vec<f64>], y: &[Vec<f64>]) -> (usize, usize) {
    assert!(!x.is_empty() && !y.is_empty(), "empty multivariate series");
    assert_eq!(x.len(), y.len(), "dimension count mismatch");
    let m = x[0].len();
    assert!(
        x.iter().all(|d| d.len() == m) && y.iter().all(|d| d.len() == m),
        "ragged multivariate series"
    );
    (x.len(), m)
}

/// Per-dimension z-normalization.
pub fn znorm_dims(x: &[Vec<f64>]) -> Vec<Vec<f64>> {
    x.iter().map(|d| Normalization::ZScore.apply(d)).collect()
}

/// Multivariate Euclidean distance:
/// `sqrt(sum_t sum_dim (x[dim][t] - y[dim][t])^2)`.
pub fn ed_multivariate(x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
    check_pair(x, y);
    x.iter()
        .zip(y)
        .map(|(xd, yd)| {
            xd.iter()
                .zip(yd)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .sum::<f64>()
        .sqrt()
}

/// Dependent multivariate DTW ("DTW_D"): a single warping path over
/// vector-valued points, with the squared Euclidean local cost
/// `sum_dim (x[dim][i] - y[dim][j])^2`. `band` is the absolute
/// Sakoe–Chiba radius.
pub fn dtw_dependent(x: &[Vec<f64>], y: &[Vec<f64>], band: usize) -> f64 {
    let (d, m) = check_pair(x, y);
    let n = y[0].len();
    const INF: f64 = f64::INFINITY;
    let band = band.max(m.abs_diff(n));

    let mut prev = vec![INF; n + 1];
    let mut curr = vec![INF; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        curr.fill(INF);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(n);
        for j in lo..=hi {
            let mut cost = 0.0;
            for dim in 0..d {
                let diff = x[dim][i - 1] - y[dim][j - 1];
                cost += diff * diff;
            }
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Independent multivariate DTW ("DTW_I"): each dimension warps on its
/// own; the distances are summed. Always `<=` [`dtw_dependent`] at the
/// same band, since the shared path is one feasible choice per dimension.
pub fn dtw_independent(x: &[Vec<f64>], y: &[Vec<f64>], band: usize) -> f64 {
    check_pair(x, y);
    x.iter()
        .zip(y)
        .map(|(xd, yd)| dtw_banded(xd, yd, band.max(xd.len().abs_diff(yd.len()))))
        .sum()
}

/// Independent multivariate SBD: the per-dimension `1 - NCC_c`
/// dissimilarities, averaged. Each dimension finds its own best shift.
pub fn sbd_independent(x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
    let (d, _) = check_pair(x, y);
    let sbd = CrossCorrelation::sbd();
    x.iter()
        .zip(y)
        .map(|(xd, yd)| sbd.distance(xd, yd))
        .sum::<f64>()
        / d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bivariate(phase: f64) -> Vec<Vec<f64>> {
        vec![
            (0..32).map(|i| (i as f64 * 0.4 + phase).sin()).collect(),
            (0..32).map(|i| (i as f64 * 0.25 + phase).cos()).collect(),
        ]
    }

    #[test]
    fn identical_series_have_zero_distance_everywhere() {
        let x = bivariate(0.0);
        assert_eq!(ed_multivariate(&x, &x), 0.0);
        assert_eq!(dtw_dependent(&x, &x, 32), 0.0);
        assert_eq!(dtw_independent(&x, &x, 32), 0.0);
        assert!(sbd_independent(&znorm_dims(&x), &znorm_dims(&x)) < 1e-9);
    }

    #[test]
    fn multivariate_ed_reduces_to_univariate_for_one_dimension() {
        use crate::lockstep::Euclidean;
        let x = vec![vec![1.0, 2.0, 3.0]];
        let y = vec![vec![2.0, 0.0, 4.0]];
        assert!((ed_multivariate(&x, &y) - Euclidean.distance(&x[0], &y[0])).abs() < 1e-12);
    }

    #[test]
    fn independent_dtw_never_exceeds_dependent() {
        for phase in [0.3, 0.9, 1.7] {
            let x = bivariate(0.0);
            let y = bivariate(phase);
            let band = 8;
            let dep = dtw_dependent(&x, &y, band);
            let ind = dtw_independent(&x, &y, band);
            assert!(
                ind <= dep + 1e-9,
                "DTW_I {ind} > DTW_D {dep} at phase {phase}"
            );
        }
    }

    #[test]
    fn dependent_dtw_with_zero_band_is_squared_multivariate_ed() {
        let x = bivariate(0.0);
        let y = bivariate(0.5);
        let ed = ed_multivariate(&x, &y);
        let dtw0 = dtw_dependent(&x, &y, 0);
        assert!((dtw0 - ed * ed).abs() < 1e-9);
    }

    #[test]
    fn sbd_handles_per_dimension_shifts() {
        // Each dimension shifted by a different lag: independent SBD
        // still matches both.
        let bump = |c: f64| -> Vec<f64> {
            Normalization::ZScore.apply(
                &(0..64)
                    .map(|i| (-((i as f64 - c) / 3.0).powi(2) / 2.0).exp())
                    .collect::<Vec<_>>(),
            )
        };
        let x = vec![bump(20.0), bump(40.0)];
        let y = vec![bump(30.0), bump(25.0)];
        let d = sbd_independent(&x, &y);
        assert!(d < 0.15, "d = {d}");
    }

    #[test]
    fn znorm_dims_normalizes_each_dimension() {
        let x = vec![vec![10.0, 20.0, 30.0], vec![-5.0, 0.0, 5.0]];
        for dim in znorm_dims(&x) {
            let mean: f64 = dim.iter().sum::<f64>() / dim.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "dimension count mismatch")]
    fn mismatched_dimensions_panic() {
        let x = vec![vec![1.0, 2.0]];
        let y = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let _ = ed_multivariate(&x, &y);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_dimensions_panic() {
        let x = vec![vec![1.0, 2.0], vec![1.0]];
        let _ = ed_multivariate(&x, &x.clone());
    }
}
