//! The core distance-measure abstraction.
//!
//! Besides the original [`Distance::distance`] entry point, every measure
//! exposes [`Distance::distance_ws`], an allocation-free twin taking a
//! [`Workspace`] of reusable scratch buffers, and declares via
//! [`Distance::is_symmetric`] whether `d(x, y)` and `d(y, x)` are
//! *bit-identical* — the contract the batch matrix engine in
//! `tsdist-eval` relies on to compute only the upper triangle of
//! train×train matrices. The same pair of extensions exists on
//! [`Kernel`] ([`Kernel::log_kernel_ws`], [`Kernel::is_symmetric`]).

use crate::workspace::Workspace;

/// The input regime on which a [`Distance`] is a (pseudo)metric —
/// symmetric, with `d(x, z) <= d(x, y) + d(y, z)` for every triple drawn
/// from the regime.
///
/// The index tier's pivot layer (`crate::index`) prunes candidates with
/// the reverse triangle inequality, so it only engages for measures that
/// *declare* a regime here — and the declaration is checked, not trusted:
/// building a pivot table samples random triples from the actual data and
/// panics if a declared regime is violated (see
/// [`crate::index::assert_metric_on`]). `Canberra` is the motivating
/// case: its guarded formula is a metric only on density-like positive
/// data, so it declares [`MetricRegime::Positive`] and silently falls
/// back to the lower-bound cascade or linear scan on z-scored inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricRegime {
    /// Not a metric (or not known to be one) on any supported inputs.
    None,
    /// A metric when every coordinate of every operand is `>= EPS` —
    /// the "density-like" regime Cha's formulas assume. Below that floor
    /// the [`EPS`]-guarded denominators distort the triangle inequality.
    Positive,
    /// A metric on all of `R^n` (equal-length inputs).
    All,
}

/// Which index-tier summary structure can lower-bound a [`Distance`].
///
/// Returned by [`Distance::index_profile`]; the planner in `tsdist-eval`
/// uses it to decide whether a PAA/Keogh envelope cascade is admissible
/// for the measure. Wrappers that transform the series (derivatives,
/// adaptive scaling, logistic weights) must report [`IndexProfile::None`]
/// — envelope bounds over the *raw* series do not survive the transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexProfile {
    /// No summary structure lower-bounds this measure.
    None,
    /// Banded DTW over raw values: LB_PAA and LB_Keogh envelopes built
    /// with this Sakoe-Chiba `window_pct` are admissible lower bounds.
    KeoghDtw {
        /// The window percentage the envelopes must be built with —
        /// identical to the measure's own band arithmetic.
        window_pct: f64,
    },
}

/// A pairwise dissimilarity between two equal-purpose time series.
///
/// Implementations must be thread-safe ([`Send`] + [`Sync`]) because the
/// evaluation platform computes dissimilarity matrices in parallel.
///
/// The contract is deliberately loose — mirroring the paper, which mixes
/// metrics (ED, MSM), non-metrics (DTW), and similarity-derived scores
/// (NCC variants): implementations need only be *order-meaningful* (lower
/// = more similar) and deterministic. They are **not** required to satisfy
/// the triangle inequality, symmetry, or non-negativity.
pub trait Distance: Send + Sync {
    /// Human-readable measure name, e.g. `"Lorentzian"` or `"DTW(δ=10)"`.
    fn name(&self) -> String;

    /// The dissimilarity between `x` and `y`.
    ///
    /// Implementations may assume `x` and `y` are non-empty and, unless
    /// documented otherwise, of equal length (the dataset substrate
    /// guarantees rectangular datasets).
    fn distance(&self, x: &[f64], y: &[f64]) -> f64;

    /// The dissimilarity between `x` and `y`, using `ws` for scratch
    /// memory instead of allocating.
    ///
    /// Must return exactly (bit-for-bit) the same value as
    /// [`Distance::distance`]; the default simply delegates. DP- and
    /// FFT-based measures override it to reuse the workspace arenas,
    /// eliminating per-call heap traffic on the matrix-construction hot
    /// path.
    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let _ = ws;
        self.distance(x, y)
    }

    /// The dissimilarity between `x` and `y`, early-abandoning against a
    /// best-so-far `cutoff`.
    ///
    /// Contract: when the true distance (the value [`Distance::distance_ws`]
    /// would return) is `< cutoff`, that exact value is returned
    /// *bit-for-bit*; otherwise the implementation may stop early and
    /// return any value `>= cutoff` (canonically [`f64::INFINITY`]).
    /// 1-NN search loops exploit this: a candidate whose distance cannot
    /// beat the best so far is abandoned after a fraction of its work,
    /// without ever changing which neighbour wins.
    ///
    /// The default ignores `cutoff` and delegates to
    /// [`Distance::distance_ws`] — always correct, never faster. Measures
    /// with a monotone accumulation (running sums of non-negative terms,
    /// non-negative-cost dynamic programs) override it with genuine
    /// abandoning; see `DESIGN.md` ("Early abandoning and cutoff
    /// threading") for which measures do. Overrides must treat a
    /// non-finite `cutoff` (`+∞`, NaN) as "no cutoff" and return the
    /// exact `distance_ws` value.
    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        let _ = cutoff;
        self.distance_ws(x, y, ws)
    }

    /// Whether `distance(x, y)` and `distance(y, x)` are *bit-identical*
    /// for all **equal-length** inputs (the only case the batch engine
    /// mirrors; per-length normalizers like Gower divide by `x.len()` and
    /// are asymmetric across lengths).
    ///
    /// This is a stronger promise than mathematical symmetry: the batch
    /// engine uses it to compute only the upper triangle of train×train
    /// matrices and mirror, so the mirrored cells must equal what a full
    /// computation would have produced down to the last bit. Measures
    /// whose formula is asymmetric (KL divergence, χ² variants, adaptive
    /// scaling) and measures whose rounding depends on argument order
    /// (FFT cross-correlation, rescaled log-space DPs) return `false`.
    fn is_symmetric(&self) -> bool {
        true
    }

    /// How many independent accumulation/DP lanes the measure's hot
    /// paths ([`Distance::distance_ws`] / [`Distance::distance_upto`])
    /// process concurrently; `1` means a plain scalar loop.
    ///
    /// Pure introspection for coverage reporting (`tsdist conformance`,
    /// `bench_kernels`) — the value never influences results. Measures
    /// built on the chunked lock-step reductions or the anti-diagonal
    /// wavefront DPs report [`crate::lanes::LANES`]; delegating wrappers
    /// forward their inner measure's hint.
    fn lanes_hint(&self) -> usize {
        1
    }

    /// The input regime on which this measure is a (pseudo)metric — see
    /// [`MetricRegime`]. The default is [`MetricRegime::None`]: a measure
    /// must opt in explicitly to be eligible for triangle-inequality
    /// pivot pruning, and the declaration is validated against sampled
    /// triples when a pivot table is built, so a wrong flag fails loudly
    /// instead of silently corrupting answers.
    fn metric_regime(&self) -> MetricRegime {
        MetricRegime::None
    }

    /// Whether the measure is a metric on *some* declared input regime —
    /// shorthand for `metric_regime() != MetricRegime::None`.
    fn is_metric(&self) -> bool {
        self.metric_regime() != MetricRegime::None
    }

    /// Which index-tier summary structure admissibly lower-bounds this
    /// measure — see [`IndexProfile`]. The default is
    /// [`IndexProfile::None`]; only plain banded DTW opts in, and
    /// transforming wrappers (derivative, weighted, adaptive-scaled)
    /// deliberately keep the default.
    fn index_profile(&self) -> IndexProfile {
        IndexProfile::None
    }
}

impl<D: Distance + ?Sized> Distance for Box<D> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).distance(x, y)
    }
    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        (**self).distance_ws(x, y, ws)
    }
    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        (**self).distance_upto(x, y, ws, cutoff)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
    fn lanes_hint(&self) -> usize {
        (**self).lanes_hint()
    }
    fn metric_regime(&self) -> MetricRegime {
        (**self).metric_regime()
    }
    fn index_profile(&self) -> IndexProfile {
        (**self).index_profile()
    }
}

impl<D: Distance + ?Sized> Distance for &D {
    fn name(&self) -> String {
        (**self).name()
    }
    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).distance(x, y)
    }
    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        (**self).distance_ws(x, y, ws)
    }
    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        (**self).distance_upto(x, y, ws, cutoff)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
    fn lanes_hint(&self) -> usize {
        (**self).lanes_hint()
    }
    fn metric_regime(&self) -> MetricRegime {
        (**self).metric_regime()
    }
    fn index_profile(&self) -> IndexProfile {
        (**self).index_profile()
    }
}

/// A positive semi-definite kernel (similarity) function.
///
/// Kernels are converted to dissimilarities for 1-NN classification via
/// the normalized form `d(x, y) = 1 - k(x, y) / sqrt(k(x,x) * k(y,y))`;
/// the evaluation platform caches the self-similarities `k(x,x)`.
pub trait Kernel: Send + Sync {
    /// Human-readable kernel name, e.g. `"GAK(γ=0.1)"`.
    fn name(&self) -> String;

    /// The kernel value `k(x, y)`.
    fn kernel(&self, x: &[f64], y: &[f64]) -> f64;

    /// The self-similarity `k(x, x)`; override when cheaper than the
    /// general case.
    fn self_kernel(&self, x: &[f64]) -> f64 {
        self.kernel(x, x)
    }

    /// The *logarithm* of the kernel value. Alignment kernels (GAK, KDTW)
    /// override this because their raw values underflow `f64` for long
    /// series; the normalized dissimilarity is computed entirely in log
    /// space from this method.
    fn log_kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        self.kernel(x, y).max(f64::MIN_POSITIVE).ln()
    }

    /// Log of the self-similarity.
    fn log_self_kernel(&self, x: &[f64]) -> f64 {
        self.log_kernel(x, x)
    }

    /// The kernel value, using `ws` for scratch memory. Must be
    /// bit-identical to [`Kernel::kernel`]; the default delegates.
    fn kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let _ = ws;
        self.kernel(x, y)
    }

    /// The log kernel value, using `ws` for scratch memory. Must be
    /// bit-identical to [`Kernel::log_kernel`]; the default delegates.
    fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let _ = ws;
        self.log_kernel(x, y)
    }

    /// Log of the self-similarity, using `ws` for scratch memory.
    fn log_self_kernel_ws(&self, x: &[f64], ws: &mut Workspace) -> f64 {
        self.log_kernel_ws(x, x, ws)
    }

    /// Whether `log_kernel(x, y)` and `log_kernel(y, x)` are
    /// bit-identical for all inputs (see [`Distance::is_symmetric`] for
    /// why bit-exactness is the bar). The alignment kernels return
    /// `false`: their per-row rescaling (GAK, KDTW) and FFT rounding
    /// (SINK) depend on argument order even though the kernels are
    /// mathematically symmetric.
    fn is_symmetric(&self) -> bool {
        true
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).kernel(x, y)
    }
    fn self_kernel(&self, x: &[f64]) -> f64 {
        (**self).self_kernel(x)
    }
    fn log_kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).log_kernel(x, y)
    }
    fn log_self_kernel(&self, x: &[f64]) -> f64 {
        (**self).log_self_kernel(x)
    }
    fn kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        (**self).kernel_ws(x, y, ws)
    }
    fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        (**self).log_kernel_ws(x, y, ws)
    }
    fn log_self_kernel_ws(&self, x: &[f64], ws: &mut Workspace) -> f64 {
        (**self).log_self_kernel_ws(x, ws)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// Adapter exposing a [`Kernel`] as a [`Distance`] through the normalized
/// kernel dissimilarity. Self-similarities are recomputed per call; the
/// evaluation platform prefers its cached kernel path, but this adapter
/// makes every kernel usable anywhere a distance is expected.
pub struct KernelDistance<K: Kernel>(pub K);

impl<K: Kernel> Distance for KernelDistance<K> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let lxy = self.0.log_kernel(x, y);
        let lxx = self.0.log_self_kernel(x);
        let lyy = self.0.log_self_kernel(y);
        if !lxx.is_finite() || !lyy.is_finite() {
            return 1.0;
        }
        1.0 - (lxy - 0.5 * (lxx + lyy)).exp()
    }
    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let lxy = self.0.log_kernel_ws(x, y, ws);
        let lxx = self.0.log_self_kernel_ws(x, ws);
        let lyy = self.0.log_self_kernel_ws(y, ws);
        if !lxx.is_finite() || !lyy.is_finite() {
            return 1.0;
        }
        1.0 - (lxy - 0.5 * (lxx + lyy)).exp()
    }
    fn is_symmetric(&self) -> bool {
        // `lxx + lyy` commutes bit-exactly, so the adapter is exactly as
        // symmetric as the underlying kernel's cross term.
        self.0.is_symmetric()
    }
}

/// Numerical guard added to denominators and log arguments throughout the
/// lock-step measures; many of Cha's formulas assume strictly positive
/// probability densities while z-normalized time series contain zeros and
/// negative values.
pub const EPS: f64 = 1e-10;

#[cfg(test)]
mod tests {
    use super::*;

    struct Dot;
    impl Kernel for Dot {
        fn name(&self) -> String {
            "dot".into()
        }
        fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
            x.iter().zip(y).map(|(a, b)| a * b).sum()
        }
    }

    #[test]
    fn kernel_distance_is_zero_for_identical_inputs() {
        let d = KernelDistance(Dot);
        let x = [1.0, 2.0, 3.0];
        assert!(d.distance(&x, &x).abs() < 1e-12);
    }

    #[test]
    fn kernel_distance_is_one_minus_cosine_for_dot_kernel() {
        let d = KernelDistance(Dot);
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        assert!((d.distance(&x, &y) - 1.0).abs() < 1e-12);
        let z = [1.0, 1.0];
        let expected = 1.0 - 1.0 / 2.0f64.sqrt();
        assert!((d.distance(&x, &z) - expected).abs() < 1e-12);
    }

    #[test]
    fn degenerate_kernel_norm_yields_unit_distance() {
        let d = KernelDistance(Dot);
        assert_eq!(d.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn boxed_distance_delegates() {
        struct Abs;
        impl Distance for Abs {
            fn name(&self) -> String {
                "abs".into()
            }
            fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
                x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
            }
        }
        let b: Box<dyn Distance> = Box::new(Abs);
        assert_eq!(b.name(), "abs");
        assert_eq!(b.distance(&[1.0], &[3.0]), 2.0);
    }
}
