//! SINK: the Shift-INvariant Kernel (Paparrizos & Franklin 2019).
//!
//! SINK sums an exponentiated coefficient-normalized cross-correlation
//! over *all* shifts:
//!
//! ```text
//! k(x, y) = sum_w exp(γ * CC_w(x, y) / (||x|| ||y||))
//! ```
//!
//! which makes it a smooth, PSD analogue of NCC_c: instead of only the
//! best shift, every alignment contributes with exponential weighting.
//! Like NCC_c it costs O(m log m) via the FFT — the paper's Figure 9
//! places SINK and NCC_c together in the accuracy-to-runtime sweet spot.

use crate::measure::Kernel;
use crate::workspace::Workspace;
use tsdist_fft::cross_correlation;

/// The SINK kernel with exponent weight γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sink {
    /// Exponent weight γ (Table 4 tunes over `1..=20`).
    pub gamma: f64,
}

impl Sink {
    /// Creates the SINK kernel.
    ///
    /// # Panics
    /// Panics if `gamma` is not strictly positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "SINK gamma must be positive, got {gamma}");
        Sink { gamma }
    }
}

impl Kernel for Sink {
    fn name(&self) -> String {
        format!("SINK(γ={})", self.gamma)
    }

    fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        let denom = (nx * ny).max(f64::MIN_POSITIVE);
        cross_correlation(x, y)
            .iter()
            .map(|&cc| (self.gamma * cc / denom).exp())
            .sum()
    }

    fn kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        let denom = (nx * ny).max(f64::MIN_POSITIVE);
        ws.cc_scratch()
            .cross_correlation(x, y)
            .iter()
            .map(|&cc| (self.gamma * cc / denom).exp())
            .sum()
    }

    fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // Mirrors the trait's default `log_kernel` formula over the
        // scratch-buffer kernel path.
        self.kernel_ws(x, y, ws).max(f64::MIN_POSITIVE).ln()
    }

    fn is_symmetric(&self) -> bool {
        // cross_correlation(x, y) and (y, x) are reverses computed through
        // different FFT pairings; equal only to rounding.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn znorm(x: &[f64]) -> Vec<f64> {
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let sd = (x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
            .sqrt()
            .max(1e-12);
        x.iter().map(|v| (v - mean) / sd).collect()
    }

    #[test]
    fn self_kernel_dominates_cross_kernel_normalized() {
        let x = znorm(&[0.1, 0.9, -1.2, 0.4, 1.5, -0.7, 0.3, -1.3]);
        let y = znorm(&[1.4, -0.3, 0.2, -1.8, 0.9, 0.5, -1.0, 0.1]);
        let k = Sink::new(5.0);
        let kxx = k.self_kernel(&x);
        let kyy = k.self_kernel(&y);
        let kxy = k.kernel(&x, &y);
        assert!(kxy / (kxx * kyy).sqrt() <= 1.0 + 1e-9);
    }

    #[test]
    fn shifted_copies_stay_highly_similar() {
        // A compact bump shifted in time: the best shift matches exactly,
        // which dominates the exponentially weighted sum.
        let bump = |center: f64| -> Vec<f64> {
            (0..64)
                .map(|i| (-((i as f64 - center) / 4.0).powi(2) / 2.0).exp())
                .collect()
        };
        let (x, y) = (znorm(&bump(20.0)), znorm(&bump(33.0)));
        let k = Sink::new(10.0);
        let sim = k.kernel(&x, &y) / (k.self_kernel(&x) * k.self_kernel(&y)).sqrt();
        assert!(sim > 0.5, "normalized SINK similarity {sim}");
        // And far above the similarity to an unrelated sawtooth.
        let z = znorm(&(0..64).map(|i| (i % 5) as f64).collect::<Vec<_>>());
        let sim_z = k.kernel(&x, &z) / (k.self_kernel(&x) * k.self_kernel(&z)).sqrt();
        assert!(sim > sim_z, "{sim} !> {sim_z}");
    }

    #[test]
    fn gamma_sharpens_the_kernel() {
        // Larger gamma concentrates weight on the best shift, so the
        // normalized similarity to an unrelated series shrinks.
        let x = znorm(&(0..32).map(|i| (i as f64 * 0.7).sin()).collect::<Vec<_>>());
        let y = znorm(
            &(0..32)
                .map(|i| ((i * i % 13) as f64) - 6.0)
                .collect::<Vec<_>>(),
        );
        let sim = |g: f64| {
            let k = Sink::new(g);
            k.kernel(&x, &y) / (k.self_kernel(&x) * k.self_kernel(&y)).sqrt()
        };
        assert!(sim(20.0) < sim(1.0));
    }

    #[test]
    fn kernel_is_positive() {
        let x = [0.0, 0.0, 0.0];
        let y = [1.0, -1.0, 1.0];
        assert!(Sink::new(3.0).kernel(&x, &y) > 0.0);
    }
}
