//! KDTW: the regularized Dynamic Time Warping kernel (Marteau & Gibet
//! 2014).
//!
//! KDTW makes DTW-style alignment positive definite by (i) summing over
//! all alignments instead of minimizing, with the regularized local
//! kernel `κ(a, b) = (exp(-ν (a-b)^2) + ε) / (3 (1 + ε))`, and (ii)
//! adding a corrective term `K'` that walks the two diagonals. Following
//! the reference recursion:
//!
//! ```text
//! K [i][j] = κ(x_i, y_j) (K[i-1][j] + K[i][j-1] + K[i-1][j-1])
//! K'[i][j] = K'[i-1][j] κ(x_i, y_i) + K'[i][j-1] κ(x_j, y_j)
//!            (+ K'[i-1][j-1] κ(x_i, y_j)   when i == j)
//! KDTW(x, y) = K[m][n] + K'[m][n]
//! ```
//!
//! Like GAK, the raw values underflow `f64` almost immediately, so both
//! DPs run in linear space with per-row rescaling and the two
//! log-magnitudes are combined at the end. This is the kernel the paper
//! reports as the first measure to significantly outperform DTW in *both*
//! supervised and unsupervised settings.

use super::log_add;
use crate::measure::Kernel;
use crate::workspace::Workspace;

/// KDTW with stiffness ν (the paper's γ grid, `2^-15 ..= 2^0`; the
/// unsupervised pick is `γ = 0.125`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kdtw {
    /// Local-kernel stiffness ν.
    pub nu: f64,
}

/// Regularization epsilon of the local kernel (reference implementation
/// value).
const LOCAL_EPS: f64 = 1e-3;

impl Kdtw {
    /// Creates the KDTW kernel.
    ///
    /// # Panics
    /// Panics if `nu` is not strictly positive.
    pub fn new(nu: f64) -> Self {
        assert!(nu > 0.0, "KDTW nu must be positive, got {nu}");
        Kdtw { nu }
    }

    /// The regularized local kernel κ(a, b) (linear domain).
    #[inline]
    fn local(&self, a: f64, b: f64) -> f64 {
        let d = a - b;
        ((-self.nu * d * d).exp() + LOCAL_EPS) / (3.0 * (1.0 + LOCAL_EPS))
    }

    /// Log of the KDTW kernel value.
    pub fn log_kernel_value(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }

        // Diagonal local kernels κ(x_i, y_i), index clamped to the shorter
        // length for unequal series.
        let min_mn = m.min(n);
        let diag: Vec<f64> = (0..min_mn).map(|i| self.local(x[i], y[i])).collect();
        let diag_at = |i: usize| diag[(i - 1).min(min_mn - 1)];

        // Linear-space rolling rows with separate cumulative log scales
        // for the two DPs.
        let mut k_prev = vec![0.0f64; n + 1];
        let mut k_curr = vec![0.0f64; n + 1];
        let mut kp_prev = vec![0.0f64; n + 1];
        let mut kp_curr = vec![0.0f64; n + 1];
        let mut k_scale = 0.0f64;
        let mut kp_scale = 0.0f64;

        // Row 0.
        k_prev[0] = 1.0;
        kp_prev[0] = 1.0;
        for j in 1..=n {
            k_prev[j] = k_prev[j - 1] * self.local(x[0], y[j - 1]);
            kp_prev[j] = kp_prev[j - 1] * diag_at(j);
        }

        for i in 1..=m {
            k_curr[0] = k_prev[0] * self.local(x[i - 1], y[0]);
            kp_curr[0] = kp_prev[0] * diag_at(i);
            let mut k_max = k_curr[0];
            let mut kp_max = kp_curr[0];
            for j in 1..=n {
                let lk = self.local(x[i - 1], y[j - 1]);
                let v = lk * (k_prev[j] + k_curr[j - 1] + k_prev[j - 1]);
                k_curr[j] = v;
                k_max = k_max.max(v);

                let mut w = kp_prev[j] * diag_at(i) + kp_curr[j - 1] * diag_at(j);
                if i == j {
                    w += kp_prev[j - 1] * lk;
                }
                kp_curr[j] = w;
                kp_max = kp_max.max(w);
            }
            if k_max > 0.0 && !(1e-120..=1e120).contains(&k_max) {
                let f = 1.0 / k_max;
                for v in k_curr.iter_mut() {
                    *v *= f;
                }
                k_scale += k_max.ln();
                // K' rows in later iterations never mix with K rows, so
                // the scales stay independent.
            }
            if kp_max > 0.0 && !(1e-120..=1e120).contains(&kp_max) {
                let f = 1.0 / kp_max;
                for v in kp_curr.iter_mut() {
                    *v *= f;
                }
                kp_scale += kp_max.ln();
            }
            std::mem::swap(&mut k_prev, &mut k_curr);
            std::mem::swap(&mut kp_prev, &mut kp_curr);
        }

        let log_k = if k_prev[n] > 0.0 {
            k_prev[n].ln() + k_scale
        } else {
            f64::NEG_INFINITY
        };
        let log_kp = if kp_prev[n] > 0.0 {
            kp_prev[n].ln() + kp_scale
        } else {
            f64::NEG_INFINITY
        };
        log_add(log_k, log_kp)
    }

    /// [`Kdtw::log_kernel_value`] with the four rolling rows and the
    /// diagonal cache drawn from `ws`; bit-identical to the allocating
    /// path.
    pub fn log_kernel_value_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }

        let min_mn = m.min(n);
        let mut diag = ws.take_aux();
        diag.extend((0..min_mn).map(|i| self.local(x[i], y[i])));
        let result = {
            let diag_at = |i: usize| diag[(i - 1).min(min_mn - 1)];

            let (mut k_prev, mut k_curr, mut kp_prev, mut kp_curr) = ws.dp_rows4(n + 1);
            let mut k_scale = 0.0f64;
            let mut kp_scale = 0.0f64;

            // Row 0.
            k_prev[0] = 1.0;
            kp_prev[0] = 1.0;
            for j in 1..=n {
                k_prev[j] = k_prev[j - 1] * self.local(x[0], y[j - 1]);
                kp_prev[j] = kp_prev[j - 1] * diag_at(j);
            }

            for i in 1..=m {
                k_curr[0] = k_prev[0] * self.local(x[i - 1], y[0]);
                kp_curr[0] = kp_prev[0] * diag_at(i);
                let mut k_max = k_curr[0];
                let mut kp_max = kp_curr[0];
                for j in 1..=n {
                    let lk = self.local(x[i - 1], y[j - 1]);
                    let v = lk * (k_prev[j] + k_curr[j - 1] + k_prev[j - 1]);
                    k_curr[j] = v;
                    k_max = k_max.max(v);

                    let mut w = kp_prev[j] * diag_at(i) + kp_curr[j - 1] * diag_at(j);
                    if i == j {
                        w += kp_prev[j - 1] * lk;
                    }
                    kp_curr[j] = w;
                    kp_max = kp_max.max(w);
                }
                if k_max > 0.0 && !(1e-120..=1e120).contains(&k_max) {
                    let f = 1.0 / k_max;
                    for v in k_curr.iter_mut() {
                        *v *= f;
                    }
                    k_scale += k_max.ln();
                }
                if kp_max > 0.0 && !(1e-120..=1e120).contains(&kp_max) {
                    let f = 1.0 / kp_max;
                    for v in kp_curr.iter_mut() {
                        *v *= f;
                    }
                    kp_scale += kp_max.ln();
                }
                std::mem::swap(&mut k_prev, &mut k_curr);
                std::mem::swap(&mut kp_prev, &mut kp_curr);
            }

            let log_k = if k_prev[n] > 0.0 {
                k_prev[n].ln() + k_scale
            } else {
                f64::NEG_INFINITY
            };
            let log_kp = if kp_prev[n] > 0.0 {
                kp_prev[n].ln() + kp_scale
            } else {
                f64::NEG_INFINITY
            };
            log_add(log_k, log_kp)
        };
        ws.put_aux(diag);
        result
    }
}

impl Kernel for Kdtw {
    fn name(&self) -> String {
        format!("KDTW(ν={})", self.nu)
    }

    fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        self.log_kernel_value(x, y).exp()
    }

    fn log_kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        self.log_kernel_value(x, y)
    }

    fn kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        self.log_kernel_value_ws(x, y, ws).exp()
    }

    fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        self.log_kernel_value_ws(x, y, ws)
    }

    fn is_symmetric(&self) -> bool {
        // Per-row rescaling triggers on row maxima; transposing changes
        // which rows rescale, so values agree only to rounding.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Distance, KernelDistance};

    /// Direct full-matrix f64 DP (no rescaling) — valid for short series,
    /// used as the oracle.
    fn kdtw_naive(k: &Kdtw, x: &[f64], y: &[f64]) -> f64 {
        let (m, n) = (x.len(), y.len());
        let mut dp = vec![vec![0.0f64; n + 1]; m + 1];
        let mut dp1 = vec![vec![0.0f64; n + 1]; m + 1];
        let min_mn = m.min(n);
        let diag = |i: usize| {
            let idx = (i - 1).min(min_mn - 1);
            k.local(x[idx], y[idx])
        };
        dp[0][0] = 1.0;
        dp1[0][0] = 1.0;
        for j in 1..=n {
            dp[0][j] = dp[0][j - 1] * k.local(x[0], y[j - 1]);
            dp1[0][j] = dp1[0][j - 1] * diag(j);
        }
        for i in 1..=m {
            dp[i][0] = dp[i - 1][0] * k.local(x[i - 1], y[0]);
            dp1[i][0] = dp1[i - 1][0] * diag(i);
            for j in 1..=n {
                let lk = k.local(x[i - 1], y[j - 1]);
                dp[i][j] = lk * (dp[i - 1][j] + dp[i][j - 1] + dp[i - 1][j - 1]);
                dp1[i][j] = dp1[i - 1][j] * diag(i) + dp1[i][j - 1] * diag(j);
                if i == j {
                    dp1[i][j] += dp1[i - 1][j - 1] * lk;
                }
            }
        }
        (dp[m][n] + dp1[m][n]).ln()
    }

    #[test]
    fn rescaled_dp_matches_naive_oracle() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.45 + 0.2).cos()).collect();
        for nu in [0.01, 0.125, 1.0] {
            let k = Kdtw::new(nu);
            let fast = k.log_kernel_value(&x, &y);
            let oracle = kdtw_naive(&k, &x, &y);
            assert!(
                (fast - oracle).abs() < 1e-9 * oracle.abs().max(1.0),
                "nu {nu}: {fast} vs {oracle}"
            );
        }
    }

    #[test]
    fn normalized_self_distance_is_zero() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let d = KernelDistance(Kdtw::new(0.125)).distance(&x, &x);
        assert!(d.abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn symmetric() {
        let x = [0.2, 1.1, -0.6, 0.4, 0.9];
        let y = [1.0, -0.3, 0.5, -1.2, 0.0];
        let k = Kdtw::new(0.125);
        let a = k.log_kernel_value(&x, &y);
        let b = k.log_kernel_value(&y, &x);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn log_space_survives_long_series() {
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.04).sin()).collect();
        let y: Vec<f64> = (0..500).map(|i| (i as f64 * 0.04 + 0.3).sin()).collect();
        let l = Kdtw::new(0.125).log_kernel_value(&x, &y);
        assert!(l.is_finite());
        let d = KernelDistance(Kdtw::new(0.125)).distance(&x, &y);
        assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {d}");
    }

    #[test]
    fn closer_series_have_smaller_normalized_distance() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let near: Vec<f64> = x.iter().map(|v| v + 0.05).collect();
        let far: Vec<f64> = (0..32).map(|i| ((i * 11 % 7) as f64) - 3.0).collect();
        let d = KernelDistance(Kdtw::new(0.125));
        assert!(d.distance(&x, &near) < d.distance(&x, &far));
    }

    #[test]
    fn warping_tolerated_better_than_rbf() {
        // A locally stretched bump: the alignment kernel should rate it
        // relatively closer than the lock-step RBF does.
        use crate::kernel::Rbf;
        let x: Vec<f64> = (0..48)
            .map(|i| (-((i as f64 - 24.0) / 5.0).powi(2) / 2.0).exp())
            .collect();
        let warped: Vec<f64> = (0..48)
            .map(|i| {
                let t = (i as f64 / 47.0).powf(1.3) * 47.0;
                let d = (t - 24.0) / 5.0;
                (-d * d / 2.0).exp()
            })
            .collect();
        let unrelated: Vec<f64> = (0..48).map(|i| ((i % 4) as f64) / 2.0 - 0.75).collect();
        let kd = KernelDistance(Kdtw::new(0.5));
        let rd = KernelDistance(Rbf::new(0.5));
        let k_ratio = kd.distance(&x, &warped) / kd.distance(&x, &unrelated).max(1e-12);
        let r_ratio = rd.distance(&x, &warped) / rd.distance(&x, &unrelated).max(1e-12);
        assert!(k_ratio < r_ratio, "kdtw {k_ratio} vs rbf {r_ratio}");
    }

    #[test]
    fn unequal_lengths_supported() {
        let x = [0.0, 1.0, 0.0];
        let y = [0.0, 0.5, 1.0, 0.5, 0.0];
        let l = Kdtw::new(0.125).log_kernel_value(&x, &y);
        assert!(l.is_finite());
    }
}
