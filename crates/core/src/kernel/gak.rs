//! The Global Alignment Kernel (Cuturi 2011).
//!
//! GAK sums the scores of *all* monotone alignments between two series,
//! where each aligned pair contributes the "geometrically divided"
//! Gaussian local kernel
//!
//! ```text
//! κ(a, b) = k(a, b) / (2 - k(a, b)),   k(a, b) = exp(-(a-b)^2 / (2σ^2))
//! ```
//!
//! (the division keeps the alignment kernel positive definite). The sum
//! over exponentially many alignments is computed by the DTW-style DP
//! `K[i][j] = κ(x_i, y_j) (K[i-1][j] + K[i][j-1] + K[i-1][j-1])`.
//!
//! The products of thousands of sub-unit local kernels underflow `f64`
//! almost immediately, so the DP runs in linear space with *per-row
//! rescaling*: whenever a row's maximum drifts out of a safe magnitude
//! band, the row is rescaled and the log of the factor accumulated. This
//! is ~6x faster than a per-cell log-sum-exp DP (one `exp` per cell
//! instead of three `exp` + two `ln`) while producing the same
//! `log k(x, y)` to full precision.

use crate::measure::Kernel;
use crate::workspace::Workspace;

/// GAK with Gaussian bandwidth multiplier γ.
///
/// Following Cuturi's recommendation, the effective bandwidth scales
/// with the series length: `σ = γ * sqrt(max(m, n))`. For z-normalized
/// series the median pointwise gap is O(1), so Table 4's γ grid
/// (0.01..=20) then spans from razor-sharp to near-flat local kernels —
/// interpreting γ as an *absolute* σ instead degenerates the kernel for
/// small grid values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gak {
    /// Bandwidth multiplier γ (Table 4's grid, 0.01..=20).
    pub sigma: f64,
}

impl Gak {
    /// Creates the global alignment kernel.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "GAK sigma must be positive, got {sigma}");
        Gak { sigma }
    }

    /// Log of the alignment kernel value (the quantity actually used for
    /// normalized comparisons; the raw value may be far below `f64`
    /// range).
    pub fn log_kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }
        let sigma_eff = self.sigma * (m.max(n) as f64).sqrt();
        let inv = 1.0 / (2.0 * sigma_eff * sigma_eff);

        // Linear-space rolling rows with cumulative log rescaling.
        let mut prev = vec![0.0f64; n + 1];
        let mut curr = vec![0.0f64; n + 1];
        prev[0] = 1.0;
        let mut log_scale = 0.0f64;

        for i in 1..=m {
            curr[0] = 0.0;
            let xi = x[i - 1];
            let mut row_max = 0.0f64;
            for j in 1..=n {
                let d = xi - y[j - 1];
                let k_local = (-d * d * inv).exp();
                let kappa = k_local / (2.0 - k_local);
                let v = kappa * (prev[j] + curr[j - 1] + prev[j - 1]);
                curr[j] = v;
                row_max = row_max.max(v);
            }
            // Rescale when the row drifts towards under/overflow.
            if row_max > 0.0 && !(1e-120..=1e120).contains(&row_max) {
                let f = 1.0 / row_max;
                for v in curr.iter_mut() {
                    *v *= f;
                }
                // prev is about to be discarded (it becomes this row), so
                // only the accumulated scale must track the change.
                log_scale += row_max.ln();
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        if prev[n] <= 0.0 {
            f64::NEG_INFINITY
        } else {
            prev[n].ln() + log_scale
        }
    }

    /// [`Gak::log_kernel`] with rolling rows drawn from `ws` instead of
    /// fresh allocations; bit-identical to the allocating path.
    pub fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }
        let sigma_eff = self.sigma * (m.max(n) as f64).sqrt();
        let inv = 1.0 / (2.0 * sigma_eff * sigma_eff);

        let (mut prev, mut curr) = ws.dp_rows2(n + 1);
        prev.fill(0.0);
        prev[0] = 1.0;
        let mut log_scale = 0.0f64;

        for i in 1..=m {
            curr[0] = 0.0;
            let xi = x[i - 1];
            let mut row_max = 0.0f64;
            for j in 1..=n {
                let d = xi - y[j - 1];
                let k_local = (-d * d * inv).exp();
                let kappa = k_local / (2.0 - k_local);
                let v = kappa * (prev[j] + curr[j - 1] + prev[j - 1]);
                curr[j] = v;
                row_max = row_max.max(v);
            }
            if row_max > 0.0 && !(1e-120..=1e120).contains(&row_max) {
                let f = 1.0 / row_max;
                for v in curr.iter_mut() {
                    *v *= f;
                }
                log_scale += row_max.ln();
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        if prev[n] <= 0.0 {
            f64::NEG_INFINITY
        } else {
            prev[n].ln() + log_scale
        }
    }
}

impl Kernel for Gak {
    fn name(&self) -> String {
        format!("GAK(γ={})", self.sigma)
    }

    /// The raw kernel value `exp(log k)` — may underflow for long series;
    /// the normalized-distance path goes through
    /// [`Kernel::log_kernel`], which is exact.
    fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        Gak::log_kernel(self, x, y).exp()
    }

    fn log_kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        Gak::log_kernel(self, x, y)
    }

    fn kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        Gak::log_kernel_ws(self, x, y, ws).exp()
    }

    fn log_kernel_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        Gak::log_kernel_ws(self, x, y, ws)
    }

    fn is_symmetric(&self) -> bool {
        // The per-row rescale triggers on *row* maxima, which transposing
        // the DP changes; values match only to rounding, not bit-for-bit.
        false
    }
}

/// Normalized GAK dissimilarity computed fully in log space:
/// `d = 1 - exp(log k(x,y) - (log k(x,x) + log k(y,y)) / 2)`.
pub fn gak_normalized_distance(gak: &Gak, x: &[f64], y: &[f64]) -> f64 {
    let lxy = gak.log_kernel(x, y);
    let lxx = gak.log_kernel(x, x);
    let lyy = gak.log_kernel(y, y);
    1.0 - (lxy - 0.5 * (lxx + lyy)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::log_add3;

    /// Reference log-sum-exp DP, kept as the oracle for the rescaled
    /// linear DP.
    fn log_kernel_logsumexp(gak: &Gak, x: &[f64], y: &[f64]) -> f64 {
        let (m, n) = (x.len(), y.len());
        let sigma_eff = gak.sigma * (m.max(n) as f64).sqrt();
        let inv = 1.0 / (2.0 * sigma_eff * sigma_eff);
        const NEG_INF: f64 = f64::NEG_INFINITY;
        let mut prev = vec![NEG_INF; n + 1];
        let mut curr = vec![NEG_INF; n + 1];
        prev[0] = 0.0;
        for i in 1..=m {
            curr[0] = NEG_INF;
            for j in 1..=n {
                let d = x[i - 1] - y[j - 1];
                let k_local = (-d * d * inv).exp();
                let log_kappa = k_local.ln() - (2.0 - k_local).ln();
                curr[j] = log_kappa + log_add3(prev[j], curr[j - 1], prev[j - 1]);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    #[test]
    fn rescaled_dp_matches_logsumexp_oracle() {
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        let y: Vec<f64> = (0..60)
            .map(|i| (i as f64 * 0.31 + 0.4).cos() * 1.5)
            .collect();
        for sigma in [0.05, 0.5, 1.0, 5.0] {
            let g = Gak::new(sigma);
            let fast = g.log_kernel(&x, &y);
            let oracle = log_kernel_logsumexp(&g, &x, &y);
            if fast == f64::NEG_INFINITY || oracle == f64::NEG_INFINITY {
                // Tiny sigma: every local kernel underflows to zero in
                // both implementations.
                assert_eq!(fast, oracle, "sigma {sigma}");
            } else {
                assert!(
                    (fast - oracle).abs() < 1e-7 * oracle.abs().max(1.0),
                    "sigma {sigma}: {fast} vs {oracle}"
                );
            }
        }
    }

    #[test]
    fn identical_series_have_maximal_normalized_similarity() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let d = gak_normalized_distance(&Gak::new(1.0), &x, &x);
        assert!(d.abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn normalized_similarity_is_at_most_one() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = (0..24).map(|i| ((i % 5) as f64) - 2.0).collect();
        let d = gak_normalized_distance(&Gak::new(1.0), &x, &y);
        assert!(d >= -1e-9, "d = {d}");
        assert!(d <= 1.0 + 1e-9);
    }

    #[test]
    fn log_space_survives_long_series() {
        // 400 points would underflow a direct product of local kernels.
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).sin()).collect();
        let y: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05 + 0.5).sin()).collect();
        let l = Gak::new(0.5).log_kernel(&x, &y);
        assert!(l.is_finite());
        let d = gak_normalized_distance(&Gak::new(0.5), &x, &y);
        assert!(d.is_finite() && d > 0.0 && d <= 1.0, "d = {d}");
    }

    #[test]
    fn warped_copy_is_closer_than_unrelated_series() {
        let x: Vec<f64> = (0..48)
            .map(|i| (-((i as f64 - 24.0) / 6.0).powi(2) / 2.0).exp())
            .collect();
        let warped: Vec<f64> = (0..48)
            .map(|i| {
                let t = (i as f64 / 47.0).powf(1.25) * 47.0;
                let d = (t - 24.0) / 6.0;
                (-d * d / 2.0).exp()
            })
            .collect();
        let noise: Vec<f64> = (0..48).map(|i| ((i * 7 % 11) as f64) / 5.0 - 1.0).collect();
        let g = Gak::new(0.5);
        let d_warp = gak_normalized_distance(&g, &x, &warped);
        let d_noise = gak_normalized_distance(&g, &x, &noise);
        assert!(d_warp < d_noise);
    }

    #[test]
    fn tiny_sigma_sharpens_discrimination() {
        let x = [0.0, 1.0, 0.0, -1.0];
        let y = [0.1, 0.9, 0.1, -0.9];
        let close_broad = gak_normalized_distance(&Gak::new(5.0), &x, &y);
        let close_sharp = gak_normalized_distance(&Gak::new(0.05), &x, &y);
        assert!(close_sharp > close_broad);
    }

    #[test]
    fn empty_input_conventions() {
        let g = Gak::new(1.0);
        assert_eq!(g.log_kernel(&[], &[]), 0.0);
        assert_eq!(g.log_kernel(&[], &[1.0]), f64::NEG_INFINITY);
    }
}
