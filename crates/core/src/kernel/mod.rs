//! The 4 kernel measures of Section 8.
//!
//! Kernel functions map series into a high-dimensional space implicitly;
//! positive semi-definiteness gives convex learning problems. For 1-NN
//! evaluation each kernel is turned into the normalized dissimilarity
//! `d(x, y) = 1 - k(x, y) / sqrt(k(x,x) k(y,y))` (the evaluation platform
//! caches the self-similarities).
//!
//! * [`Rbf`] — the lock-step Radial Basis Function baseline,
//! * [`Sink`] — the shift-invariant kernel summing `exp(γ · NCC_c)` over
//!   all shifts (Paparrizos & Franklin 2019),
//! * [`Gak`] — Cuturi's Global Alignment Kernel (elastic; log-space DP),
//! * [`Kdtw`] — Marteau & Gibet's regularized DTW kernel (elastic;
//!   log-space DP with the diagonal corrective term).

mod gak;
mod kdtw;
mod rbf;
mod sink;

pub use gak::{gak_normalized_distance, Gak};
pub use kdtw::Kdtw;
pub use rbf::Rbf;
pub use sink::Sink;

/// Numerically stable `log(exp(a) + exp(b))`.
#[inline]
pub(crate) fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Stable `log(exp(a) + exp(b) + exp(c))`.
#[inline]
#[cfg_attr(not(test), allow(dead_code))] // oracle for the rescaled DPs
pub(crate) fn log_add3(a: f64, b: f64, c: f64) -> f64 {
    log_add(log_add(a, b), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Distance, Kernel, KernelDistance};

    #[test]
    fn log_add_matches_direct_computation() {
        for (a, b) in [(0.0f64, 0.0f64), (-1.0, -2.0), (3.0, -3.0)] {
            let expected = (a.exp() + b.exp()).ln();
            assert!((log_add(a, b) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn log_add_handles_negative_infinity() {
        assert_eq!(log_add(f64::NEG_INFINITY, 1.5), 1.5);
        assert_eq!(log_add(1.5, f64::NEG_INFINITY), 1.5);
    }

    #[test]
    fn log_add_is_stable_for_extreme_magnitudes() {
        let v = log_add(-1000.0, -1000.0);
        assert!((v - (-1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
        let w = log_add3(-2000.0, -2000.0, -2000.0);
        assert!((w - (-2000.0 + 3f64.ln())).abs() < 1e-9);
    }

    fn znorm(x: &[f64]) -> Vec<f64> {
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let sd = (x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
            .sqrt()
            .max(1e-12);
        x.iter().map(|v| (v - mean) / sd).collect()
    }

    fn all_kernels() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(Rbf::new(0.25)),
            Box::new(Sink::new(5.0)),
            Box::new(Gak::new(1.0)),
            Box::new(Kdtw::new(0.125)),
        ]
    }

    #[test]
    fn the_paper_evaluates_exactly_4_kernels() {
        assert_eq!(all_kernels().len(), 4);
    }

    #[test]
    fn normalized_kernel_distance_is_zero_for_identical_series() {
        let x = znorm(&[0.3, 1.1, -0.4, 0.9, -1.6, 0.2, 0.8, -1.3]);
        for k in all_kernels() {
            let name = k.name();
            let d = KernelDistance(k).distance(&x, &x);
            assert!(d.abs() < 1e-9, "{name}: d(x,x) = {d}");
        }
    }

    #[test]
    fn normalized_kernel_distance_separates_different_series() {
        let x = znorm(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0, -1.0]);
        let y = znorm(&[3.0, -2.0, 3.0, -2.0, 3.0, -2.0, 3.0, -2.0]);
        for k in all_kernels() {
            let name = k.name();
            let d = KernelDistance(k).distance(&x, &y);
            assert!(d > 1e-4, "{name}: d(x,y) = {d} too small");
            assert!(d.is_finite(), "{name}");
        }
    }

    #[test]
    fn kernels_are_symmetric() {
        let x = znorm(&[0.4, -0.9, 1.2, 0.1, -1.5, 0.7]);
        let y = znorm(&[1.0, 0.3, -0.8, 1.4, -0.2, -1.7]);
        for k in all_kernels() {
            let a = k.kernel(&x, &y);
            let b = k.kernel(&y, &x);
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{} not symmetric: {a} vs {b}",
                k.name()
            );
        }
    }
}
