//! The Radial Basis Function kernel — the lock-step kernel baseline.

use crate::measure::Kernel;

/// RBF kernel: `k(x, y) = exp(-γ ||x - y||^2)`.
///
/// The paper finds RBF significantly *worse* than NCC_c — it inherits
/// ED's blindness to shift and warping, and its exponential decay
/// compresses distant neighbours together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rbf {
    /// Bandwidth γ (Table 4 tunes over `2^-15 .. 2^0`).
    pub gamma: f64,
}

impl Rbf {
    /// Creates the RBF kernel.
    ///
    /// # Panics
    /// Panics if `gamma` is not strictly positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "RBF gamma must be positive, got {gamma}");
        Rbf { gamma }
    }
}

impl Kernel for Rbf {
    fn name(&self) -> String {
        format!("RBF(γ={})", self.gamma)
    }

    fn kernel(&self, x: &[f64], y: &[f64]) -> f64 {
        let sq: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
        (-self.gamma * sq).exp()
    }

    fn self_kernel(&self, _x: &[f64]) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_kernel_is_one() {
        let k = Rbf::new(0.5);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(k.self_kernel(&x), 1.0);
        assert!((k.kernel(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_decays_with_distance() {
        let k = Rbf::new(1.0);
        let x = [0.0, 0.0];
        let near = [0.1, 0.0];
        let far = [3.0, 0.0];
        assert!(k.kernel(&x, &near) > k.kernel(&x, &far));
    }

    #[test]
    fn hand_value() {
        let k = Rbf::new(0.5);
        // ||x - y||^2 = 4.
        let v = k.kernel(&[0.0, 0.0], &[2.0, 0.0]);
        assert!((v - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let k = Rbf::new(2.0f64.powi(-10));
        let x = [5.0, -5.0, 5.0];
        let y = [-5.0, 5.0, -5.0];
        let v = k.kernel(&x, &y);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_gamma_panics() {
        let _ = Rbf::new(0.0);
    }
}
