//! Subsequence similarity search: MASS and the matrix profile.
//!
//! The paper's introduction motivates distance measures through the
//! tasks they fuel — querying, motif discovery, anomaly detection — and
//! cites Mueen's MASS as "the fastest similarity search algorithm for
//! time series subsequences under Euclidean distance". This module
//! implements that stack on top of the workspace's FFT substrate:
//!
//! * [`sliding_mean_std`] — O(n) rolling statistics,
//! * [`mass`] — the z-normalized Euclidean *distance profile* of a query
//!   against every window of a long series, in O(n log n),
//! * [`matrix_profile`] — the all-windows self-join (each window's
//!   distance to its best non-trivial match), the primitive behind motif
//!   and discord discovery,
//! * [`top_motif`] / [`top_discord`] — the classic consumers.

use tsdist_fft::cross_correlation;

/// Rolling mean and (population) standard deviation of every length-`w`
/// window of `x`. Returns `n - w + 1` pairs.
///
/// # Panics
/// Panics if `w == 0` or `w > x.len()`.
pub fn sliding_mean_std(x: &[f64], w: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(w > 0, "window must be positive");
    assert!(w <= x.len(), "window longer than the series");
    let n = x.len();
    let wf = w as f64;
    let mut means = Vec::with_capacity(n - w + 1);
    let mut stds = Vec::with_capacity(n - w + 1);
    let mut sum: f64 = x[..w].iter().sum();
    let mut sum_sq: f64 = x[..w].iter().map(|v| v * v).sum();
    for i in 0..=(n - w) {
        if i > 0 {
            sum += x[i + w - 1] - x[i - 1];
            sum_sq += x[i + w - 1] * x[i + w - 1] - x[i - 1] * x[i - 1];
        }
        let mean = sum / wf;
        let var = (sum_sq / wf - mean * mean).max(0.0);
        means.push(mean);
        stds.push(var.sqrt());
    }
    (means, stds)
}

/// MASS: the z-normalized Euclidean distance between `query` and every
/// length-`|query|` window of `series`, computed with one FFT
/// cross-correlation. Output length is `series.len() - query.len() + 1`.
///
/// Constant windows (zero variance) are reported at the maximum possible
/// z-normalized distance `sqrt(4w)` unless the query is constant too.
///
/// # Panics
/// Panics if the query is empty or longer than the series.
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let w = query.len();
    assert!(w > 0, "empty query");
    assert!(w <= series.len(), "query longer than the series");
    let wf = w as f64;

    let q_mean = query.iter().sum::<f64>() / wf;
    let q_var = query
        .iter()
        .map(|v| (v - q_mean) * (v - q_mean))
        .sum::<f64>()
        / wf;
    let q_std = q_var.sqrt();
    let query_constant = q_std <= 1e-12;

    // Dot products of the query against every window: the shifts
    // 0..=(n - w) of the cross-correlation sequence.
    let cc = cross_correlation(series, query);
    let (means, stds) = sliding_mean_std(series, w);
    let n_windows = series.len() - w + 1;

    let mut out = Vec::with_capacity(n_windows);
    for i in 0..n_windows {
        // Shift s = i corresponds to index s + (w - 1) in our convention.
        let qt = cc[i + w - 1];
        let window_constant = stds[i] <= 1e-12;
        let d2 = match (query_constant, window_constant) {
            (true, true) => 0.0,
            (true, false) | (false, true) => 4.0 * wf, // max distance
            (false, false) => {
                let corr = (qt - wf * q_mean * means[i]) / (wf * q_std * stds[i]);
                (2.0 * wf * (1.0 - corr.clamp(-1.0, 1.0))).max(0.0)
            }
        };
        out.push(d2.sqrt());
    }
    out
}

/// The matrix profile of `series` for window length `w`: for each window,
/// the z-normalized ED to its nearest *non-trivial* match (exclusion zone
/// `w / 2` around the window itself) and that match's index.
///
/// This is the O(n² log n) MASS-per-window formulation (STAMP without
/// sampling) — ample for the workloads in this repository.
///
/// # Panics
/// Panics if `w < 2` or fewer than two non-overlapping windows exist.
pub fn matrix_profile(series: &[f64], w: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(w >= 2, "window too short");
    assert!(
        series.len() >= 2 * w,
        "need at least two non-overlapping windows"
    );
    let n_windows = series.len() - w + 1;
    let exclusion = (w / 2).max(1);

    let mut profile = vec![f64::INFINITY; n_windows];
    let mut index = vec![0usize; n_windows];
    for i in 0..n_windows {
        let query = &series[i..i + w];
        let dists = mass(query, series);
        let mut best = f64::INFINITY;
        let mut best_j = usize::MAX;
        for (j, &d) in dists.iter().enumerate() {
            if j.abs_diff(i) <= exclusion {
                continue; // trivial match
            }
            if d < best {
                best = d;
                best_j = j;
            }
        }
        profile[i] = best;
        index[i] = best_j;
    }
    (profile, index)
}

/// The top motif: the pair of windows with the smallest matrix-profile
/// value, as `(i, j, distance)`.
pub fn top_motif(series: &[f64], w: usize) -> (usize, usize, f64) {
    let (profile, index) = matrix_profile(series, w);
    // `matrix_profile` asserts `series.len() >= 2 * w`, so the profile
    // always has at least one window.
    let mut i = 0usize;
    for (j, d) in profile.iter().enumerate().skip(1) {
        if d.total_cmp(&profile[i]).is_lt() {
            i = j;
        }
    }
    (i, index[i], profile[i])
}

/// The top discord: the window with the *largest* matrix-profile value
/// (the subsequence farthest from everything else), as `(i, distance)`.
pub fn top_discord(series: &[f64], w: usize) -> (usize, f64) {
    let (profile, _) = matrix_profile(series, w);
    let mut i = 0usize;
    for (j, d) in profile.iter().enumerate().skip(1) {
        if d.total_cmp(&profile[i]).is_gt() {
            i = j;
        }
    }
    (i, profile[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn znorm_ed(a: &[f64], b: &[f64]) -> f64 {
        let z = |x: &[f64]| -> Vec<f64> {
            let n = x.len() as f64;
            let mean = x.iter().sum::<f64>() / n;
            let sd = (x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
                .sqrt()
                .max(1e-300);
            x.iter().map(|v| (v - mean) / sd).collect()
        };
        let (za, zb) = (z(a), z(b));
        za.iter()
            .zip(&zb)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn sliding_stats_match_direct_computation() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0];
        let w = 3;
        let (means, stds) = sliding_mean_std(&x, w);
        assert_eq!(means.len(), 4);
        for i in 0..4 {
            let window = &x[i..i + w];
            let mean = window.iter().sum::<f64>() / w as f64;
            let var = window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w as f64;
            assert!((means[i] - mean).abs() < 1e-12);
            assert!((stds[i] - var.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_matches_naive_znormalized_ed() {
        let series: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7).sin() + (i as f64 * 0.13).cos() * 0.5)
            .collect();
        let query = series[10..22].to_vec();
        let dists = mass(&query, &series);
        assert_eq!(dists.len(), 64 - 12 + 1);
        for (i, &d) in dists.iter().enumerate() {
            let naive = znorm_ed(&query, &series[i..i + 12]);
            assert!(
                (d - naive).abs() < 1e-6,
                "window {i}: mass {d} vs naive {naive}"
            );
        }
        // The query's own position is an exact match.
        assert!(dists[10] < 1e-6);
    }

    #[test]
    fn mass_handles_constant_windows() {
        let mut series = vec![0.5; 40];
        for (i, v) in series.iter_mut().enumerate().skip(20).take(10) {
            *v = (i as f64 * 0.9).sin();
        }
        let query: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let dists = mass(&query, &series);
        assert!(dists.iter().all(|d| d.is_finite()));
        // Constant windows are maximally distant from a varying query.
        assert!(dists[0] >= dists.iter().cloned().fold(f64::INFINITY, f64::min));
    }

    #[test]
    fn matrix_profile_finds_planted_motif() {
        // A noisy-ish base with the same pattern planted at 10 and 60.
        let mut series: Vec<f64> = (0..100).map(|i| ((i * 37 % 19) as f64) / 7.0).collect();
        let pattern: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).sin() * 3.0).collect();
        series[10..22].copy_from_slice(&pattern);
        series[60..72].copy_from_slice(&pattern);

        let (i, j, d) = top_motif(&series, 12);
        let pair = if i < j { (i, j) } else { (j, i) };
        assert_eq!(pair, (10, 60), "motif at the planted positions");
        assert!(d < 1e-6, "planted copies are exact: d = {d}");
    }

    #[test]
    fn matrix_profile_finds_planted_discord() {
        // A periodic signal with one corrupted cycle.
        let period = 16;
        let mut series: Vec<f64> = (0..10 * period)
            .map(|i| (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin())
            .collect();
        for (i, v) in series.iter_mut().enumerate().skip(5 * period).take(period) {
            *v = 0.1 * *v + ((i * 7 % 5) as f64) / 2.0;
        }
        let (i, d) = top_discord(&series, period);
        assert!(
            i.abs_diff(5 * period) <= period,
            "discord at {i}, expected near {}",
            5 * period
        );
        assert!(d > 1.0);
    }

    #[test]
    fn exclusion_zone_prevents_trivial_matches() {
        let series: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let (profile, index) = matrix_profile(&series, 8);
        for (i, &j) in index.iter().enumerate() {
            assert!(i.abs_diff(j) > 4, "window {i} matched trivially at {j}");
        }
        assert!(profile.iter().all(|d| d.is_finite()));
    }

    #[test]
    #[should_panic(expected = "two non-overlapping")]
    fn too_short_series_panics() {
        let _ = matrix_profile(&[1.0, 2.0, 3.0], 2);
    }
}
