//! The Move–Split–Merge distance (Stefan, Athitsos & Das 2013).
//!
//! MSM edits one series into the other with three operations — move
//! (substitute, cost = value change), split, and merge (both cost the
//! constant `c`) — and, unlike DTW/LCSS/EDR, is a *metric*. It is one of
//! the two measures (with TWE) that the paper finds significantly better
//! than DTW, debunking M4.

use crate::measure::Distance;
use crate::workspace::Workspace;

/// MSM distance with split/merge cost `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Msm {
    /// The split/merge cost (Table 4 tunes `c` over
    /// `{0.01, ..., 500}`; the paper's unsupervised pick is `c = 0.5`).
    pub cost: f64,
}

impl Msm {
    /// Creates MSM with the given split/merge cost.
    ///
    /// # Panics
    /// Panics if `cost` is negative.
    pub fn new(cost: f64) -> Self {
        assert!(cost >= 0.0, "MSM cost must be non-negative, got {cost}");
        Msm { cost }
    }

    /// The split/merge cost function C(new, adjacent, opposite):
    /// `c` when `new` lies between its neighbours, otherwise `c` plus the
    /// distance to the nearer neighbour.
    #[inline]
    fn c(&self, new: f64, adjacent: f64, opposite: f64) -> f64 {
        if (adjacent <= new && new <= opposite) || (adjacent >= new && new >= opposite) {
            self.cost
        } else {
            self.cost + (new - adjacent).abs().min((new - opposite).abs())
        }
    }
}

impl Distance for Msm {
    fn name(&self) -> String {
        format!("MSM(c={})", self.cost)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }

        let mut prev = vec![0.0f64; n];
        let mut curr = vec![0.0f64; n];

        // Row 0.
        prev[0] = (x[0] - y[0]).abs();
        for j in 1..n {
            prev[j] = prev[j - 1] + self.c(y[j], y[j - 1], x[0]);
        }

        for i in 1..m {
            curr[0] = prev[0] + self.c(x[i], x[i - 1], y[0]);
            for j in 1..n {
                let move_cost = prev[j - 1] + (x[i] - y[j]).abs();
                let split_x = prev[j] + self.c(x[i], x[i - 1], y[j]);
                let merge_y = curr[j - 1] + self.c(y[j], x[i], y[j - 1]);
                curr[j] = move_cost.min(split_x).min(merge_y);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n - 1]
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // Row-major, deliberately NOT the wavefront: the branchy cost
        // function `c` blocks vectorization either way, so diagonal order
        // buys no lanes while its reversed-`y` gather and boundary
        // branches cost ~2x wall-clock (measured in bench_prune). The
        // wavefront schedule lives on as `wavefront_ws`, pinned
        // bit-identical by the tests, for when the recurrence is ever
        // made branchless.
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }

        let (mut prev, mut curr) = ws.dp_rows2(n);

        // Row 0.
        prev[0] = (x[0] - y[0]).abs();
        for j in 1..n {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "branchy threshold recurrence; the comparison chain, not the bounds check, dominates and blocks vectorization")
            prev[j] = prev[j - 1] + self.c(y[j], y[j - 1], x[0]);
        }

        for i in 1..m {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "branchy threshold recurrence; the comparison chain, not the bounds check, dominates and blocks vectorization")
            curr[0] = prev[0] + self.c(x[i], x[i - 1], y[0]);
            for j in 1..n {
                let move_cost = prev[j - 1] + (x[i] - y[j]).abs();
                let split_x = prev[j] + self.c(x[i], x[i - 1], y[j]);
                let merge_y = curr[j - 1] + self.c(y[j], x[i], y[j - 1]);
                curr[j] = move_cost.min(split_x).min(merge_y);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n - 1]
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        const INF: f64 = f64::INFINITY;
        if cutoff.is_nan() || cutoff <= 0.0 {
            return INF;
        }
        let (mut prev, mut curr) = ws.dp_rows2(n);

        // Row 0 is exact; `c(..) >= 0` keeps it non-decreasing, so the
        // live window is the prefix `[0, p_hi]` (or the row is dead).
        prev[0] = (x[0] - y[0]).abs();
        let mut p_hi = 0usize;
        let mut row0_live = prev[0] < cutoff;
        for j in 1..n {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
            prev[j] = prev[j - 1] + self.c(y[j], y[j - 1], x[0]);
            if prev[j] < cutoff {
                p_hi = j;
                row0_live = true;
            }
        }
        if !row0_live {
            return INF;
        }
        let mut p_lo = 0usize;
        for i in 1..m {
            curr.fill(INF);
            // Column 0 (split chain) stays exact so liveness can re-enter
            // from the left.
            // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
            curr[0] = prev[0] + self.c(x[i], x[i - 1], y[0]);
            let mut live_lo = usize::MAX;
            let mut live_hi = 0usize;
            if curr[0] < cutoff {
                live_lo = 0;
            }
            let start = if live_lo == 0 { 1 } else { p_lo.max(1) };
            for j in start..n {
                if j > p_hi + 1 && curr[j - 1] >= cutoff {
                    break;
                }
                let move_cost = prev[j - 1] + (x[i] - y[j]).abs();
                let split_x = prev[j] + self.c(x[i], x[i - 1], y[j]);
                let merge_y = curr[j - 1] + self.c(y[j], x[i], y[j - 1]);
                let v = move_cost.min(split_x).min(merge_y);
                curr[j] = v;
                if v < cutoff {
                    if live_lo == usize::MAX {
                        live_lo = j;
                    }
                    live_hi = j;
                }
            }
            if live_lo == usize::MAX {
                return INF;
            }
            p_lo = live_lo;
            p_hi = live_hi;
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n - 1]
    }
}

impl Msm {
    /// Anti-diagonal wavefront schedule for the MSM recurrence, kept as a
    /// bit-identical alternative kernel (see the `distance_ws` note for
    /// why it is not the dispatch target). Cells on diagonal `d = i + j`,
    /// indexed by `i`, depend only on the two previous diagonals; per-cell
    /// dataflow — cost expressions and `min` operand order — matches the
    /// row-major kernel exactly.
    pub fn wavefront_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        let (mut p2, mut p1, mut cur, _) = ws.diag_scratch(m, 0);

        // Diagonal 0 is the single corner cell.
        p1[0] = (x[0] - y[0]).abs();
        for d in 1..=(m + n - 2) {
            // Row-0 cell (0, d): the same chain as the row-major row 0,
            // one term per diagonal.
            if d < n {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "diagonal index arithmetic (j = d - i) and O(1) boundary cells have no slice-friendly form; every index is proven in-bounds by the diagonal-range algebra")
                cur[0] = p1[0] + self.c(y[d], y[d - 1], x[0]);
            }
            // Column-0 cell (d, 0): the split chain down column 0.
            if d < m {
                cur[d] = p1[d - 1] + self.c(x[d], x[d - 1], y[0]);
            }
            let lo = 1.max(d.saturating_sub(n - 1));
            let hi = (m - 1).min(d - 1);
            for i in lo..=hi {
                let j = d - i;
                let move_cost = p2[i - 1] + (x[i] - y[j]).abs();
                let split_x = p1[i - 1] + self.c(x[i], x[i - 1], y[j]);
                let merge_y = p1[i] + self.c(y[j], x[i], y[j - 1]);
                cur[i] = move_cost.min(split_x).min(merge_y);
            }
            std::mem::swap(&mut p2, &mut p1);
            std::mem::swap(&mut p1, &mut cur);
        }
        p1[m - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 5] = [0.0, 1.0, 2.0, 1.0, 0.0];

    #[test]
    fn identical_series_zero() {
        assert_eq!(Msm::new(0.5).distance(&X, &X), 0.0);
    }

    #[test]
    fn symmetric() {
        let y = [0.5, 1.5, 1.0, 0.0, 2.0];
        let m = Msm::new(0.5);
        assert!((m.distance(&X, &y) - m.distance(&y, &X)).abs() < 1e-12);
    }

    #[test]
    fn single_point_is_absolute_difference() {
        assert_eq!(Msm::new(1.0).distance(&[3.0], &[5.5]), 2.5);
    }

    #[test]
    fn triangle_inequality_holds() {
        // MSM is a metric; verify on a grid of small examples.
        let series = [
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 3.0, 0.0],
        ];
        let m = Msm::new(0.3);
        for a in &series {
            for b in &series {
                for c in &series {
                    let ab = m.distance(a, b);
                    let bc = m.distance(b, c);
                    let ac = m.distance(a, c);
                    assert!(ac <= ab + bc + 1e-9, "triangle violated");
                }
            }
        }
    }

    #[test]
    fn split_merge_costs_bound_stretch() {
        // y repeats a value of x: one split (cost c) suffices.
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 1.0, 2.0];
        let c = 0.25;
        let d = Msm::new(c).distance(&x, &y);
        assert!((d - c).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn higher_cost_penalizes_warping_more() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 1.0, 2.0]; // needs one stretch
        let cheap = Msm::new(0.01).distance(&x, &y);
        let pricey = Msm::new(10.0).distance(&x, &y);
        assert!(cheap < pricey);
    }

    #[test]
    fn unequal_lengths_supported() {
        let d = Msm::new(0.5).distance(&[1.0, 2.0], &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let _ = Msm::new(-1.0);
    }

    #[test]
    fn wavefront_schedule_is_bit_identical_to_the_dispatch_kernel() {
        let mut ws = Workspace::default();
        let d = Msm::new(0.5);
        for (m, n) in [(1, 1), (1, 9), (7, 7), (9, 1), (17, 23), (64, 64)] {
            let x: Vec<f64> = (0..m)
                .map(|i| ((i * 37 + 11) % 19) as f64 * 0.3 - 2.0)
                .collect();
            let y: Vec<f64> = (0..n)
                .map(|i| ((i * 53 + 5) % 23) as f64 * 0.2 - 1.5)
                .collect();
            let row_major = d.distance_ws(&x, &y, &mut ws);
            let wave = d.wavefront_ws(&x, &y, &mut ws);
            assert_eq!(row_major.to_bits(), wave.to_bits(), "m={m} n={n}");
        }
    }
}
