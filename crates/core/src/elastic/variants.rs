//! Further elastic-measure variants the paper discusses in Section 7:
//! the Complexity-Invariant Distance (CID) weighting scheme and the
//! Itakura-parallelogram band shape. Together with DDTW and WDTW (in
//! [`super::dtw`]) these are the "extensions that can potentially be used
//! in combination with all elastic measures" that the paper excludes from
//! its main grids to avoid a parameter explosion; we provide them for the
//! ablation benches.

use crate::measure::Distance;
use crate::workspace::Workspace;

/// Complexity-Invariant Distance (Batista et al. 2014): scales any base
/// distance by the ratio of the two series' complexity estimates,
///
/// ```text
/// CID(x, y) = d(x, y) * max(CE(x), CE(y)) / min(CE(x), CE(y))
/// CE(x) = sqrt(sum (x_{i+1} - x_i)^2)
/// ```
///
/// compensating for the bias of raw distances towards simple (smooth)
/// series.
pub struct Cid<D: Distance> {
    inner: D,
}

impl<D: Distance> Cid<D> {
    /// Wraps `inner` with the complexity correction.
    pub fn new(inner: D) -> Self {
        Cid { inner }
    }

    /// The complexity estimate `CE(x)`.
    pub fn complexity(x: &[f64]) -> f64 {
        x.windows(2)
            .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
            .sum::<f64>()
            .sqrt()
    }
}

impl<D: Distance> Distance for Cid<D> {
    fn name(&self) -> String {
        format!("CID({})", self.inner.name())
    }

    fn lanes_hint(&self) -> usize {
        // The complexity correction is O(n) scalar work; the inner
        // measure dominates, so report its vectorization.
        self.inner.lanes_hint()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let d = self.inner.distance(x, y);
        let cx = Self::complexity(x);
        let cy = Self::complexity(y);
        let (hi, lo) = if cx >= cy { (cx, cy) } else { (cy, cx) };
        if lo <= f64::EPSILON {
            // A constant series has zero complexity; fall back to the raw
            // distance rather than dividing by zero.
            return d;
        }
        d * hi / lo
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let d = self.inner.distance_ws(x, y, ws);
        let cx = Self::complexity(x);
        let cy = Self::complexity(y);
        let (hi, lo) = if cx >= cy { (cx, cy) } else { (cy, cx) };
        if lo <= f64::EPSILON {
            return d;
        }
        d * hi / lo
    }

    fn is_symmetric(&self) -> bool {
        // The complexity correction is symmetric; symmetry hinges on the
        // wrapped measure.
        self.inner.is_symmetric()
    }
}

/// DTW constrained by the Itakura parallelogram instead of the
/// Sakoe–Chiba band: the warping path must stay inside a parallelogram
/// whose maximum local slope is `max_slope` (classically 2), pinching the
/// admissible region at both endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItakuraDtw {
    /// Maximum local slope of the warping path (must be > 1).
    pub max_slope: f64,
}

impl ItakuraDtw {
    /// Itakura DTW with the given maximum slope.
    ///
    /// # Panics
    /// Panics if `max_slope <= 1`.
    pub fn new(max_slope: f64) -> Self {
        assert!(
            max_slope > 1.0,
            "Itakura slope must exceed 1, got {max_slope}"
        );
        ItakuraDtw { max_slope }
    }

    /// Whether cell `(i, j)` (1-based) lies inside the parallelogram for
    /// lengths `m`, `n`: the path from `(1,1)` to `(m,n)` must keep its
    /// slope within `[1/s, s]` on both legs.
    fn inside(&self, i: usize, j: usize, m: usize, n: usize) -> bool {
        let (i, j, m, n) = (i as f64, j as f64, m as f64, n as f64);
        let s = self.max_slope;
        let from_start_ok = (j - 1.0) <= s * (i - 1.0) && (j - 1.0) >= (i - 1.0) / s;
        let to_end_ok = (n - j) <= s * (m - i) && (n - j) >= (m - i) / s;
        from_start_ok && to_end_ok
    }
}

impl Distance for ItakuraDtw {
    fn name(&self) -> String {
        format!("DTW-Itakura(s={})", self.max_slope)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        const INF: f64 = f64::INFINITY;
        let mut prev = vec![INF; n + 1];
        let mut curr = vec![INF; n + 1];
        prev[0] = 0.0;
        for i in 1..=m {
            curr.fill(INF);
            for j in 1..=n {
                if !self.inside(i, j, m, n) {
                    continue;
                }
                let d = x[i - 1] - y[j - 1];
                let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
                if best.is_finite() {
                    curr[j] = d * d + best;
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        // The parallelogram always admits the diagonal-ish path, but for
        // extreme length ratios it can pinch shut; fall back to the
        // unconstrained value rather than returning infinity.
        if prev[n].is_finite() {
            prev[n]
        } else {
            super::dtw::dtw_banded(x, y, m.max(n))
        }
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        const INF: f64 = f64::INFINITY;
        let result = {
            let (mut prev, mut curr) = ws.dp_rows2(n + 1);
            prev.fill(INF);
            prev[0] = 0.0;
            for i in 1..=m {
                curr.fill(INF);
                for j in 1..=n {
                    if !self.inside(i, j, m, n) {
                        continue;
                    }
                    // tsdist-lint: allow(hot-path-bounds-check, reason = "Itakura-parallelogram mask makes every cell conditional; indexing is inherent and bounded by the mask clamp")
                    let d = x[i - 1] - y[j - 1];
                    let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
                    if best.is_finite() {
                        curr[j] = d * d + best;
                    }
                }
                std::mem::swap(&mut prev, &mut curr);
            }
            prev[n]
        };
        if result.is_finite() {
            result
        } else {
            super::dtw::dtw_banded_ws(x, y, m.max(n), ws)
        }
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY || x.len() != y.len() {
            // Unequal lengths can pinch the parallelogram shut, which the
            // exact path resolves with an unconstrained-DTW fallback — a
            // pruned INF must not be mistaken for a pinch, so only the
            // equal-length case (whose diagonal is always admissible, and
            // therefore never falls back) is pruned.
            return self.distance_ws(x, y, ws);
        }
        let m = x.len();
        let n = y.len();
        if m == 0 {
            return 0.0;
        }
        const INF: f64 = f64::INFINITY;
        if cutoff.is_nan() || cutoff <= 0.0 {
            return INF;
        }
        let (mut prev, mut curr) = ws.dp_rows2(n + 1);
        prev.fill(INF);
        prev[0] = 0.0;
        let (mut p_lo, mut p_hi) = (0usize, 0usize);
        for i in 1..=m {
            curr.fill(INF);
            let start = p_lo.max(1);
            let mut live_lo = usize::MAX;
            let mut live_hi = 0usize;
            for j in start..=n {
                if j > p_hi + 1 && curr[j - 1] >= cutoff {
                    break;
                }
                if !self.inside(i, j, m, n) {
                    continue;
                }
                // tsdist-lint: allow(hot-path-bounds-check, reason = "Itakura-parallelogram mask makes every cell conditional; indexing is inherent and bounded by the mask clamp")
                let d = x[i - 1] - y[j - 1];
                let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
                if best.is_finite() {
                    let v = d * d + best;
                    curr[j] = v;
                    if v < cutoff {
                        if live_lo == usize::MAX {
                            live_lo = j;
                        }
                        live_hi = j;
                    }
                }
            }
            if live_lo == usize::MAX {
                return INF;
            }
            p_lo = live_lo;
            p_hi = live_hi;
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::Dtw;
    use crate::lockstep::Euclidean;

    #[test]
    fn cid_equals_base_distance_for_equal_complexity() {
        let x = [0.0, 1.0, 0.0, 1.0];
        let y = [1.0, 0.0, 1.0, 0.0];
        let cid = Cid::new(Euclidean);
        // Same complexity: correction factor 1.
        use crate::measure::Distance as _;
        assert!((cid.distance(&x, &y) - Euclidean.distance(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn cid_penalizes_complexity_mismatch() {
        let smooth = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
        let jagged = [0.0, 0.5, 0.0, 0.5, 0.0, 0.5];
        let flatish = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55];
        let cid = Cid::new(Euclidean);
        // smooth-vs-jagged gets inflated relative to smooth-vs-flatish.
        let ratio_cid = cid.distance(&smooth, &jagged) / cid.distance(&smooth, &flatish);
        let ratio_ed = Euclidean.distance(&smooth, &jagged) / Euclidean.distance(&smooth, &flatish);
        assert!(ratio_cid > ratio_ed);
    }

    #[test]
    fn cid_handles_constant_series() {
        let c = [2.0; 5];
        let x = [0.0, 1.0, 2.0, 1.0, 0.0];
        let cid = Cid::new(Euclidean);
        assert!(cid.distance(&c, &x).is_finite());
    }

    #[test]
    fn complexity_estimate_matches_formula() {
        let x = [0.0, 3.0, 3.0, 0.0];
        // diffs: 3, 0, -3 -> sqrt(18)
        assert!((Cid::<Euclidean>::complexity(&x) - 18f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn itakura_zero_for_identical() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let d = ItakuraDtw::new(2.0).distance(&x, &x);
        assert!(d.abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn itakura_is_at_least_unconstrained_dtw() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5 + 0.7).cos()).collect();
        let constrained = ItakuraDtw::new(2.0).distance(&x, &y);
        let free = Dtw::unconstrained().distance(&x, &y);
        assert!(constrained >= free - 1e-9);
    }

    #[test]
    fn itakura_pinches_endpoints_more_than_sakoe_chiba() {
        // A pattern shifted right: the parallelogram forbids large warps
        // near the endpoints, so Itakura should cost at least as much as
        // a generous Sakoe-Chiba band.
        let x: Vec<f64> = (0..32).map(|i| if i < 4 { 3.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..32).map(|i| if i >= 28 { 3.0 } else { 0.0 }).collect();
        let itakura = ItakuraDtw::new(2.0).distance(&x, &y);
        let wide_band = Dtw::unconstrained().distance(&x, &y);
        assert!(itakura >= wide_band - 1e-9);
    }

    #[test]
    fn itakura_finite_on_unequal_lengths() {
        let x = [0.0, 1.0, 2.0, 1.0];
        let y = [0.0, 0.5, 1.0, 1.5, 2.0, 1.0, 0.5];
        assert!(ItakuraDtw::new(2.0).distance(&x, &y).is_finite());
    }
}
