//! Anti-diagonal wavefront layouts for the banded DP kernels.
//!
//! A row-major DTW sweep carries a loop dependency through `curr[j - 1]`:
//! every cell waits on its left neighbour, so the inner loop runs at the
//! latency of one `min`-chain + `add` per cell. Sweeping *anti-diagonals*
//! (`d = i + j`) removes that edge — every cell on a diagonal depends
//! only on the two *previous* diagonals — so the inner loop is a pure
//! element-wise map over contiguous scratch rows that the compiler can
//! vectorize and the CPU can overlap.
//!
//! ## Bit-compatibility with the row-major kernels
//!
//! Cell values are **bit-identical** to [`super::dtw::dtw_banded_ws`]:
//! the cost expression (`diff * diff`, or `w * diff * diff` for WDTW) and
//! the `min` operand order (`diag.min(top).min(left)`) are preserved
//! exactly, and `f64::min` over non-NaN operands is order-insensitive in
//! value (local costs are `>= 0`, so `-0.0` never appears). Only the
//! *schedule* changes, never the per-cell dataflow. The `ws_equivalence`
//! and `wavefront` test suites pin this down.
//!
//! ## Coordinates
//!
//! Diagonal `d` holds cells `(i, j = d - i)` of the `(m+1) x (n+1)` DP
//! matrix, stored indexed by `i` in rows of length `m + 1`. With the
//! Sakoe–Chiba band `|i - j| <= band` the in-band index range on diagonal
//! `d` is
//!
//! ```text
//! lo(d) = max(1, d - n, ceil((d - band) / 2))
//! hi(d) = min(m, d - 1, floor((d + band) / 2))
//! ```
//!
//! `lo` is non-decreasing in `d` and `hi` grows by at most one per step
//! (each clamp component does), so INF-filling the halo `[lo-1, hi+1]`
//! on every diagonal covers every read any later diagonal makes of this
//! one — including the one-cell gaps of empty band-0 diagonals. `y` is
//! copied once in reverse (`yr[k] = y[n-1-k]`) so both series are read
//! *forward* along a diagonal: `y[j-1] = yr[n - d + i]`.
//!
//! ## Pruned variant
//!
//! [`dtw_wavefront_pruned`] keeps the EAPruned live-window idea in
//! diagonal space. A warping path advances `d` by 1 (step) or 2
//! (diagonal move), so it can skip *one* diagonal but never two:
//! abandoning is admissible exactly when the live windows of **both**
//! previous diagonals are empty. Cells worth computing are those with a
//! potentially-live predecessor,
//! `[min(l1_lo, l2_lo + 1), max(l1_hi + 1, l2_hi + 1)]` intersected with
//! the band range; everything else on the diagonal has only dead
//! predecessors, hence a true value `>= cutoff`, for which the INF fill
//! is a sound overestimate (the standard EAPruned argument: a
//! substituted INF can only displace an operand that was itself
//! `>= cutoff`, so live cells still compute exact bits). Stale scratch
//! from three diagonals ago is neutralized by INF-filling a fixed ±2
//! margin around the union of this and the previous diagonal's computed
//! spans, which contains every future read of this row.

use crate::workspace::Workspace;

const INF: f64 = f64::INFINITY;

/// In-band index range `[lo, hi]` (1-based `i`) of diagonal `d`.
#[inline]
fn band_range(d: usize, m: usize, n: usize, band: usize) -> (usize, usize) {
    let lo = 1
        .max(d.saturating_sub(n))
        .max(d.saturating_sub(band).div_ceil(2));
    let hi = m.min(d - 1).min((d + band) / 2);
    (lo, hi)
}

/// Anti-diagonal banded DTW with squared local costs: the vectorized
/// engine behind [`super::Dtw`]. Bit-identical to
/// [`super::dtw::dtw_banded_ws`] (same per-cell dataflow, different
/// schedule); `band` is the absolute Sakoe–Chiba radius.
pub fn dtw_wavefront_ws(x: &[f64], y: &[f64], band: usize, ws: &mut Workspace) -> f64 {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { INF };
    }
    // A band narrower than the length difference strands the corner:
    // the row-major kernel returns INF through all-dead rows.
    if m + band < n || n + band < m {
        return INF;
    }
    let (mut p2, mut p1, mut cur, yr) = ws.diag_scratch(m + 1, n);
    for (slot, &v) in yr.iter_mut().zip(y.iter().rev()) {
        *slot = v;
    }
    p2.fill(INF);
    p1.fill(INF);
    p2[0] = 0.0;

    for d in 2..=(m + n) {
        let (lo, hi) = band_range(d, m, n, band);
        let fill_hi = (hi + 1).min(m);
        cur[lo - 1..=fill_hi].fill(INF);
        if lo <= hi {
            let len = hi - lo + 1;
            let yb = n + lo - d;
            let xs = &x[lo - 1..lo - 1 + len];
            let ys = &yr[yb..yb + len];
            let pd = &p2[lo - 1..lo - 1 + len];
            let pt = &p1[lo - 1..lo - 1 + len];
            let pl = &p1[lo..lo + len];
            let out = &mut cur[lo..lo + len];
            for k in 0..len {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "all six slices are pre-cut to `len`, so the checks fold away and the loop vectorizes")
                let diff = xs[k] - ys[k];
                let best = pd[k].min(pt[k]).min(pl[k]);
                out[k] = diff * diff + best;
            }
        }
        std::mem::swap(&mut p2, &mut p1);
        std::mem::swap(&mut p1, &mut cur);
    }
    p1[m]
}

/// Cutoff-pruned anti-diagonal DTW; the wavefront successor of the
/// row-major EAPruned kernel. Returns `(distance, dp_cells_computed)`
/// and honours the [`crate::measure::Distance::distance_upto`] contract
/// against [`dtw_wavefront_ws`]: bit-identical when the true distance is
/// `< cutoff`, otherwise `f64::INFINITY`. `cutoff` must be finite;
/// non-positive cutoffs abandon immediately.
pub fn dtw_wavefront_pruned(
    x: &[f64],
    y: &[f64],
    band: usize,
    cutoff: f64,
    ws: &mut Workspace,
) -> (f64, u64) {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return (if m == n { 0.0 } else { INF }, 0);
    }
    if cutoff.is_nan() || cutoff <= 0.0 {
        return (INF, 0);
    }
    if m + band < n || n + band < m {
        return (INF, 0);
    }
    let (mut p2, mut p1, mut cur, yr) = ws.diag_scratch(m + 1, n);
    for (slot, &v) in yr.iter_mut().zip(y.iter().rev()) {
        *slot = v;
    }
    p2.fill(INF);
    p1.fill(INF);
    p2[0] = 0.0;

    // Live windows (first/last index with value < cutoff; lo == MAX means
    // empty) of diagonals d-1 / d-2, and the previous computed span.
    let (mut l1_lo, mut l1_hi) = (usize::MAX, 0usize);
    let (mut l2_lo, mut l2_hi) = (0usize, 0usize);
    let (mut pclo, mut pchi) = (0usize, 0usize);
    let mut cells = 0u64;

    for d in 2..=(m + n) {
        if l1_lo == usize::MAX && l2_lo == usize::MAX {
            // Two consecutive fully-dead diagonals: every warping path
            // crosses at least one of them, so the distance is >= cutoff.
            return (INF, cells);
        }
        let (blo, bhi) = band_range(d, m, n, band);
        // Indices with a potentially-live predecessor: the diagonal move
        // reaches i from l2 at i-1, the top/left moves from l1 at i-1 / i.
        let mut rlo = usize::MAX;
        let mut rhi = 0usize;
        if l1_lo != usize::MAX {
            rlo = l1_lo;
            rhi = l1_hi + 1;
        }
        if l2_lo != usize::MAX {
            rlo = rlo.min(l2_lo + 1);
            rhi = rhi.max(l2_hi + 1);
        }
        let clo = blo.max(rlo);
        let chi = bhi.min(rhi);
        let (eff_lo, eff_hi) = if clo <= chi { (clo, chi) } else { (pclo, pchi) };
        // Neutralize stale values from three diagonals ago everywhere a
        // future diagonal might read this row.
        let fs_lo = eff_lo.min(pclo).saturating_sub(2);
        let fs_hi = (eff_hi.max(pchi) + 2).min(m);
        cur[fs_lo..=fs_hi].fill(INF);

        let (mut nl_lo, mut nl_hi) = (usize::MAX, 0usize);
        if clo <= chi {
            let len = chi - clo + 1;
            let yb = n + clo - d;
            let xs = &x[clo - 1..clo - 1 + len];
            let ys = &yr[yb..yb + len];
            let pd = &p2[clo - 1..clo - 1 + len];
            let pt = &p1[clo - 1..clo - 1 + len];
            let pl = &p1[clo..clo + len];
            let out = &mut cur[clo..clo + len];
            for k in 0..len {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "all six slices are pre-cut to `len`, so the checks fold away and the loop vectorizes")
                let diff = xs[k] - ys[k];
                let best = pd[k].min(pt[k]).min(pl[k]);
                out[k] = diff * diff + best;
            }
            cells += len as u64;
            // Live-window scan as a separate pass keeps the DP loop
            // branch-free.
            if let Some(f) = out.iter().position(|&v| v < cutoff) {
                // `rposition` cannot miss once `position` hit, but fall
                // back to `f` rather than panic.
                let l = out.iter().rposition(|&v| v < cutoff).unwrap_or(f);
                nl_lo = clo + f;
                nl_hi = clo + l;
            }
        }
        l2_lo = l1_lo;
        l2_hi = l1_hi;
        l1_lo = nl_lo;
        l1_hi = nl_hi;
        pclo = eff_lo;
        pchi = eff_hi;
        std::mem::swap(&mut p2, &mut p1);
        std::mem::swap(&mut p1, &mut cur);
    }
    // The corner cell is exact iff it sits in the final live window.
    if l1_lo != usize::MAX && l1_lo <= m && m <= l1_hi && p1[m] < cutoff {
        (p1[m], cells)
    } else {
        (INF, cells)
    }
}

/// Anti-diagonal WDTW (unbanded, logistic weights indexed by `|i - j|`):
/// the vectorized engine behind [`super::WeightedDtw`]. Bit-identical to
/// the row-major sweep; the per-diagonal weight gather
/// `wq[k] = weights[|2 i - d|]` is the only extra work.
pub fn wdtw_wavefront_ws(x: &[f64], y: &[f64], weights: &[f64], ws: &mut Workspace) -> f64 {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { INF };
    }
    let (mut p2, mut p1, mut cur, extra) = ws.diag_scratch(m + 1, n + m + 1);
    let (yr, wq) = extra.split_at_mut(n);
    for (slot, &v) in yr.iter_mut().zip(y.iter().rev()) {
        *slot = v;
    }
    p2.fill(INF);
    p1.fill(INF);
    p2[0] = 0.0;

    for d in 2..=(m + n) {
        let lo = 1.max(d.saturating_sub(n));
        let hi = m.min(d - 1);
        let fill_hi = (hi + 1).min(m);
        cur[lo - 1..=fill_hi].fill(INF);
        let len = hi - lo + 1;
        let yb = n + lo - d;
        let xs = &x[lo - 1..lo - 1 + len];
        let ys = &yr[yb..yb + len];
        let pd = &p2[lo - 1..lo - 1 + len];
        let pt = &p1[lo - 1..lo - 1 + len];
        let pl = &p1[lo..lo + len];
        let wk = &mut wq[..len];
        for k in 0..len {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "weight gather over a pre-cut slice; the index is data-independent")
            wk[k] = weights[(2 * (lo + k)).abs_diff(d)];
        }
        let out = &mut cur[lo..lo + len];
        for k in 0..len {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "all seven slices are pre-cut to `len`, so the checks fold away and the loop vectorizes")
            let diff = xs[k] - ys[k];
            let best = pd[k].min(pt[k]).min(pl[k]);
            out[k] = wk[k] * diff * diff + best;
        }
        std::mem::swap(&mut p2, &mut p1);
        std::mem::swap(&mut p1, &mut cur);
    }
    p1[m]
}

/// Cutoff-pruned anti-diagonal WDTW; same live-window machinery as
/// [`dtw_wavefront_pruned`] with the logistic weight folded into the
/// (still non-negative) local cost. Returns `(distance, cells)`.
pub fn wdtw_wavefront_pruned(
    x: &[f64],
    y: &[f64],
    weights: &[f64],
    cutoff: f64,
    ws: &mut Workspace,
) -> (f64, u64) {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return (if m == n { 0.0 } else { INF }, 0);
    }
    if cutoff.is_nan() || cutoff <= 0.0 {
        return (INF, 0);
    }
    let (mut p2, mut p1, mut cur, extra) = ws.diag_scratch(m + 1, n + m + 1);
    let (yr, wq) = extra.split_at_mut(n);
    for (slot, &v) in yr.iter_mut().zip(y.iter().rev()) {
        *slot = v;
    }
    p2.fill(INF);
    p1.fill(INF);
    p2[0] = 0.0;

    let (mut l1_lo, mut l1_hi) = (usize::MAX, 0usize);
    let (mut l2_lo, mut l2_hi) = (0usize, 0usize);
    let (mut pclo, mut pchi) = (0usize, 0usize);
    let mut cells = 0u64;

    for d in 2..=(m + n) {
        if l1_lo == usize::MAX && l2_lo == usize::MAX {
            return (INF, cells);
        }
        let blo = 1.max(d.saturating_sub(n));
        let bhi = m.min(d - 1);
        let mut rlo = usize::MAX;
        let mut rhi = 0usize;
        if l1_lo != usize::MAX {
            rlo = l1_lo;
            rhi = l1_hi + 1;
        }
        if l2_lo != usize::MAX {
            rlo = rlo.min(l2_lo + 1);
            rhi = rhi.max(l2_hi + 1);
        }
        let clo = blo.max(rlo);
        let chi = bhi.min(rhi);
        let (eff_lo, eff_hi) = if clo <= chi { (clo, chi) } else { (pclo, pchi) };
        let fs_lo = eff_lo.min(pclo).saturating_sub(2);
        let fs_hi = (eff_hi.max(pchi) + 2).min(m);
        cur[fs_lo..=fs_hi].fill(INF);

        let (mut nl_lo, mut nl_hi) = (usize::MAX, 0usize);
        if clo <= chi {
            let len = chi - clo + 1;
            let yb = n + clo - d;
            let xs = &x[clo - 1..clo - 1 + len];
            let ys = &yr[yb..yb + len];
            let pd = &p2[clo - 1..clo - 1 + len];
            let pt = &p1[clo - 1..clo - 1 + len];
            let pl = &p1[clo..clo + len];
            let wk = &mut wq[..len];
            for k in 0..len {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "weight gather over a pre-cut slice; the index is data-independent")
                wk[k] = weights[(2 * (clo + k)).abs_diff(d)];
            }
            let out = &mut cur[clo..clo + len];
            for k in 0..len {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "all seven slices are pre-cut to `len`, so the checks fold away and the loop vectorizes")
                let diff = xs[k] - ys[k];
                let best = pd[k].min(pt[k]).min(pl[k]);
                out[k] = wk[k] * diff * diff + best;
            }
            cells += len as u64;
            if let Some(f) = out.iter().position(|&v| v < cutoff) {
                // `rposition` cannot miss once `position` hit, but fall
                // back to `f` rather than panic.
                let l = out.iter().rposition(|&v| v < cutoff).unwrap_or(f);
                nl_lo = clo + f;
                nl_hi = clo + l;
            }
        }
        l2_lo = l1_lo;
        l2_hi = l1_hi;
        l1_lo = nl_lo;
        l1_hi = nl_hi;
        pclo = eff_lo;
        pchi = eff_hi;
        std::mem::swap(&mut p2, &mut p1);
        std::mem::swap(&mut p1, &mut cur);
    }
    if l1_lo != usize::MAX && l1_lo <= m && m <= l1_hi && p1[m] < cutoff {
        (p1[m], cells)
    } else {
        (INF, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::dtw::{dtw_banded_ws, WeightedDtw};
    use crate::measure::Distance;

    /// SplitMix64 noise, the repo's deterministic test generator.
    fn noise(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn wavefront_matches_row_major_bit_for_bit() {
        let mut ws_a = crate::workspace::Workspace::new();
        let mut ws_b = crate::workspace::Workspace::new();
        for (seed, m, n) in [
            (1u64, 1usize, 1usize),
            (2, 2, 2),
            (3, 7, 7),
            (4, 8, 8),
            (5, 9, 9),
            (6, 19, 19),
            (7, 33, 47),
            (8, 47, 33),
            (9, 64, 64),
            (10, 128, 100),
        ] {
            let x = noise(seed, m);
            let y = noise(seed ^ 0xDEAD, n);
            for band in [0usize, 1, 2, 3, 5, 7, 13, 26, 64, 200] {
                let a = dtw_banded_ws(&x, &y, band, &mut ws_a);
                let b = dtw_wavefront_ws(&x, &y, band, &mut ws_b);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "m={m} n={n} band={band}: row-major {a} vs wavefront {b}"
                );
            }
        }
    }

    #[test]
    fn pruned_wavefront_honours_the_upto_contract() {
        let mut ws = crate::workspace::Workspace::new();
        for (seed, m, n) in [(11u64, 19usize, 19usize), (12, 33, 41), (13, 64, 64)] {
            let x = noise(seed, m);
            let y = noise(seed ^ 0xBEEF, n);
            for band in [0usize, 3, 7, 26, 100] {
                let exact = dtw_wavefront_ws(&x, &y, band, &mut ws);
                if !exact.is_finite() {
                    continue;
                }
                for factor in [0.25, 0.5, 0.999, 1.001, 2.0, 10.0] {
                    let cutoff = exact * factor;
                    let (got, _) = dtw_wavefront_pruned(&x, &y, band, cutoff, &mut ws);
                    if exact < cutoff {
                        assert_eq!(
                            got.to_bits(),
                            exact.to_bits(),
                            "band={band} factor={factor}: below-cutoff result must be exact"
                        );
                    } else {
                        assert!(
                            got >= cutoff,
                            "band={band} factor={factor}: got {got} < cutoff {cutoff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_wavefront_computes_fewer_cells_under_a_tight_cutoff() {
        let mut ws = crate::workspace::Workspace::new();
        let x = noise(21, 128);
        let y = noise(22, 128);
        let band = 32;
        let exact = dtw_wavefront_ws(&x, &y, band, &mut ws);
        let (_, loose) = dtw_wavefront_pruned(&x, &y, band, exact * 4.0, &mut ws);
        let (got, tight) = dtw_wavefront_pruned(&x, &y, band, exact * 1.01, &mut ws);
        assert_eq!(got.to_bits(), exact.to_bits());
        assert!(
            tight <= loose,
            "tighter cutoff computed more cells: {tight} > {loose}"
        );
    }

    #[test]
    fn wdtw_wavefront_matches_row_major_bit_for_bit() {
        let mut ws = crate::workspace::Workspace::new();
        for (seed, m, n) in [
            (31u64, 1usize, 1usize),
            (32, 7, 9),
            (33, 19, 19),
            (34, 33, 47),
            (35, 64, 64),
        ] {
            let x = noise(seed, m);
            let y = noise(seed ^ 0xF00D, n);
            for g in [0.01, 0.05, 0.5] {
                let wdtw = WeightedDtw::new(g);
                let a = wdtw.distance(&x, &y);
                let half = m.max(n) as f64 / 2.0;
                let weights: Vec<f64> = (0..m.max(n))
                    .map(|k| 1.0 / (1.0 + (-g * (k as f64 - half)).exp()))
                    .collect();
                let b = wdtw_wavefront_ws(&x, &y, &weights, &mut ws);
                assert_eq!(a.to_bits(), b.to_bits(), "g={g} m={m} n={n}");
                let exact = a;
                let (below, _) = wdtw_wavefront_pruned(&x, &y, &weights, exact * 2.0, &mut ws);
                assert_eq!(below.to_bits(), exact.to_bits());
                if exact > 0.0 {
                    let (above, _) = wdtw_wavefront_pruned(&x, &y, &weights, exact * 0.5, &mut ws);
                    assert!(above >= exact * 0.5);
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_match_row_major() {
        let mut ws = crate::workspace::Workspace::new();
        assert_eq!(dtw_wavefront_ws(&[], &[], 5, &mut ws), 0.0);
        assert_eq!(dtw_wavefront_ws(&[1.0], &[], 5, &mut ws), INF);
        assert_eq!(dtw_wavefront_ws(&[], &[1.0], 5, &mut ws), INF);
        // Band narrower than the length difference: INF both ways.
        let x = noise(41, 10);
        let y = noise(42, 30);
        assert_eq!(
            dtw_wavefront_ws(&x, &y, 3, &mut ws).to_bits(),
            dtw_banded_ws(&x, &y, 3, &mut ws).to_bits()
        );
        assert_eq!(dtw_wavefront_pruned(&x, &y, 3, 1.0, &mut ws).0, INF);
    }
}
