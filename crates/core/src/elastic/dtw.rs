//! Dynamic Time Warping with the Sakoe–Chiba band.
//!
//! DTW finds the monotone warping path through the `m x m` cost matrix
//! that minimizes the accumulated squared pointwise distance. The band
//! width `δ` is expressed, as in the paper's Table 4, as a *percentage of
//! the series length*: `δ = 10` permits the path to stray 10% of `m` cells
//! from the diagonal, `δ = 100` is unconstrained, and `δ = 0` degenerates
//! to the Euclidean alignment.

use crate::measure::Distance;
use crate::workspace::Workspace;

/// DTW distance with a Sakoe–Chiba band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dtw {
    /// Band width as a percentage of the series length (0–100).
    pub window_pct: f64,
}

impl Dtw {
    /// DTW with a band of `window_pct`% of the series length.
    ///
    /// # Panics
    /// Panics if `window_pct` is negative or above 100.
    pub fn with_window_pct(window_pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&window_pct),
            "window percentage must be within [0, 100], got {window_pct}"
        );
        Dtw { window_pct }
    }

    /// Unconstrained DTW (`δ = 100`).
    pub fn unconstrained() -> Self {
        Dtw { window_pct: 100.0 }
    }

    /// The absolute band radius for series lengths `m`, `n`: at least
    /// `|m - n|` so a path always exists.
    ///
    /// Public so the index tier can build Keogh envelopes with the *same*
    /// band arithmetic the measure evaluates with — any drift between the
    /// two would make the envelope bounds inadmissible.
    pub fn band(&self, m: usize, n: usize) -> usize {
        band_radius(self.window_pct, m, n)
    }
}

/// The Sakoe–Chiba band radius for a `window_pct`% band over lengths
/// `m`, `n` — the single source of truth shared by [`Dtw`] and the index
/// tier's envelope builder.
pub fn band_radius(window_pct: f64, m: usize, n: usize) -> usize {
    let base = (window_pct / 100.0 * m.max(n) as f64).ceil() as usize;
    base.max(m.abs_diff(n))
}

impl Distance for Dtw {
    fn name(&self) -> String {
        if self.window_pct >= 100.0 {
            "DTW".into()
        } else {
            format!("DTW(δ={})", self.window_pct)
        }
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        dtw_banded(x, y, self.band(x.len(), y.len()))
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // The anti-diagonal wavefront kernel: bit-identical to
        // `dtw_banded` / `dtw_banded_ws` (same per-cell dataflow), but
        // free of the row-major left-neighbour dependency chain.
        super::wavefront::dtw_wavefront_ws(x, y, self.band(x.len(), y.len()), ws)
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        dtw_banded_pruned(x, y, self.band(x.len(), y.len()), cutoff, ws).0
    }

    fn lanes_hint(&self) -> usize {
        crate::lanes::LANES
    }

    fn index_profile(&self) -> crate::measure::IndexProfile {
        // Plain banded DTW over raw values is exactly what LB_PAA /
        // LB_Keogh envelopes lower-bound. The derivative and weighted
        // variants below keep the `None` default: envelopes over the raw
        // series say nothing about transformed or reweighted costs.
        crate::measure::IndexProfile::KeoghDtw {
            window_pct: self.window_pct,
        }
    }
}

/// Banded DTW with squared local costs and a two-row rolling DP — the
/// primitive behind [`Dtw`], exposed for lower-bound search and the
/// embedding measures.
/// `band` is the absolute Sakoe–Chiba radius.
pub fn dtw_banded(x: &[f64], y: &[f64], band: usize) -> f64 {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }

    const INF: f64 = f64::INFINITY;
    let mut prev = vec![INF; n + 1];
    let mut curr = vec![INF; n + 1];
    prev[0] = 0.0;

    for i in 1..=m {
        curr.fill(INF);
        // Band limits for row i (1-based indices into y).
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(n);
        if lo > hi {
            std::mem::swap(&mut prev, &mut curr);
            continue;
        }
        for j in lo..=hi {
            let d = x[i - 1] - y[j - 1];
            let cost = d * d;
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Allocation-free twin of [`dtw_banded`]: the DP rows live in `ws`.
/// Bit-identical results (same operations in the same order).
pub fn dtw_banded_ws(x: &[f64], y: &[f64], band: usize, ws: &mut Workspace) -> f64 {
    let m = x.len();
    let n = y.len();
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }

    const INF: f64 = f64::INFINITY;
    let (mut prev, mut curr) = ws.dp_rows2(n + 1);
    prev.fill(INF);
    prev[0] = 0.0;

    for i in 1..=m {
        curr.fill(INF);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(n);
        if lo > hi {
            std::mem::swap(&mut prev, &mut curr);
            continue;
        }
        for j in lo..=hi {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "reference row-major kernel kept for wavefront equivalence tests; not on the production dispatch path")
            let d = x[i - 1] - y[j - 1];
            let cost = d * d;
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Cutoff-pruned banded DTW (EAPruned-style, after Herrmann & Webb),
/// since the vectorized-kernel backend a thin wrapper over the
/// anti-diagonal [`super::wavefront::dtw_wavefront_pruned`]: live-window
/// pruning now runs in diagonal space, abandoning once two *consecutive*
/// diagonals go fully dead (a warping path can skip one diagonal via the
/// diagonal move, never two).
///
/// Returns `(distance, dp_cells_computed)`. The distance honours the
/// [`crate::measure::Distance::distance_upto`] contract against
/// [`dtw_banded_ws`]: bit-identical when the true distance is `< cutoff`
/// (live cells see the same operands in the same order — an inflated dead
/// neighbour never wins the `min`), otherwise `f64::INFINITY`. `cutoff`
/// must be finite; non-positive cutoffs abandon immediately.
pub fn dtw_banded_pruned(
    x: &[f64],
    y: &[f64],
    band: usize,
    cutoff: f64,
    ws: &mut Workspace,
) -> (f64, u64) {
    super::wavefront::dtw_wavefront_pruned(x, y, band, cutoff, ws)
}

/// Derivative DTW (Keogh & Pazzani 2001): DTW applied to the estimated
/// first derivative
/// `d_i = ((x_i - x_{i-1}) + (x_{i+1} - x_{i-1}) / 2) / 2`,
/// one of the popular DTW variants the paper discusses in Section 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivativeDtw {
    /// The underlying banded DTW.
    pub dtw: Dtw,
}

impl DerivativeDtw {
    /// DDTW with the given band percentage.
    pub fn with_window_pct(window_pct: f64) -> Self {
        DerivativeDtw {
            dtw: Dtw::with_window_pct(window_pct),
        }
    }

    /// Keogh's derivative estimate; endpoints copy their neighbour.
    pub fn derivative(x: &[f64]) -> Vec<f64> {
        let mut d = Vec::new();
        Self::derivative_into(x, &mut d);
        d
    }

    /// [`DerivativeDtw::derivative`] writing into a reused buffer
    /// (cleared first).
    pub fn derivative_into(x: &[f64], d: &mut Vec<f64>) {
        let m = x.len();
        d.clear();
        if m < 3 {
            d.resize(m, 0.0);
            return;
        }
        d.reserve(m);
        d.push(0.0);
        for i in 1..m - 1 {
            d.push(((x[i] - x[i - 1]) + (x[i + 1] - x[i - 1]) / 2.0) / 2.0);
        }
        d.push(0.0);
        d[0] = d[1];
        d[m - 1] = d[m - 2];
    }
}

impl Distance for DerivativeDtw {
    fn name(&self) -> String {
        format!("DDTW(δ={})", self.dtw.window_pct)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        self.dtw
            .distance(&Self::derivative(x), &Self::derivative(y))
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // The derivatives live in the aux arenas so the DP rows remain
        // free for the nested banded-DTW call.
        let mut dx = ws.take_aux();
        let mut dy = ws.take_aux2();
        Self::derivative_into(x, &mut dx);
        Self::derivative_into(y, &mut dy);
        let d = self.dtw.distance_ws(&dx, &dy, ws);
        ws.put_aux(dx);
        ws.put_aux2(dy);
        d
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        // The derivative transform is cutoff-independent; the nested DTW
        // does the pruning (and handles non-finite cutoffs itself).
        let mut dx = ws.take_aux();
        let mut dy = ws.take_aux2();
        Self::derivative_into(x, &mut dx);
        Self::derivative_into(y, &mut dy);
        let d = self.dtw.distance_upto(&dx, &dy, ws, cutoff);
        ws.put_aux(dx);
        ws.put_aux2(dy);
        d
    }

    fn lanes_hint(&self) -> usize {
        self.dtw.lanes_hint()
    }
}

/// Weighted DTW (Jeong et al. 2011): penalizes warping-path cells by a
/// logistic weight of their distance from the diagonal,
/// `w(k) = 1 / (1 + exp(-g (k - m/2)))`, discouraging large warps without
/// a hard band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedDtw {
    /// Steepness of the logistic penalty (Jeong et al. use `g = 0.05`).
    pub g: f64,
}

impl WeightedDtw {
    /// WDTW with logistic steepness `g`.
    pub fn new(g: f64) -> Self {
        WeightedDtw { g }
    }
}

impl Distance for WeightedDtw {
    fn name(&self) -> String {
        format!("WDTW(g={})", self.g)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        const INF: f64 = f64::INFINITY;
        let half = m.max(n) as f64 / 2.0;
        // Precompute weights for all |i - j|.
        let weights: Vec<f64> = (0..m.max(n))
            .map(|k| 1.0 / (1.0 + (-self.g * (k as f64 - half)).exp()))
            .collect();

        let mut prev = vec![INF; n + 1];
        let mut curr = vec![INF; n + 1];
        prev[0] = 0.0;
        for i in 1..=m {
            curr.fill(INF);
            for j in 1..=n {
                let d = x[i - 1] - y[j - 1];
                let w = weights[i.abs_diff(j)];
                let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
                curr[j] = w * d * d + best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        let half = m.max(n) as f64 / 2.0;
        let mut weights = ws.take_aux();
        weights.extend((0..m.max(n)).map(|k| 1.0 / (1.0 + (-self.g * (k as f64 - half)).exp())));
        // Anti-diagonal wavefront sweep, bit-identical to the allocating
        // row-major `distance` (same per-cell dataflow).
        let out = super::wavefront::wdtw_wavefront_ws(x, y, &weights, ws);
        ws.put_aux(weights);
        out
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        if cutoff <= 0.0 {
            return f64::INFINITY;
        }
        let half = m.max(n) as f64 / 2.0;
        let mut weights = ws.take_aux();
        weights.extend((0..m.max(n)).map(|k| 1.0 / (1.0 + (-self.g * (k as f64 - half)).exp())));
        // Wavefront live-window pruning, with the logistic weight folded
        // into the (still non-negative) local cost.
        let out = super::wavefront::wdtw_wavefront_pruned(x, y, &weights, cutoff, ws).0;
        ws.put_aux(weights);
        out
    }

    fn lanes_hint(&self) -> usize {
        crate::lanes::LANES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::Euclidean;

    #[test]
    fn dtw_zero_for_identical() {
        let x = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(Dtw::unconstrained().distance(&x, &x), 0.0);
    }

    #[test]
    fn dtw_zero_band_equals_squared_euclidean() {
        let x = [1.0, 3.0, 2.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        let d0 = Dtw::with_window_pct(0.0).distance(&x, &y);
        let ed = Euclidean.distance(&x, &y);
        assert!((d0 - ed * ed).abs() < 1e-12);
    }

    #[test]
    fn dtw_handles_local_stretch_that_defeats_euclid() {
        // y is x with a plateau stretched: DTW aligns it nearly perfectly.
        let x = [0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let y = [0.0, 1.0, 2.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        let dtw = Dtw::unconstrained().distance(&x, &y);
        let ed = Euclidean.distance(&x, &y);
        assert!(dtw < 1e-12, "dtw = {dtw}");
        assert!(ed > 1.0);
    }

    #[test]
    fn wider_band_never_increases_distance() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4 + 0.8).sin()).collect();
        let mut last = f64::INFINITY;
        for pct in [0.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let d = Dtw::with_window_pct(pct).distance(&x, &y);
            assert!(d <= last + 1e-12, "band {pct} increased distance");
            last = d;
        }
    }

    #[test]
    fn dtw_supports_unequal_lengths() {
        let x = [0.0, 1.0, 2.0, 1.0, 0.0];
        let y = [0.0, 1.0, 1.0, 2.0, 2.0, 1.0, 0.0];
        let d = Dtw::with_window_pct(10.0).distance(&x, &y);
        assert!(d.is_finite());
    }

    #[test]
    fn dtw_monotone_under_growing_perturbation() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut last = 0.0;
        for amp in [0.0, 0.2, 0.5, 1.0] {
            let y: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, v)| v + amp * ((i % 3) as f64 - 1.0))
                .collect();
            let d = Dtw::unconstrained().distance(&x, &y);
            assert!(d >= last - 1e-12);
            last = d;
        }
    }

    #[test]
    #[should_panic(expected = "window percentage")]
    fn invalid_band_panics() {
        let _ = Dtw::with_window_pct(150.0);
    }

    #[test]
    fn ddtw_ignores_constant_offsets() {
        // Derivatives kill vertical offsets entirely.
        let x = [0.0, 1.0, 4.0, 9.0, 16.0, 25.0];
        let y: Vec<f64> = x.iter().map(|v| v + 100.0).collect();
        let d = DerivativeDtw::with_window_pct(100.0).distance(&x, &y);
        assert!(d < 1e-12, "d = {d}");
    }

    #[test]
    fn ddtw_derivative_of_line_is_constant_slope() {
        let x = [0.0, 2.0, 4.0, 6.0, 8.0];
        let d = DerivativeDtw::derivative(&x);
        for v in &d {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn wdtw_zero_for_identical_and_positive_otherwise() {
        let x = [1.0, 2.0, 0.5, 3.0];
        let y = [0.5, 1.5, 2.5, 0.0];
        let w = WeightedDtw::new(0.05);
        assert!(w.distance(&x, &x).abs() < 1e-12);
        assert!(w.distance(&x, &y) > 0.0);
    }

    #[test]
    fn wdtw_penalizes_far_from_diagonal_alignment_more_with_steeper_g() {
        // A shifted pattern needs off-diagonal alignment; steeper g makes
        // that costlier.
        let x: Vec<f64> = (0..32).map(|i| if i == 8 { 5.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..32).map(|i| if i == 20 { 5.0 } else { 0.0 }).collect();
        let soft = WeightedDtw::new(0.01).distance(&x, &y);
        let hard = WeightedDtw::new(0.5).distance(&x, &y);
        assert!(hard >= soft);
    }
}
