//! The Time Warp Edit distance (Marteau 2008).
//!
//! TWE combines LCSS-style editing with DTW-style warping: a stiffness
//! parameter `ν` charges for warping in *time* (multiplied by the
//! timestamp gap) and `λ` penalizes delete operations. With MSM, it is
//! one of the two measures the paper finds significantly better than DTW.

use crate::measure::Distance;
use crate::workspace::Workspace;

/// TWE distance with deletion penalty `lambda` and stiffness `nu`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Twe {
    /// Deletion penalty λ (Table 4: `{0, 0.25, 0.5, 0.75, 1.0}`).
    pub lambda: f64,
    /// Stiffness ν (Table 4: `{1e-5, ..., 1}`); the unsupervised pick is
    /// `λ = 1, ν = 1e-4`.
    pub nu: f64,
}

impl Twe {
    /// Creates TWE.
    ///
    /// # Panics
    /// Panics if either parameter is negative.
    pub fn new(lambda: f64, nu: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!(nu >= 0.0, "nu must be non-negative");
        Twe { lambda, nu }
    }
}

impl Distance for Twe {
    fn name(&self) -> String {
        format!("TWE(λ={},ν={})", self.lambda, self.nu)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        // 1-based with an implicit 0th sample equal to 0 (Marteau's
        // convention); timestamps are the indices.
        let xi = |i: usize| if i == 0 { 0.0 } else { x[i - 1] };
        let yj = |j: usize| if j == 0 { 0.0 } else { y[j - 1] };

        const INF: f64 = f64::INFINITY;
        let mut prev = vec![INF; n + 1];
        let mut curr = vec![INF; n + 1];
        prev[0] = 0.0;
        // Row 0: delete all of y.
        for j in 1..=n {
            prev[j] = prev[j - 1] + (yj(j) - yj(j - 1)).abs() + self.nu + self.lambda;
        }

        for i in 1..=m {
            curr[0] = prev[0] + (xi(i) - xi(i - 1)).abs() + self.nu + self.lambda;
            for j in 1..=n {
                // Match both current samples (and their predecessors).
                let m_cost = prev[j - 1]
                    + (xi(i) - yj(j)).abs()
                    + (xi(i - 1) - yj(j - 1)).abs()
                    + 2.0 * self.nu * (i as f64 - j as f64).abs();
                // Delete in x.
                let dx = prev[j] + (xi(i) - xi(i - 1)).abs() + self.nu + self.lambda;
                // Delete in y.
                let dy = curr[j - 1] + (yj(j) - yj(j - 1)).abs() + self.nu + self.lambda;
                curr[j] = m_cost.min(dx).min(dy);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // Anti-diagonal wavefront sweep (see `super::wavefront`): the
        // inner loop carries no dependency through the delete-in-y
        // (left-neighbour) term. Cost expressions and `min` operand order
        // match the allocating row-major `distance` exactly, so results
        // are bit-identical.
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        let xi = |i: usize| if i == 0 { 0.0 } else { x[i - 1] };
        let yj = |j: usize| if j == 0 { 0.0 } else { y[j - 1] };

        let (mut p2, mut p1, mut cur, _) = ws.diag_scratch(m + 1, 0);
        // Diagonal 0 is the padded origin cell (0, 0).
        p1[0] = 0.0;
        for d in 1..=(m + n) {
            // Row-0 cell (0, d): delete all of y, one term per diagonal.
            if d <= n {
                cur[0] = p1[0] + (yj(d) - yj(d - 1)).abs() + self.nu + self.lambda;
            }
            // Column-0 cell (d, 0): delete all of x.
            if d <= m {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "diagonal index arithmetic (j = d - i) and O(1) boundary cells have no slice-friendly form; every index is proven in-bounds by the diagonal-range algebra")
                cur[d] = p1[d - 1] + (xi(d) - xi(d - 1)).abs() + self.nu + self.lambda;
            }
            let lo = 1.max(d.saturating_sub(n));
            let hi = m.min(d - 1);
            for i in lo..=hi {
                let j = d - i;
                let m_cost = p2[i - 1]
                    + (xi(i) - yj(j)).abs()
                    + (xi(i - 1) - yj(j - 1)).abs()
                    + 2.0 * self.nu * (i as f64 - j as f64).abs();
                let dx = p1[i - 1] + (xi(i) - xi(i - 1)).abs() + self.nu + self.lambda;
                let dy = p1[i] + (yj(j) - yj(j - 1)).abs() + self.nu + self.lambda;
                cur[i] = m_cost.min(dx).min(dy);
            }
            std::mem::swap(&mut p2, &mut p1);
            std::mem::swap(&mut p1, &mut cur);
        }
        p1[m]
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        const INF: f64 = f64::INFINITY;
        if cutoff.is_nan() || cutoff <= 0.0 {
            return INF;
        }
        let xi = |i: usize| if i == 0 { 0.0 } else { x[i - 1] };
        let yj = |j: usize| if j == 0 { 0.0 } else { y[j - 1] };

        let (mut prev, mut curr) = ws.dp_rows2(n + 1);
        // Row 0: the exact delete chain; non-negative increments make the
        // live window the prefix `[0, p_hi]`.
        prev[0] = 0.0;
        let mut p_hi = 0usize;
        for j in 1..=n {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
            prev[j] = prev[j - 1] + (yj(j) - yj(j - 1)).abs() + self.nu + self.lambda;
            if prev[j] < cutoff {
                p_hi = j;
            }
        }
        let mut p_lo = 0usize;
        for i in 1..=m {
            curr.fill(INF);
            // Column 0 (delete all of x so far) stays exact so liveness
            // can re-enter from the left.
            curr[0] = prev[0] + (xi(i) - xi(i - 1)).abs() + self.nu + self.lambda;
            let mut live_lo = usize::MAX;
            let mut live_hi = 0usize;
            if curr[0] < cutoff {
                live_lo = 0;
            }
            let start = if live_lo == 0 { 1 } else { p_lo.max(1) };
            for j in start..=n {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
                if j > p_hi + 1 && curr[j - 1] >= cutoff {
                    break;
                }
                let m_cost = prev[j - 1]
                    + (xi(i) - yj(j)).abs()
                    + (xi(i - 1) - yj(j - 1)).abs()
                    + 2.0 * self.nu * (i as f64 - j as f64).abs();
                let dx = prev[j] + (xi(i) - xi(i - 1)).abs() + self.nu + self.lambda;
                let dy = curr[j - 1] + (yj(j) - yj(j - 1)).abs() + self.nu + self.lambda;
                let v = m_cost.min(dx).min(dy);
                curr[j] = v;
                if v < cutoff {
                    if live_lo == usize::MAX {
                        live_lo = j;
                    }
                    live_hi = j;
                }
            }
            if live_lo == usize::MAX {
                return INF;
            }
            p_lo = live_lo;
            p_hi = live_hi;
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 5] = [0.0, 1.0, 2.0, 1.0, 0.0];

    #[test]
    fn identical_series_zero() {
        assert_eq!(Twe::new(1.0, 1e-4).distance(&X, &X), 0.0);
    }

    #[test]
    fn symmetric() {
        let y = [0.5, 1.5, 1.0, 0.0, 2.0];
        let t = Twe::new(0.5, 0.01);
        assert!((t.distance(&X, &y) - t.distance(&y, &X)).abs() < 1e-12);
    }

    #[test]
    fn positive_for_different_series() {
        let y = [1.0, 0.0, 1.0, 2.0, 1.0];
        assert!(Twe::new(1.0, 1e-4).distance(&X, &y) > 0.0);
    }

    #[test]
    fn stiffness_penalizes_time_warping() {
        // A shifted spike requires warping; higher nu should cost more.
        let x: Vec<f64> = (0..20).map(|i| if i == 5 { 3.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..20).map(|i| if i == 12 { 3.0 } else { 0.0 }).collect();
        let loose = Twe::new(0.0, 1e-5).distance(&x, &y);
        let stiff = Twe::new(0.0, 1.0).distance(&x, &y);
        assert!(stiff > loose);
    }

    #[test]
    fn lambda_penalizes_deletions() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 1.5, 2.0]; // one extra sample to delete
        let cheap = Twe::new(0.0, 1e-4).distance(&x, &y);
        let pricey = Twe::new(1.0, 1e-4).distance(&x, &y);
        assert!(pricey >= cheap);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        // TWE is a metric for nu > 0.
        let series = [
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
        ];
        let t = Twe::new(0.5, 0.1);
        for a in &series {
            for b in &series {
                for c in &series {
                    let ab = t.distance(a, b);
                    let bc = t.distance(b, c);
                    let ac = t.distance(a, c);
                    assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn unequal_lengths_supported() {
        let d = Twe::new(1.0, 1e-4).distance(&[1.0, 2.0], &[1.0, 1.5, 2.0, 2.5]);
        assert!(d.is_finite() && d > 0.0);
    }
}
