//! The 7 elastic measures of Section 7, plus popular variants and DTW
//! lower bounds.
//!
//! Elastic measures create a non-linear mapping between points of two
//! series via dynamic programming, allowing regions to stretch or shrink.
//! The seven evaluated by the paper:
//!
//! | Measure | Parameters (Table 4) | Notes |
//! |---------|----------------------|-------|
//! | [`Dtw`] | window δ (% of length) | Sakoe–Chiba band |
//! | [`Lcss`] | ε, window δ | threshold matching |
//! | [`Edr`] | ε | edit distance on reals |
//! | [`Erp`] | — | parameter-free, a metric |
//! | [`Msm`] | cost c | a metric; beats DTW (M4) |
//! | [`Twe`] | λ, ν | beats DTW (M4) |
//! | [`Swale`] | ε, reward r, penalty p | similarity model |
//!
//! Variants discussed but not tabulated by the paper — [`DerivativeDtw`],
//! [`WeightedDtw`] — are provided for the ablation benches, as are the
//! [`lower_bounds`] used to accelerate DTW 1-NN search.
//!
//! All DP implementations run in O(m) memory: the reference kernels use
//! two-row rolling buffers, the production DTW/WDTW/MSM/TWE/ERP paths use
//! three rolling anti-diagonals (see [`wavefront`]).

pub mod dtw;
pub mod edit;
pub mod lower_bounds;
pub mod msm;
pub mod twe;
pub mod variants;
pub mod wavefront;

pub use dtw::{
    band_radius, dtw_banded, dtw_banded_pruned, dtw_banded_ws, DerivativeDtw, Dtw, WeightedDtw,
};
pub use edit::{Edr, Erp, Lcss, Swale};
pub use lower_bounds::{keogh_envelope, lb_erp, lb_keogh, lb_keogh_full, lb_keogh_upto, lb_kim};
pub use msm::Msm;
pub use twe::Twe;
pub use variants::{Cid, ItakuraDtw};
pub use wavefront::{
    dtw_wavefront_pruned, dtw_wavefront_ws, wdtw_wavefront_pruned, wdtw_wavefront_ws,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    fn all_defaults() -> Vec<Box<dyn Distance>> {
        vec![
            Box::new(Dtw::with_window_pct(10.0)),
            Box::new(Lcss::new(0.2, 5.0)),
            Box::new(Edr::new(0.1)),
            Box::new(Erp::new()),
            Box::new(Msm::new(0.5)),
            Box::new(Twe::new(1.0, 1e-4)),
            Box::new(Swale::new(0.2, 1.0, 5.0)),
        ]
    }

    #[test]
    fn seven_elastic_measures_match_the_paper() {
        assert_eq!(all_defaults().len(), 7);
    }

    #[test]
    fn all_are_finite_and_self_minimal() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.53).cos()).collect();
        for m in all_defaults() {
            let dxy = m.distance(&x, &y);
            let dxx = m.distance(&x, &x);
            assert!(dxy.is_finite(), "{}", m.name());
            assert!(dxx <= dxy + 1e-12, "{}: self not minimal", m.name());
        }
    }

    #[test]
    fn elastic_measures_tolerate_warping_better_than_ed() {
        // Construct a warped copy: elastic distances should view it as far
        // closer (relative to a genuinely different series) than ED does.
        use crate::lockstep::Euclidean;
        let x: Vec<f64> = (0..48)
            .map(|i| (-((i as f64 - 24.0) / 6.0).powi(2) / 2.0).exp())
            .collect();
        // The same bump, locally stretched.
        let warped: Vec<f64> = (0..48)
            .map(|i| {
                let t = (i as f64 / 47.0).powf(1.3) * 47.0;
                let d = (t - 24.0) / 6.0;
                (-d * d / 2.0).exp()
            })
            .collect();
        let other: Vec<f64> = (0..48)
            .map(|i| (-((i as f64 - 10.0) / 3.0).powi(2) / 2.0).exp())
            .collect();

        let ed_ratio = Euclidean.distance(&x, &warped) / Euclidean.distance(&x, &other).max(1e-12);
        let dtw = Dtw::with_window_pct(20.0);
        let dtw_ratio = dtw.distance(&x, &warped) / dtw.distance(&x, &other).max(1e-12);
        assert!(
            dtw_ratio < ed_ratio,
            "DTW should relatively tolerate warping: dtw {dtw_ratio} vs ed {ed_ratio}"
        );
    }
}
