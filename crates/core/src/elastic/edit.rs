//! The edit-distance-based elastic measures: LCSS, EDR, ERP, and Swale.

use crate::measure::Distance;
use crate::workspace::Workspace;

/// Longest Common Subsequence distance (Vlachos et al. 2002).
///
/// Two points match when they differ by less than `epsilon`; matching is
/// restricted to a temporal window of `delta_pct`% of the series length.
/// The distance is `1 - LCSS / min(m, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lcss {
    /// Value-match threshold.
    pub epsilon: f64,
    /// Warping window as a percentage of the series length.
    pub delta_pct: f64,
}

impl Lcss {
    /// Creates LCSS with threshold `epsilon` and window `delta_pct`%.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative or `delta_pct` is outside
    /// `[0, 100]` — construction-time validation so every later
    /// distance call runs unchecked.
    pub fn new(epsilon: f64, delta_pct: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        assert!(
            (0.0..=100.0).contains(&delta_pct),
            "delta percentage must be within [0, 100]"
        );
        Lcss { epsilon, delta_pct }
    }
}

impl Distance for Lcss {
    fn name(&self) -> String {
        format!("LCSS(ε={},δ={})", self.epsilon, self.delta_pct)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return 1.0;
        }
        let band = ((self.delta_pct / 100.0 * m.max(n) as f64).ceil() as usize).max(m.abs_diff(n));

        let mut prev = vec![0u32; n + 1];
        let mut curr = vec![0u32; n + 1];
        for i in 1..=m {
            curr.fill(0);
            let lo = i.saturating_sub(band).max(1);
            let hi = (i + band).min(n);
            for j in lo..=hi {
                if (x[i - 1] - y[j - 1]).abs() < self.epsilon {
                    curr[j] = prev[j - 1] + 1;
                } else {
                    curr[j] = prev[j].max(curr[j - 1]);
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        let lcss = prev.iter().copied().max().unwrap_or(0) as f64;
        1.0 - lcss / m.min(n) as f64
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return 1.0;
        }
        let band = ((self.delta_pct / 100.0 * m.max(n) as f64).ceil() as usize).max(m.abs_diff(n));

        let (mut prev, mut curr) = ws.int_rows2(n + 1);
        prev.fill(0);
        for i in 1..=m {
            curr.fill(0);
            let lo = i.saturating_sub(band).max(1);
            let hi = (i + band).min(n);
            for j in lo..=hi {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "branchy threshold recurrence; the comparison chain, not the bounds check, dominates and blocks vectorization")
                if (x[i - 1] - y[j - 1]).abs() < self.epsilon {
                    curr[j] = prev[j - 1] + 1;
                } else {
                    curr[j] = prev[j].max(curr[j - 1]);
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        let lcss = prev.iter().copied().max().unwrap_or(0) as f64;
        1.0 - lcss / m.min(n) as f64
    }
}

/// Edit Distance on Real sequences (Chen et al. 2005).
///
/// Points within `epsilon` match at cost 0, otherwise substitution,
/// insertion, and deletion all cost 1. Normalized by the longer length so
/// that values are comparable across datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edr {
    /// Value-match threshold.
    pub epsilon: f64,
}

impl Edr {
    /// Creates EDR with threshold `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Edr { epsilon }
    }
}

impl Distance for Edr {
    fn name(&self) -> String {
        format!("EDR(ε={})", self.epsilon)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { 1.0 };
        }
        let mut prev: Vec<u32> = (0..=n as u32).collect();
        let mut curr = vec![0u32; n + 1];
        for i in 1..=m {
            curr[0] = i as u32;
            for j in 1..=n {
                let subcost = u32::from((x[i - 1] - y[j - 1]).abs() > self.epsilon);
                curr[j] = (prev[j - 1] + subcost)
                    .min(prev[j] + 1)
                    .min(curr[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n] as f64 / m.max(n) as f64
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { 1.0 };
        }
        let (mut prev, mut curr) = ws.int_rows2(n + 1);
        for (j, slot) in prev.iter_mut().enumerate() {
            *slot = j as u32;
        }
        for i in 1..=m {
            curr[0] = i as u32;
            for j in 1..=n {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "branchy threshold recurrence; the comparison chain, not the bounds check, dominates and blocks vectorization")
                let subcost = u32::from((x[i - 1] - y[j - 1]).abs() > self.epsilon);
                curr[j] = (prev[j - 1] + subcost)
                    .min(prev[j] + 1)
                    .min(curr[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n] as f64 / m.max(n) as f64
    }
}

/// Edit distance with Real Penalty (Chen & Ng 2004).
///
/// ERP bridges DTW and edit distances: gaps are measured against a
/// constant reference value `g` (canonically 0), making ERP a metric and,
/// notably, the only parameter-free elastic measure in the study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erp {
    /// The gap reference value; the literature standard is 0.
    pub gap: f64,
}

impl Default for Erp {
    fn default() -> Self {
        Erp { gap: 0.0 }
    }
}

impl Erp {
    /// ERP with gap reference `g = 0`.
    pub fn new() -> Self {
        Erp::default()
    }
}

impl Distance for Erp {
    fn name(&self) -> String {
        "ERP".into()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        let g = self.gap;
        // Row 0: deleting all of y against gaps.
        let mut prev: Vec<f64> = std::iter::once(0.0)
            .chain(y.iter().scan(0.0, |acc, &v| {
                *acc += (v - g).abs();
                Some(*acc)
            }))
            .collect();
        let mut curr = vec![0.0; n + 1];
        for i in 1..=m {
            curr[0] = prev[0] + (x[i - 1] - g).abs();
            for j in 1..=n {
                let match_cost = prev[j - 1] + (x[i - 1] - y[j - 1]).abs();
                let del_x = prev[j] + (x[i - 1] - g).abs();
                let del_y = curr[j - 1] + (y[j - 1] - g).abs();
                curr[j] = match_cost.min(del_x).min(del_y);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        // Anti-diagonal wavefront sweep (see `super::wavefront`): the
        // inner loop carries no dependency through the delete-in-y
        // (left-neighbour) term. Cost expressions and `min` operand order
        // match the allocating row-major `distance` exactly — including
        // the row-0 running-sum chain, built one term per diagonal — so
        // results are bit-identical.
        let m = x.len();
        let n = y.len();
        let g = self.gap;
        let (mut p2, mut p1, mut cur, _) = ws.diag_scratch(m + 1, 0);
        // Diagonal 0 is the origin cell (0, 0).
        p1[0] = 0.0;
        for d in 1..=(m + n) {
            // Row-0 cell (0, d): delete all of y against gaps.
            if d <= n {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "diagonal index arithmetic (j = d - i) and O(1) boundary cells have no slice-friendly form; every index is proven in-bounds by the diagonal-range algebra")
                cur[0] = p1[0] + (y[d - 1] - g).abs();
            }
            // Column-0 cell (d, 0): delete all of x against gaps.
            if d <= m {
                cur[d] = p1[d - 1] + (x[d - 1] - g).abs();
            }
            let lo = 1.max(d.saturating_sub(n));
            let hi = m.min(d - 1);
            for i in lo..=hi {
                let j = d - i;
                let match_cost = p2[i - 1] + (x[i - 1] - y[j - 1]).abs();
                let del_x = p1[i - 1] + (x[i - 1] - g).abs();
                let del_y = p1[i] + (y[j - 1] - g).abs();
                cur[i] = match_cost.min(del_x).min(del_y);
            }
            std::mem::swap(&mut p2, &mut p1);
            std::mem::swap(&mut p1, &mut cur);
        }
        p1[m]
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        const INF: f64 = f64::INFINITY;
        if cutoff.is_nan() || cutoff <= 0.0 {
            return INF;
        }
        let m = x.len();
        let n = y.len();
        let g = self.gap;
        let (mut prev, mut curr) = ws.dp_rows2(n + 1);
        // Row 0: the exact delete chain. Increments are non-negative, so
        // the live (`< cutoff`) window is the prefix `[0, p_hi]`.
        prev[0] = 0.0;
        let mut acc = 0.0;
        let mut p_hi = 0usize;
        for j in 1..=n {
            // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
            acc += (y[j - 1] - g).abs();
            prev[j] = acc;
            if acc < cutoff {
                p_hi = j;
            }
        }
        let mut p_lo = 0usize;
        for i in 1..=m {
            curr.fill(INF);
            // Column 0 (delete all of x so far) is O(1) per row; keeping
            // its chain exact lets liveness re-enter from the left.
            // tsdist-lint: allow(hot-path-bounds-check, reason = "pruned-window DP: the live window is data-dependent, so loop-variable indexing is inherent and bounded by the window clamps")
            curr[0] = prev[0] + (x[i - 1] - g).abs();
            let mut live_lo = usize::MAX;
            let mut live_hi = 0usize;
            if curr[0] < cutoff {
                live_lo = 0;
            }
            let start = if live_lo == 0 { 1 } else { p_lo.max(1) };
            for j in start..=n {
                if j > p_hi + 1 && curr[j - 1] >= cutoff {
                    break;
                }
                let match_cost = prev[j - 1] + (x[i - 1] - y[j - 1]).abs();
                let del_x = prev[j] + (x[i - 1] - g).abs();
                let del_y = curr[j - 1] + (y[j - 1] - g).abs();
                let v = match_cost.min(del_x).min(del_y);
                curr[j] = v;
                if v < cutoff {
                    if live_lo == usize::MAX {
                        live_lo = j;
                    }
                    live_hi = j;
                }
            }
            if live_lo == usize::MAX {
                return INF;
            }
            p_lo = live_lo;
            p_hi = live_hi;
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }
}

/// Sequence Weighted ALignmEnt (Swale; Morse & Patel 2007).
///
/// A similarity model: matching points (within `epsilon`) earn `reward`,
/// gaps pay `penalty`. The similarity is negated into a dissimilarity for
/// 1-NN use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Swale {
    /// Value-match threshold.
    pub epsilon: f64,
    /// Score for each matched pair.
    pub reward: f64,
    /// Cost deducted for each gap.
    pub penalty: f64,
}

impl Swale {
    /// Creates Swale with the paper's parameterization (Table 4 uses
    /// `reward = 1`, `penalty = 5` and tunes `epsilon`).
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative.
    pub fn new(epsilon: f64, reward: f64, penalty: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Swale {
            epsilon,
            reward,
            penalty,
        }
    }
}

impl Distance for Swale {
    fn name(&self) -> String {
        format!(
            "Swale(ε={},r={},p={})",
            self.epsilon, self.reward, self.penalty
        )
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return 0.0;
        }
        let mut prev: Vec<f64> = (0..=n).map(|j| -self.penalty * j as f64).collect();
        let mut curr = vec![0.0; n + 1];
        for i in 1..=m {
            curr[0] = -self.penalty * i as f64;
            for j in 1..=n {
                if (x[i - 1] - y[j - 1]).abs() <= self.epsilon {
                    curr[j] = prev[j - 1] + self.reward;
                } else {
                    curr[j] = (prev[j] - self.penalty).max(curr[j - 1] - self.penalty);
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        -prev[n]
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let m = x.len();
        let n = y.len();
        if m == 0 || n == 0 {
            return 0.0;
        }
        let (mut prev, mut curr) = ws.dp_rows2(n + 1);
        for (j, slot) in prev.iter_mut().enumerate() {
            *slot = -self.penalty * j as f64;
        }
        for i in 1..=m {
            curr[0] = -self.penalty * i as f64;
            for j in 1..=n {
                // tsdist-lint: allow(hot-path-bounds-check, reason = "branchy threshold recurrence; the comparison chain, not the bounds check, dominates and blocks vectorization")
                if (x[i - 1] - y[j - 1]).abs() <= self.epsilon {
                    curr[j] = prev[j - 1] + self.reward;
                } else {
                    curr[j] = (prev[j] - self.penalty).max(curr[j - 1] - self.penalty);
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        -prev[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 6] = [0.0, 0.5, 1.0, 0.5, 0.0, -0.5];
    const Y: [f64; 6] = [0.1, 0.6, 0.9, 0.4, 0.1, -0.4];

    #[test]
    fn lcss_identical_series_have_zero_distance() {
        let d = Lcss::new(0.1, 100.0).distance(&X, &X);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn lcss_close_series_match_fully_with_generous_epsilon() {
        let d = Lcss::new(0.2, 100.0).distance(&X, &Y);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn lcss_tiny_epsilon_matches_nothing() {
        let d = Lcss::new(1e-9, 100.0).distance(&X, &Y);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn lcss_distance_decreases_with_epsilon() {
        let mut last = 2.0;
        for eps in [0.01, 0.05, 0.12, 0.3, 1.0] {
            let d = Lcss::new(eps, 100.0).distance(&X, &Y);
            assert!(d <= last);
            last = d;
        }
    }

    #[test]
    fn edr_identical_is_zero_and_disjoint_is_one() {
        assert_eq!(Edr::new(0.1).distance(&X, &X), 0.0);
        let far: Vec<f64> = X.iter().map(|v| v + 100.0).collect();
        assert_eq!(Edr::new(0.1).distance(&X, &far), 1.0);
    }

    #[test]
    fn edr_counts_one_edit_for_one_outlier() {
        let mut y = X;
        y[3] = 50.0;
        let d = Edr::new(0.1).distance(&X, &y);
        assert!((d - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn erp_identical_is_zero() {
        assert_eq!(Erp::new().distance(&X, &X), 0.0);
    }

    #[test]
    fn erp_equal_length_upper_bounded_by_l1() {
        // Matching everything without gaps costs exactly L1.
        let l1: f64 = X.iter().zip(&Y).map(|(a, b)| (a - b).abs()).sum();
        let erp = Erp::new().distance(&X, &Y);
        assert!(erp <= l1 + 1e-12);
    }

    #[test]
    fn erp_triangle_inequality_spot_check() {
        let z = [0.3, -0.1, 0.8, 0.2, 0.9, -1.0];
        let dxy = Erp::new().distance(&X, &Y);
        let dyz = Erp::new().distance(&Y, &z);
        let dxz = Erp::new().distance(&X, &z);
        assert!(dxz <= dxy + dyz + 1e-9, "ERP should be a metric");
    }

    #[test]
    fn erp_gap_handling_on_unequal_lengths() {
        let short = [1.0, 2.0];
        let long = [1.0, 0.0, 2.0];
        // Optimal: match 1-1, gap the 0 (cost |0 - 0| = 0), match 2-2.
        let d = Erp::new().distance(&short, &long);
        assert!(d.abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn swale_rewards_full_matches() {
        let s = Swale::new(0.2, 1.0, 5.0);
        // All 6 points match: similarity 6, distance -6.
        assert_eq!(s.distance(&X, &Y), -6.0);
    }

    #[test]
    fn swale_penalizes_gaps() {
        let s = Swale::new(0.01, 1.0, 5.0);
        let far: Vec<f64> = X.iter().map(|v| v + 100.0).collect();
        // Nothing matches; the best alignment pays gap penalties.
        assert!(s.distance(&X, &far) > 0.0);
    }

    #[test]
    fn swale_better_match_gives_smaller_distance() {
        let s = Swale::new(0.2, 1.0, 5.0);
        let half_match: Vec<f64> = X
            .iter()
            .enumerate()
            .map(|(i, v)| if i < 3 { *v } else { v + 10.0 })
            .collect();
        assert!(s.distance(&X, &Y) < s.distance(&X, &half_match));
    }

    #[test]
    fn lcss_band_limits_matching() {
        // A large shift defeats a narrow band but not a wide one.
        let mut shifted = [0.0; 6];
        shifted[3..6].copy_from_slice(&X[0..3]);
        let narrow = Lcss::new(0.05, 5.0).distance(&X, &shifted);
        let wide = Lcss::new(0.05, 100.0).distance(&X, &shifted);
        assert!(wide <= narrow);
    }
}
