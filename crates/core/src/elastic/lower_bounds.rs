//! Lower bounds for DTW, used to prune expensive comparisons in 1-NN
//! search.
//!
//! Section 10 of the paper notes that elastic-measure runtimes can be
//! substantially improved with lower bounding. We implement the two
//! classics — LB_Kim and LB_Keogh — plus the envelope computation, and
//! the evaluation crate exposes a pruned 1-NN search built on them (an
//! ablation experiment in the bench harness measures the pruning rate).
//!
//! Both bounds hold for *squared-cost* DTW as implemented in
//! [`super::Dtw`], i.e. `lb(x, y) <= dtw(x, y)`.

/// LB_Kim (simplified 4-point form): squared differences of first and
/// last points are unavoidable costs for any warping path.
pub fn lb_kim(x: &[f64], y: &[f64]) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let first = x[0] - y[0];
    let last = x[x.len() - 1] - y[y.len() - 1];
    first * first + last * last
}

/// The Keogh warping envelope of `y` for band radius `band`:
/// `upper[i] = max(y[i-band ..= i+band])`, `lower[i] = min(...)`.
pub fn keogh_envelope(y: &[f64], band: usize) -> (Vec<f64>, Vec<f64>) {
    let n = y.len();
    let mut upper = Vec::with_capacity(n);
    let mut lower = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        let mut mx = f64::NEG_INFINITY;
        let mut mn = f64::INFINITY;
        for &v in &y[lo..=hi] {
            mx = mx.max(v);
            mn = mn.min(v);
        }
        upper.push(mx);
        lower.push(mn);
    }
    (upper, lower)
}

/// LB_Keogh: the squared distance from `x` to the envelope of `y`.
/// Requires equal lengths (as in the paper's rectangular datasets).
///
/// # Panics
/// Panics if `x.len() != upper.len()`.
pub fn lb_keogh(x: &[f64], upper: &[f64], lower: &[f64]) -> f64 {
    assert_eq!(x.len(), upper.len(), "envelope length mismatch");
    assert_eq!(x.len(), lower.len(), "envelope length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        let v = x[i];
        if v > upper[i] {
            let d = v - upper[i];
            acc += d * d;
        } else if v < lower[i] {
            let d = lower[i] - v;
            acc += d * d;
        }
    }
    acc
}

/// Convenience: LB_Keogh computing the envelope on the fly.
pub fn lb_keogh_full(x: &[f64], y: &[f64], band: usize) -> f64 {
    let (upper, lower) = keogh_envelope(y, band);
    lb_keogh(x, &upper, &lower)
}

/// LB_ERP: `|sum(x) - sum(y)|` lower-bounds the ERP distance with gap
/// reference 0 (Chen & Ng 2004) — every ERP edit script must account for
/// the total mass difference.
pub fn lb_erp(x: &[f64], y: &[f64]) -> f64 {
    (x.iter().sum::<f64>() - y.iter().sum::<f64>()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::dtw::dtw_banded;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_series(rng: &mut StdRng, m: usize) -> Vec<f64> {
        (0..m).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn envelope_brackets_the_series() {
        let y = [0.0, 3.0, -1.0, 2.0, 1.0];
        let (u, l) = keogh_envelope(&y, 1);
        for i in 0..y.len() {
            assert!(l[i] <= y[i] && y[i] <= u[i]);
        }
        // Radius 1 takes neighbour extremes.
        assert_eq!(u[0], 3.0);
        assert_eq!(l[2], -1.0);
    }

    #[test]
    fn envelope_with_zero_band_is_the_series() {
        let y = [1.0, -2.0, 0.5];
        let (u, l) = keogh_envelope(&y, 0);
        assert_eq!(u, y.to_vec());
        assert_eq!(l, y.to_vec());
    }

    #[test]
    fn lb_kim_lower_bounds_dtw() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let x = random_series(&mut rng, 24);
            let y = random_series(&mut rng, 24);
            let lb = lb_kim(&x, &y);
            let d = dtw_banded(&x, &y, 24);
            assert!(lb <= d + 1e-9, "LB_Kim {lb} > DTW {d}");
        }
    }

    #[test]
    fn lb_keogh_lower_bounds_banded_dtw() {
        let mut rng = StdRng::seed_from_u64(99);
        for band in [0usize, 2, 5, 23] {
            for _ in 0..30 {
                let x = random_series(&mut rng, 24);
                let y = random_series(&mut rng, 24);
                let lb = lb_keogh_full(&x, &y, band);
                let d = dtw_banded(&x, &y, band);
                assert!(lb <= d + 1e-9, "LB_Keogh {lb} > DTW {d} (band {band})");
            }
        }
    }

    #[test]
    fn lb_keogh_zero_inside_envelope() {
        let y = [0.0, 1.0, 2.0, 1.0, 0.0];
        // x stays within y's radius-2 envelope.
        let x = [0.5, 1.5, 1.0, 0.5, 0.5];
        assert_eq!(lb_keogh_full(&x, &y, 2), 0.0);
    }

    #[test]
    fn lb_keogh_tightens_with_smaller_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = random_series(&mut rng, 32);
        let y = random_series(&mut rng, 32);
        let wide = lb_keogh_full(&x, &y, 16);
        let narrow = lb_keogh_full(&x, &y, 2);
        assert!(narrow >= wide);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(lb_kim(&[], &[]), 0.0);
        assert_eq!(lb_erp(&[], &[]), 0.0);
    }

    #[test]
    fn lb_erp_lower_bounds_erp() {
        use crate::elastic::Erp;
        use crate::measure::Distance;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let x = random_series(&mut rng, 20);
            let y = random_series(&mut rng, 24);
            let lb = lb_erp(&x, &y);
            let d = Erp::new().distance(&x, &y);
            assert!(lb <= d + 1e-9, "LB_ERP {lb} > ERP {d}");
        }
    }
}
