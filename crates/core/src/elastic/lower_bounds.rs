//! Lower bounds for DTW, used to prune expensive comparisons in 1-NN
//! search.
//!
//! Section 10 of the paper notes that elastic-measure runtimes can be
//! substantially improved with lower bounding. We implement the two
//! classics — LB_Kim and LB_Keogh — plus the envelope computation, and
//! the evaluation crate exposes a pruned 1-NN search built on them (an
//! ablation experiment in the bench harness measures the pruning rate).
//!
//! Both bounds hold for *squared-cost* DTW as implemented in
//! [`super::Dtw`], i.e. `lb(x, y) <= dtw(x, y)`.

/// LB_Kim (simplified 4-point form): squared differences of first and
/// last points are unavoidable costs for any warping path.
pub fn lb_kim(x: &[f64], y: &[f64]) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let first = x[0] - y[0];
    let last = x[x.len() - 1] - y[y.len() - 1];
    first * first + last * last
}

/// One van Herk–Gil-Werman sliding-extreme pass: `out[i] =
/// pick(y[i-band ..= i+band])` (clamped to the array), in O(n) total
/// regardless of `band`.
///
/// The series is conceptually padded with `band` copies of `neutral` on
/// each side, partitioned into blocks of `2·band + 1`, and scanned twice
/// — a forward prefix-extreme `p` and a backward suffix-extreme `s`
/// within each block. Every window of width `2·band + 1` spans at most
/// two adjacent blocks, so its extreme is `pick(s[start], p[end])`.
/// `max`/`min` are exactly commutative and associative on non-NaN data,
/// so the result is bit-identical to the naive per-window scan.
fn sliding_extreme(
    y: &[f64],
    band: usize,
    neutral: f64,
    pick: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    let n = y.len();
    let w = 2 * band + 1;
    let len = n + 2 * band;
    let val = |j: usize| {
        if (band..band + n).contains(&j) {
            y[j - band]
        } else {
            neutral
        }
    };
    let mut p = vec![0.0f64; len];
    for j in 0..len {
        let v = val(j);
        p[j] = if j % w == 0 { v } else { pick(p[j - 1], v) };
    }
    let mut s = vec![0.0f64; len];
    for j in (0..len).rev() {
        let v = val(j);
        s[j] = if j == len - 1 || (j + 1) % w == 0 {
            v
        } else {
            pick(s[j + 1], v)
        };
    }
    (0..n).map(|i| pick(s[i], p[i + 2 * band])).collect()
}

/// The Keogh warping envelope of `y` for band radius `band`:
/// `upper[i] = max(y[i-band ..= i+band])`, `lower[i] = min(...)`.
///
/// Computed with the van Herk–Gil-Werman sliding-window algorithm —
/// O(n) independent of the band radius (the naive per-window scan is
/// O(n·band), which dominates envelope-cache builds at sakoe-chiba
/// radii of 10%+). Bit-identical to the naive scan.
pub fn keogh_envelope(y: &[f64], band: usize) -> (Vec<f64>, Vec<f64>) {
    if y.is_empty() {
        return (Vec::new(), Vec::new());
    }
    if band == 0 {
        return (y.to_vec(), y.to_vec());
    }
    let upper = sliding_extreme(y, band, f64::NEG_INFINITY, f64::max);
    let lower = sliding_extreme(y, band, f64::INFINITY, f64::min);
    (upper, lower)
}

/// LB_Keogh: the squared distance from `x` to the envelope of `y`.
/// Requires equal lengths (as in the paper's rectangular datasets).
///
/// The per-element excursion is computed branchlessly — `du = (v-u)⁺`,
/// `dl = (l-v)⁺`, at most one of which is non-zero for a valid envelope,
/// so `(du + dl)²` equals the branchy `if v > u … else if v < l …` term
/// bit-for-bit — and accumulated through the multi-lane
/// [`crate::lanes::lane_sum3`] reduction (the sum reassociates by a few
/// ULPs relative to a sequential fold; LB_Keogh is only ever compared
/// against a pruning threshold, so the shift is harmless).
///
/// # Panics
/// Panics if `x.len() != upper.len()`.
pub fn lb_keogh(x: &[f64], upper: &[f64], lower: &[f64]) -> f64 {
    assert_eq!(x.len(), upper.len(), "envelope length mismatch");
    assert_eq!(x.len(), lower.len(), "envelope length mismatch");
    crate::lanes::lane_sum3(x, upper, lower, keogh_term)
}

/// Early-abandoning [`lb_keogh`]: returns [`f64::INFINITY`] once the
/// partial sum provably reaches `cutoff` (checked per lane block),
/// otherwise the exact [`lb_keogh`] value bit-for-bit. A non-finite
/// `cutoff` disables abandoning.
///
/// # Panics
/// Panics if `x.len() != upper.len()`.
pub fn lb_keogh_upto(x: &[f64], upper: &[f64], lower: &[f64], cutoff: f64) -> f64 {
    assert_eq!(x.len(), upper.len(), "envelope length mismatch");
    assert_eq!(x.len(), lower.len(), "envelope length mismatch");
    if !cutoff.is_finite() {
        return crate::lanes::lane_sum3(x, upper, lower, keogh_term);
    }
    crate::lanes::lane_sum3_upto(x, upper, lower, cutoff, keogh_term)
}

/// The branchless LB_Keogh term: squared excursion of `v` outside
/// `[l, u]`, zero inside.
#[inline]
fn keogh_term(v: f64, u: f64, l: f64) -> f64 {
    let du = (v - u).max(0.0);
    let dl = (l - v).max(0.0);
    let d = du + dl;
    d * d
}

/// Convenience: LB_Keogh computing the envelope on the fly.
pub fn lb_keogh_full(x: &[f64], y: &[f64], band: usize) -> f64 {
    let (upper, lower) = keogh_envelope(y, band);
    lb_keogh(x, &upper, &lower)
}

/// LB_ERP: `|sum(x) - sum(y)|` lower-bounds the ERP distance with gap
/// reference 0 (Chen & Ng 2004) — every ERP edit script must account for
/// the total mass difference.
pub fn lb_erp(x: &[f64], y: &[f64]) -> f64 {
    (x.iter().sum::<f64>() - y.iter().sum::<f64>()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::dtw::dtw_banded;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_series(rng: &mut StdRng, m: usize) -> Vec<f64> {
        (0..m).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn envelope_brackets_the_series() {
        let y = [0.0, 3.0, -1.0, 2.0, 1.0];
        let (u, l) = keogh_envelope(&y, 1);
        for i in 0..y.len() {
            assert!(l[i] <= y[i] && y[i] <= u[i]);
        }
        // Radius 1 takes neighbour extremes.
        assert_eq!(u[0], 3.0);
        assert_eq!(l[2], -1.0);
    }

    #[test]
    fn envelope_with_zero_band_is_the_series() {
        let y = [1.0, -2.0, 0.5];
        let (u, l) = keogh_envelope(&y, 0);
        assert_eq!(u, y.to_vec());
        assert_eq!(l, y.to_vec());
    }

    /// The O(n·band) reference the vHGW scans must reproduce exactly.
    fn naive_envelope(y: &[f64], band: usize) -> (Vec<f64>, Vec<f64>) {
        let n = y.len();
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(band);
            let hi = (i + band).min(n - 1);
            let mut mx = f64::NEG_INFINITY;
            let mut mn = f64::INFINITY;
            for &v in &y[lo..=hi] {
                mx = mx.max(v);
                mn = mn.min(v);
            }
            upper.push(mx);
            lower.push(mn);
        }
        (upper, lower)
    }

    #[test]
    fn vhgw_envelope_is_bit_identical_to_the_naive_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 7, 8, 9, 19, 33, 128] {
            let y = random_series(&mut rng, n);
            for band in [0usize, 1, 2, 3, 5, 7, n / 2, n.saturating_sub(1), n, n + 5] {
                let (u, l) = keogh_envelope(&y, band);
                let (nu, nl) = naive_envelope(&y, band);
                for i in 0..n {
                    assert_eq!(
                        u[i].to_bits(),
                        nu[i].to_bits(),
                        "upper mismatch n={n} band={band} i={i}"
                    );
                    assert_eq!(
                        l[i].to_bits(),
                        nl[i].to_bits(),
                        "lower mismatch n={n} band={band} i={i}"
                    );
                }
            }
        }
        assert_eq!(keogh_envelope(&[], 3), (vec![], vec![]));
    }

    #[test]
    fn lane_lb_keogh_matches_branchy_reference_and_upto_contract() {
        let mut rng = StdRng::seed_from_u64(1234);
        for n in [1usize, 7, 8, 9, 19, 64, 200] {
            let x = random_series(&mut rng, n);
            let y = random_series(&mut rng, n);
            let (u, l) = keogh_envelope(&y, 3.min(n - 1));
            let lane = lb_keogh(&x, &u, &l);
            // Branchy sequential reference: per-term values are identical,
            // only the accumulation order differs.
            let mut seq = 0.0;
            for i in 0..n {
                if x[i] > u[i] {
                    let d = x[i] - u[i];
                    seq += d * d;
                } else if x[i] < l[i] {
                    let d = l[i] - x[i];
                    seq += d * d;
                }
            }
            assert!(
                (lane - seq).abs() <= 1e-12 * seq.abs().max(1.0),
                "n={n}: lane {lane} vs seq {seq}"
            );
            // Non-abandoned upto is bit-identical to the exact kernel.
            let no_abandon = lb_keogh_upto(&x, &u, &l, f64::INFINITY);
            assert_eq!(lane.to_bits(), no_abandon.to_bits(), "n={n}");
            if lane > 0.0 {
                let abandoned = lb_keogh_upto(&x, &u, &l, lane * 0.5);
                assert!(abandoned >= lane * 0.5, "n={n}");
                let kept = lb_keogh_upto(&x, &u, &l, lane * 1.5);
                assert_eq!(lane.to_bits(), kept.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn lb_kim_lower_bounds_dtw() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let x = random_series(&mut rng, 24);
            let y = random_series(&mut rng, 24);
            let lb = lb_kim(&x, &y);
            let d = dtw_banded(&x, &y, 24);
            assert!(lb <= d + 1e-9, "LB_Kim {lb} > DTW {d}");
        }
    }

    #[test]
    fn lb_keogh_lower_bounds_banded_dtw() {
        let mut rng = StdRng::seed_from_u64(99);
        for band in [0usize, 2, 5, 23] {
            for _ in 0..30 {
                let x = random_series(&mut rng, 24);
                let y = random_series(&mut rng, 24);
                let lb = lb_keogh_full(&x, &y, band);
                let d = dtw_banded(&x, &y, band);
                assert!(lb <= d + 1e-9, "LB_Keogh {lb} > DTW {d} (band {band})");
            }
        }
    }

    #[test]
    fn lb_keogh_zero_inside_envelope() {
        let y = [0.0, 1.0, 2.0, 1.0, 0.0];
        // x stays within y's radius-2 envelope.
        let x = [0.5, 1.5, 1.0, 0.5, 0.5];
        assert_eq!(lb_keogh_full(&x, &y, 2), 0.0);
    }

    #[test]
    fn lb_keogh_tightens_with_smaller_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = random_series(&mut rng, 32);
        let y = random_series(&mut rng, 32);
        let wide = lb_keogh_full(&x, &y, 16);
        let narrow = lb_keogh_full(&x, &y, 2);
        assert!(narrow >= wide);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(lb_kim(&[], &[]), 0.0);
        assert_eq!(lb_erp(&[], &[]), 0.0);
    }

    #[test]
    fn lb_erp_lower_bounds_erp() {
        use crate::elastic::Erp;
        use crate::measure::Distance;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let x = random_series(&mut rng, 20);
            let y = random_series(&mut rng, 24);
            let lb = lb_erp(&x, &y);
            let d = Erp::new().distance(&x, &y);
            assert!(lb <= d + 1e-9, "LB_ERP {lb} > ERP {d}");
        }
    }
}
