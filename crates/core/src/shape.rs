//! Shape extraction: the SBD-based centroid of k-Shape (Paparrizos &
//! Gravano 2015).
//!
//! The paper's Section 6 builds on the k-Shape line of work, which made
//! the cross-correlation measure state of the art for clustering. The
//! missing primitive there is the *shape centroid*: the series that
//! maximizes the summed squared NCC_c similarity to a set of (shift-
//! aligned, z-normalized) series. After aligning every series to a
//! reference, the centroid is the dominant eigenvector of the centered
//! Gram matrix `Q S^T S Q` — computed here with the workspace's power
//! iteration.

use tsdist_fft::cross_correlation;
use tsdist_linalg::{dominant_eigenpair, Matrix};

/// Aligns `x` to `reference` by the shift maximizing their
/// cross-correlation; out-of-range positions are zero-filled (the SBD
/// convention). Both series should be z-normalized for meaningful lags.
pub fn align_to(reference: &[f64], x: &[f64]) -> Vec<f64> {
    let m = x.len();
    if m == 0 || reference.is_empty() {
        return x.to_vec();
    }
    let cc = cross_correlation(reference, x);
    let Some((argmax, _)) = cc.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
        return x.to_vec();
    };
    // Shift s: reference[i] pairs with x[i - s].
    let s = argmax as isize - (x.len() as isize - 1);
    let mut out = vec![0.0; m];
    for (i, slot) in out.iter_mut().enumerate() {
        let j = i as isize - s;
        if (0..m as isize).contains(&j) {
            *slot = x[j as usize];
        }
    }
    out
}

/// One round of k-Shape shape extraction: aligns every series to
/// `reference`, then returns the z-normalized dominant eigenvector of the
/// centered Gram matrix — the series most correlated with all aligned
/// members. The sign is fixed to correlate positively with the
/// reference.
///
/// # Panics
/// Panics if `series` is empty or lengths are inconsistent.
pub fn shape_extraction(series: &[Vec<f64>], reference: &[f64]) -> Vec<f64> {
    assert!(!series.is_empty(), "cannot extract a shape from nothing");
    let m = reference.len();
    assert!(series.iter().all(|s| s.len() == m), "length mismatch");

    // Aligned, stacked series.
    let aligned: Vec<Vec<f64>> = series.iter().map(|x| align_to(reference, x)).collect();

    // M = S^T S (m x m), then center: Q M Q with Q = I - (1/m) 1 1^T.
    let mut gram = Matrix::zeros(m, m);
    for s in &aligned {
        for i in 0..m {
            // tsdist-lint: allow(float-total-order, reason = "exact-zero sparsity skip: skipping exact zeros cannot change the Gram sums")
            if s[i] == 0.0 {
                continue;
            }
            for j in 0..m {
                gram[(i, j)] += s[i] * s[j];
            }
        }
    }
    let centered = center_both_sides(&gram);
    let (_, mut centroid) = dominant_eigenpair(&centered, 300);

    // Orient towards the reference and z-normalize.
    let dot: f64 = centroid.iter().zip(reference).map(|(a, b)| a * b).sum();
    if dot < 0.0 {
        for v in centroid.iter_mut() {
            *v = -*v;
        }
    }
    znorm(&mut centroid);
    centroid
}

/// Iterated shape extraction starting from the first series, the way
/// k-Shape refines a cluster centroid.
///
/// # Panics
///
/// Panics when `series` is empty — there is no shape of nothing.
pub fn kshape_centroid(series: &[Vec<f64>], iterations: usize) -> Vec<f64> {
    assert!(!series.is_empty(), "cannot extract a shape from nothing");
    let mut reference = {
        let mut r = series[0].clone();
        znorm(&mut r);
        r
    };
    for _ in 0..iterations.max(1) {
        reference = shape_extraction(series, &reference);
    }
    reference
}

/// `Q A Q` with `Q = I - (1/m) 1 1^T` (projects out the mean on both
/// sides).
fn center_both_sides(a: &Matrix) -> Matrix {
    let m = a.rows();
    let mf = m as f64;
    // Row and column means, grand mean.
    let mut row_mean = vec![0.0; m];
    let mut col_mean = vec![0.0; m];
    let mut grand = 0.0;
    for i in 0..m {
        for j in 0..m {
            let v = a[(i, j)];
            row_mean[i] += v;
            col_mean[j] += v;
            grand += v;
        }
    }
    for v in row_mean.iter_mut() {
        *v /= mf;
    }
    for v in col_mean.iter_mut() {
        *v /= mf;
    }
    grand /= mf * mf;
    Matrix::from_fn(m, m, |i, j| a[(i, j)] - row_mean[i] - col_mean[j] + grand)
}

fn znorm(x: &mut [f64]) {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let sd = (x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
        .sqrt()
        .max(1e-12);
    for v in x.iter_mut() {
        *v = (*v - mean) / sd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;
    use crate::normalization::Normalization;
    use crate::sliding::CrossCorrelation;

    fn bump(m: usize, center: f64) -> Vec<f64> {
        Normalization::ZScore.apply(
            &(0..m)
                .map(|i| (-((i as f64 - center) / 4.0).powi(2) / 2.0).exp())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn alignment_moves_the_peak_onto_the_reference() {
        let reference = bump(64, 20.0);
        let shifted = bump(64, 35.0);
        let aligned = align_to(&reference, &shifted);
        let peak = aligned
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak.abs_diff(20) <= 1, "peak at {peak}, expected ~20");
    }

    #[test]
    fn alignment_of_identical_series_is_identity() {
        let x = bump(32, 12.0);
        let aligned = align_to(&x, &x);
        for (a, b) in aligned.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn centroid_of_shifted_copies_matches_the_shape() {
        // Several shifted copies of the same bump: the extracted shape
        // should have SBD ~ 0 to each member.
        let members: Vec<Vec<f64>> = [16.0, 22.0, 28.0, 34.0, 40.0]
            .iter()
            .map(|&c| bump(64, c))
            .collect();
        let centroid = kshape_centroid(&members, 3);
        let sbd = CrossCorrelation::sbd();
        for m in &members {
            let d = sbd.distance(&centroid, m);
            assert!(d < 0.12, "centroid too far from a member: {d}");
        }
    }

    #[test]
    fn centroid_is_z_normalized() {
        let members: Vec<Vec<f64>> = [10.0, 20.0, 30.0].iter().map(|&c| bump(48, c)).collect();
        let c = kshape_centroid(&members, 2);
        let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
        let var: f64 = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / c.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_separates_two_different_shapes() {
        // The centroid of class A bumps stays closer to A members than to
        // a sawtooth.
        let a: Vec<Vec<f64>> = [15.0, 25.0, 35.0].iter().map(|&c| bump(64, c)).collect();
        let saw = Normalization::ZScore.apply(&(0..64).map(|i| (i % 8) as f64).collect::<Vec<_>>());
        let centroid = kshape_centroid(&a, 2);
        let sbd = CrossCorrelation::sbd();
        assert!(sbd.distance(&centroid, &a[0]) < sbd.distance(&centroid, &saw));
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_input_panics() {
        let _ = kshape_centroid(&[], 1);
    }
}
