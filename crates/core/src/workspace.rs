//! Reusable scratch memory for the allocation-free distance entry points.
//!
//! Every elastic and kernel measure in this crate runs a rolling dynamic
//! program over a handful of rows, and the sliding/kernel measures built
//! on cross-correlation need FFT buffers. Allocating those per call is
//! the dominant non-arithmetic cost when building the paper's train×train
//! and test×train matrices (millions of calls per dataset), so the batch
//! engine in `tsdist-eval` owns one [`Workspace`] per worker thread and
//! passes it to [`crate::measure::Distance::distance_ws`] /
//! [`crate::measure::Kernel::log_kernel_ws`].
//!
//! A [`Workspace`] is a set of independent arenas:
//!
//! * [`Workspace::dp_rows2`] / [`Workspace::dp_rows4`] — `f64` DP rows,
//! * [`Workspace::int_rows2`] — `u32` DP rows (LCSS/EDR),
//! * [`Workspace::take_aux`] / [`Workspace::take_aux2`] — owned `f64`
//!   buffers for series-length data (derivatives, weights, rescaled
//!   copies) that must stay alive *across* a nested `distance_ws` call,
//! * [`Workspace::cc_scratch`] — FFT scratch for cross-correlation.
//!
//! Buffers only ever grow; a workspace reused across a matrix row settles
//! at the high-water mark of the measures it served. The arenas hand out
//! uncleared memory — every DP initializes its rows explicitly, which the
//! `ws_equivalence` suite verifies by bit-comparing against the
//! allocating paths.

use tsdist_fft::CcScratch;

/// Reusable scratch arenas for [`crate::measure::Distance::distance_ws`].
///
/// Cheap to construct; designed to be created once per worker thread and
/// reused for every pairwise call that thread performs.
#[derive(Default)]
pub struct Workspace {
    dp: Vec<f64>,
    idp: Vec<u32>,
    aux: Vec<f64>,
    aux2: Vec<f64>,
    cc: CcScratch,
}

impl Workspace {
    /// An empty workspace; arenas grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Two `f64` DP rows of length `len`, carved from the shared arena.
    ///
    /// Contents are unspecified (whatever a previous call left behind);
    /// callers must initialize every cell they read.
    pub fn dp_rows2(&mut self, len: usize) -> (&mut [f64], &mut [f64]) {
        if self.dp.len() < 2 * len {
            self.dp.resize(2 * len, 0.0);
        }
        let (a, b) = self.dp[..2 * len].split_at_mut(len);
        (a, b)
    }

    /// Four `f64` DP rows of length `len` (KDTW's paired DPs).
    ///
    /// Contents are unspecified; callers must initialize every cell they
    /// read.
    pub fn dp_rows4(&mut self, len: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        if self.dp.len() < 4 * len {
            self.dp.resize(4 * len, 0.0);
        }
        let (a, rest) = self.dp[..4 * len].split_at_mut(len);
        let (b, rest) = rest.split_at_mut(len);
        let (c, d) = rest.split_at_mut(len);
        (a, b, c, d)
    }

    /// Three diagonal rows of length `rows` plus one `extra` slice, carved
    /// from the shared `f64` DP arena — the layout of the anti-diagonal
    /// wavefront DP kernels (current / previous / second-previous diagonal,
    /// plus measure-specific scratch such as a reversed series or gathered
    /// weights; callers split `extra` further with `split_at_mut`).
    ///
    /// Uses only the `dp` arena, so [`Workspace::take_aux`] /
    /// [`Workspace::take_aux2`] stay free for callers (DDTW derivatives,
    /// WDTW weights) that wrap a wavefront call. Contents are unspecified;
    /// callers must initialize every cell they read.
    pub fn diag_scratch(
        &mut self,
        rows: usize,
        extra: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        let total = 3 * rows + extra;
        if self.dp.len() < total {
            self.dp.resize(total, 0.0);
        }
        let (a, rest) = self.dp[..total].split_at_mut(rows);
        let (b, rest) = rest.split_at_mut(rows);
        let (c, extra) = rest.split_at_mut(rows);
        (a, b, c, extra)
    }

    /// Two `u32` DP rows of length `len` (LCSS/EDR counters).
    ///
    /// Contents are unspecified; callers must initialize every cell they
    /// read.
    pub fn int_rows2(&mut self, len: usize) -> (&mut [u32], &mut [u32]) {
        if self.idp.len() < 2 * len {
            self.idp.resize(2 * len, 0);
        }
        let (a, b) = self.idp[..2 * len].split_at_mut(len);
        (a, b)
    }

    /// Takes ownership of the first auxiliary buffer, cleared but with its
    /// capacity intact. Return it with [`Workspace::put_aux`] so the
    /// capacity is reused by the next call.
    ///
    /// The take/put protocol exists so a measure can hold derived series
    /// (e.g. DDTW's derivatives) while *also* lending the workspace to a
    /// nested `distance_ws` call.
    pub fn take_aux(&mut self) -> Vec<f64> {
        let mut buf = std::mem::take(&mut self.aux);
        buf.clear();
        buf
    }

    /// Returns a buffer taken with [`Workspace::take_aux`].
    pub fn put_aux(&mut self, buf: Vec<f64>) {
        if buf.capacity() > self.aux.capacity() {
            self.aux = buf;
        }
    }

    /// Takes ownership of the second auxiliary buffer (for measures that
    /// need two derived series at once); see [`Workspace::take_aux`].
    pub fn take_aux2(&mut self) -> Vec<f64> {
        let mut buf = std::mem::take(&mut self.aux2);
        buf.clear();
        buf
    }

    /// Returns a buffer taken with [`Workspace::take_aux2`].
    pub fn put_aux2(&mut self, buf: Vec<f64>) {
        if buf.capacity() > self.aux2.capacity() {
            self.aux2 = buf;
        }
    }

    /// The FFT cross-correlation scratch (NCC family, SINK).
    pub fn cc_scratch(&mut self) -> &mut CcScratch {
        &mut self.cc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_rows_are_disjoint_and_right_sized() {
        let mut ws = Workspace::new();
        let (a, b) = ws.dp_rows2(17);
        assert_eq!(a.len(), 17);
        assert_eq!(b.len(), 17);
        a.fill(1.0);
        b.fill(2.0);
        let (a, b) = ws.dp_rows2(17);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn rows_grow_and_shrink_requests_reuse_the_arena() {
        let mut ws = Workspace::new();
        let (a, _) = ws.dp_rows2(8);
        a[0] = 42.0;
        let (a, b, c, d) = ws.dp_rows4(16);
        assert_eq!(a.len() + b.len() + c.len() + d.len(), 64);
        let (a, _) = ws.dp_rows2(4);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn diag_scratch_is_disjoint_and_right_sized() {
        let mut ws = Workspace::new();
        let (a, b, c, extra) = ws.diag_scratch(11, 30);
        assert_eq!(a.len(), 11);
        assert_eq!(b.len(), 11);
        assert_eq!(c.len(), 11);
        assert_eq!(extra.len(), 30);
        a.fill(1.0);
        b.fill(2.0);
        c.fill(3.0);
        extra.fill(4.0);
        let (a, b, c, extra) = ws.diag_scratch(11, 30);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
        assert!(c.iter().all(|&v| v == 3.0));
        assert!(extra.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn int_rows_are_disjoint() {
        let mut ws = Workspace::new();
        let (a, b) = ws.int_rows2(9);
        a.fill(7);
        b.fill(9);
        assert_ne!(a[8], b[0]);
    }

    #[test]
    fn aux_take_put_preserves_capacity() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_aux();
        buf.extend_from_slice(&[1.0; 100]);
        let cap = buf.capacity();
        ws.put_aux(buf);
        let buf = ws.take_aux();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= cap);
    }

    #[test]
    fn aux_buffers_are_independent() {
        let mut ws = Workspace::new();
        let mut a = ws.take_aux();
        let mut b = ws.take_aux2();
        a.push(1.0);
        b.push(2.0);
        ws.put_aux(a);
        ws.put_aux2(b);
        assert!(ws.take_aux().capacity() >= 1);
    }
}
