//! The 8 time-series normalization methods of Section 4.
//!
//! Seven of the methods are per-series transformations; the eighth,
//! AdaptiveScaling (Eq. 7), is *pairwise* — it rescales one series by the
//! optimal factor for each comparison — and is therefore applied by
//! wrapping a distance measure ([`AdaptiveScaled`]) rather than by
//! preprocessing.

use crate::measure::Distance;

/// A per-series or pairwise normalization method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Normalization {
    /// Z-score: zero mean, unit variance (Eq. 1). The literature default.
    ZScore,
    /// Min-max scaling into `[0, 1]` (Eq. 2).
    MinMax,
    /// Min-max scaling into an arbitrary `[a, b]` (Eq. 3); used when a
    /// measure cannot deal with zeros.
    MinMaxRange(f64, f64),
    /// Mean normalization: z-score numerator over min-max denominator (Eq. 4).
    MeanNorm,
    /// Division by the median (Eq. 5).
    MedianNorm,
    /// Scaling to unit Euclidean norm (Eq. 6).
    UnitLength,
    /// Pairwise adaptive scaling (Eq. 7); see [`AdaptiveScaled`].
    AdaptiveScaling,
    /// Logistic (sigmoid) activation (Eq. 8).
    Logistic,
    /// Hyperbolic tangent activation (Eq. 9).
    Tanh,
}

impl Normalization {
    /// The 8 methods evaluated in the paper (with `MinMax` standing in for
    /// the `[a, b]` family at `a = 0, b = 1`).
    pub const ALL: [Normalization; 8] = [
        Normalization::ZScore,
        Normalization::MinMax,
        Normalization::MeanNorm,
        Normalization::MedianNorm,
        Normalization::UnitLength,
        Normalization::AdaptiveScaling,
        Normalization::Logistic,
        Normalization::Tanh,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Normalization::ZScore => "z-score".into(),
            Normalization::MinMax => "MinMax".into(),
            Normalization::MinMaxRange(a, b) => format!("MinMax[{a},{b}]"),
            Normalization::MeanNorm => "MeanNorm".into(),
            Normalization::MedianNorm => "MedianNorm".into(),
            Normalization::UnitLength => "UnitLength".into(),
            Normalization::AdaptiveScaling => "Adaptive".into(),
            Normalization::Logistic => "Logistic".into(),
            Normalization::Tanh => "Tanh".into(),
        }
    }

    /// Whether this method is pairwise (applied per comparison) instead of
    /// per series.
    pub fn is_pairwise(&self) -> bool {
        matches!(self, Normalization::AdaptiveScaling)
    }

    /// Applies the normalization to one series.
    ///
    /// For [`Normalization::AdaptiveScaling`] this is the identity: the
    /// scaling happens per comparison via [`AdaptiveScaled`].
    ///
    /// Degenerate inputs (constant series for z-score/MinMax/MeanNorm,
    /// zero-norm for UnitLength, zero median for MedianNorm) return the
    /// mean-centred or unchanged series instead of dividing by zero.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Normalization::ZScore => {
                let (mean, sd) = mean_std(x);
                if sd <= 0.0 {
                    x.iter().map(|v| v - mean).collect()
                } else {
                    x.iter().map(|v| (v - mean) / sd).collect()
                }
            }
            Normalization::MinMax => Normalization::MinMaxRange(0.0, 1.0).apply(x),
            Normalization::MinMaxRange(a, b) => {
                let (lo, hi) = min_max(x);
                let range = hi - lo;
                if range <= 0.0 {
                    vec![*a; x.len()]
                } else {
                    x.iter().map(|v| a + (v - lo) * (b - a) / range).collect()
                }
            }
            Normalization::MeanNorm => {
                let (mean, _) = mean_std(x);
                let (lo, hi) = min_max(x);
                let range = hi - lo;
                if range <= 0.0 {
                    x.iter().map(|v| v - mean).collect()
                } else {
                    x.iter().map(|v| (v - mean) / range).collect()
                }
            }
            Normalization::MedianNorm => {
                let med = median(x);
                if med.abs() <= f64::EPSILON {
                    x.to_vec()
                } else {
                    x.iter().map(|v| v / med).collect()
                }
            }
            Normalization::UnitLength => {
                let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm <= 0.0 {
                    x.to_vec()
                } else {
                    x.iter().map(|v| v / norm).collect()
                }
            }
            Normalization::AdaptiveScaling => x.to_vec(),
            Normalization::Logistic => x.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect(),
            Normalization::Tanh => x.iter().map(|v| v.tanh()).collect(),
        }
    }
}

/// Mean and (population) standard deviation of a series.
pub fn mean_std(x: &[f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn min_max(x: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Wraps a distance with the pairwise AdaptiveScaling method (Eq. 7): each
/// comparison first rescales `y` by the least-squares-optimal factor
/// `a* = (x·y) / (y·y)` — the scale under which `a*·y` best matches `x` —
/// and then measures `d(x, a*·y)` (Chu & Wong 1999).
pub struct AdaptiveScaled<D: Distance> {
    inner: D,
}

impl<D: Distance> AdaptiveScaled<D> {
    /// Wraps `inner` with adaptive scaling.
    pub fn new(inner: D) -> Self {
        AdaptiveScaled { inner }
    }
}

impl<D: Distance> Distance for AdaptiveScaled<D> {
    fn name(&self) -> String {
        format!("Adaptive({})", self.inner.name())
    }

    fn lanes_hint(&self) -> usize {
        // Scaling is a cheap prologue; the inner measure's kernel does
        // the heavy lifting.
        self.inner.lanes_hint()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let xy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|b| b * b).sum();
        let a = if yy > 0.0 { xy / yy } else { 1.0 };
        let scaled: Vec<f64> = y.iter().map(|v| a * v).collect();
        self.inner.distance(x, &scaled)
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut crate::Workspace) -> f64 {
        let xy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|b| b * b).sum();
        let a = if yy > 0.0 { xy / yy } else { 1.0 };
        let mut scaled = ws.take_aux();
        scaled.extend(y.iter().map(|v| a * v));
        let d = self.inner.distance_ws(x, &scaled, ws);
        ws.put_aux(scaled);
        d
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut crate::Workspace, cutoff: f64) -> f64 {
        // The scaling is cutoff-independent; the inner measure prunes
        // against the same cutoff on the scaled pair (same `a` and the
        // same scaled values as the exact path, so the contract holds).
        let xy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|b| b * b).sum();
        let a = if yy > 0.0 { xy / yy } else { 1.0 };
        let mut scaled = ws.take_aux();
        scaled.extend(y.iter().map(|v| a * v));
        let d = self.inner.distance_upto(x, &scaled, ws, cutoff);
        ws.put_aux(scaled);
        d
    }

    fn is_symmetric(&self) -> bool {
        // The scaling factor is fit to the second argument only.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<f64> {
        vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    }

    #[test]
    fn zscore_yields_zero_mean_unit_variance() {
        let z = Normalization::ZScore.apply(&series());
        let (mean, sd) = mean_std(&z);
        assert!(mean.abs() < 1e-12);
        assert!((sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_of_constant_series_is_zero() {
        let z = Normalization::ZScore.apply(&[5.0; 4]);
        assert_eq!(z, vec![0.0; 4]);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let z = Normalization::MinMax.apply(&series());
        let lo = z.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn minmax_range_maps_to_ab() {
        let z = Normalization::MinMaxRange(1.0, 2.0).apply(&series());
        let lo = z.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn meannorm_is_zero_mean_and_bounded_by_one() {
        let z = Normalization::MeanNorm.apply(&series());
        let (mean, _) = mean_std(&z);
        assert!(mean.abs() < 1e-12);
        let spread = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - z.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((spread - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_length_has_unit_norm() {
        let z = Normalization::UnitLength.apply(&series());
        let norm: f64 = z.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_norm_divides_by_median() {
        let z = Normalization::MedianNorm.apply(&[2.0, 4.0, 6.0]);
        assert_eq!(z, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn median_of_even_length_is_midpoint() {
        let z = Normalization::MedianNorm.apply(&[1.0, 3.0, 2.0, 4.0]);
        // median = 2.5
        assert_eq!(z, vec![0.4, 1.2, 0.8, 1.6]);
    }

    #[test]
    fn logistic_maps_into_unit_interval() {
        let z = Normalization::Logistic.apply(&[-100.0, 0.0, 100.0]);
        assert!(z[0] < 1e-10);
        assert!((z[1] - 0.5).abs() < 1e-12);
        assert!(z[2] > 1.0 - 1e-10);
    }

    #[test]
    fn tanh_matches_formula() {
        // (e^{2x} - 1) / (e^{2x} + 1) == tanh(x).
        for &x in &[-2.0f64, -0.5, 0.0, 0.3, 1.7] {
            let formula = ((2.0 * x).exp() - 1.0) / ((2.0 * x).exp() + 1.0);
            let got = Normalization::Tanh.apply(&[x])[0];
            assert!((got - formula).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_is_invariant_to_scale_and_translation() {
        let x = series();
        let y: Vec<f64> = x.iter().map(|v| 3.5 * v - 7.0).collect();
        let zx = Normalization::ZScore.apply(&x);
        let zy = Normalization::ZScore.apply(&y);
        for (a, b) in zx.iter().zip(&zy) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn adaptive_scaling_makes_scaled_copies_identical() {
        struct Ed;
        impl Distance for Ed {
            fn name(&self) -> String {
                "ED".into()
            }
            fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
                x.iter()
                    .zip(y)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            }
        }
        let d = AdaptiveScaled::new(Ed);
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0]; // x scaled by 2
        assert!(d.distance(&x, &y) < 1e-12);
        // And it is not symmetric in general, but still finite.
        assert!(d.distance(&y, &x).is_finite());
    }

    #[test]
    fn pairwise_flag() {
        assert!(Normalization::AdaptiveScaling.is_pairwise());
        assert!(!Normalization::ZScore.is_pairwise());
        // AdaptiveScaling's per-series application is the identity.
        assert_eq!(
            Normalization::AdaptiveScaling.apply(&[1.0, 2.0]),
            vec![1.0, 2.0]
        );
    }

    #[test]
    fn median_with_nan_is_deterministic_instead_of_panicking() {
        // total_cmp sorts NaN above every finite value, so the median of
        // [1, 2, 3, 4, NaN] is 3.
        let z = Normalization::MedianNorm.apply(&[1.0, 2.0, 3.0, 4.0, f64::NAN]);
        assert!((z[0] - 1.0 / 3.0).abs() < 1e-12);
    }
}
