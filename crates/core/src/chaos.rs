//! Deterministic fault injection for robustness testing.
//!
//! [`ChaosDistance`] wraps any [`Distance`] and injects failures —
//! panics, non-finite return values, or artificial delays — on a
//! deterministic call schedule. The fault-tolerant cell runner in
//! `tsdist-eval` is tested against these wrappers: a study whose registry
//! includes chaos entrants must isolate their failures while every
//! healthy entrant produces bit-identical results to a chaos-free run.
//!
//! This module is test support. It lives in the library (rather than
//! `#[cfg(test)]`) so downstream crates' fault-injection suites can use
//! it, but it has no place in production measure registries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::measure::Distance;
use crate::workspace::Workspace;

/// The failure a [`ChaosDistance`] injects when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Panic with a recognizable message.
    Panic,
    /// Return this value instead of the real distance (use `f64::NAN` or
    /// `f64::INFINITY` to simulate a poisoned measure).
    Value(f64),
    /// Sleep for this long, then return the real distance (simulates a
    /// stalling kernel; long enough schedules trip cell deadlines).
    Delay(Duration),
}

/// When the fault fires, as a function of the 0-based call counter. The
/// counter is shared across threads (one atomic per wrapper), so the
/// *number* of faults is deterministic even under a parallel matrix
/// engine, though which pair observes them may vary with thread timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Every call faults.
    Always,
    /// Only the first `n` calls fault (with `n = 1` and a retrying
    /// runner, the first attempt fails and the retry runs clean).
    FirstN(usize),
    /// Every `n`-th call faults (calls `n-1`, `2n-1`, ...).
    EveryNth(usize),
}

impl Schedule {
    /// Whether the fault fires on 0-based call `index`.
    pub fn fires(&self, index: usize) -> bool {
        match *self {
            Schedule::Always => true,
            Schedule::FirstN(n) => index < n,
            Schedule::EveryNth(n) => n > 0 && (index + 1).is_multiple_of(n),
        }
    }
}

/// A [`Distance`] wrapper that injects faults on a deterministic
/// schedule. See the [module docs](self) for intent.
pub struct ChaosDistance<D> {
    inner: D,
    fault: Fault,
    schedule: Schedule,
    calls: AtomicUsize,
}

impl<D: Distance> ChaosDistance<D> {
    /// Wraps `inner`, injecting `fault` whenever `schedule` fires.
    pub fn new(inner: D, fault: Fault, schedule: Schedule) -> Self {
        ChaosDistance {
            inner,
            fault,
            schedule,
            calls: AtomicUsize::new(0),
        }
    }

    /// Number of distance calls made so far (fired or not).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }

    /// Claims the next call slot; returns the injected value when the
    /// schedule fires on it (panicking / sleeping as configured).
    fn inject(&self) -> Option<f64> {
        let index = self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.schedule.fires(index) {
            return None;
        }
        match self.fault {
            // tsdist-lint: allow(no-unwrap-in-lib, reason = "chaos fault injector: the scheduled panic is the fault being injected")
            Fault::Panic => panic!("chaos: injected panic at call {index}"),
            Fault::Value(v) => Some(v),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }
}

impl<D: Distance> Distance for ChaosDistance<D> {
    fn name(&self) -> String {
        format!("Chaos({})", self.inner.name())
    }

    fn lanes_hint(&self) -> usize {
        self.inner.lanes_hint()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        match self.inject() {
            Some(v) => v,
            None => self.inner.distance(x, y),
        }
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        match self.inject() {
            Some(v) => v,
            None => self.inner.distance_ws(x, y, ws),
        }
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        match self.inject() {
            Some(v) => v,
            None => self.inner.distance_upto(x, y, ws, cutoff),
        }
    }

    fn is_symmetric(&self) -> bool {
        // Force the full matrix (no mirror reuse) so the schedule sees
        // every pair; a mirrored triangle would halve the call count.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::Euclidean;

    #[test]
    fn schedule_semantics() {
        assert!(Schedule::Always.fires(0) && Schedule::Always.fires(99));
        assert!(Schedule::FirstN(2).fires(1) && !Schedule::FirstN(2).fires(2));
        let every3 = Schedule::EveryNth(3);
        let fired: Vec<usize> = (0..9).filter(|i| every3.fires(*i)).collect();
        assert_eq!(fired, vec![2, 5, 8]);
        assert!(!Schedule::EveryNth(0).fires(0));
    }

    #[test]
    fn value_fault_replaces_then_passes_through() {
        let d = ChaosDistance::new(Euclidean, Fault::Value(f64::NAN), Schedule::FirstN(1));
        let x = [1.0, 2.0];
        let y = [2.0, 4.0];
        assert!(d.distance(&x, &y).is_nan());
        let clean = d.distance(&x, &y);
        assert_eq!(clean, Euclidean.distance(&x, &y));
        assert_eq!(d.calls(), 2);
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_fault_panics() {
        let d = ChaosDistance::new(Euclidean, Fault::Panic, Schedule::Always);
        let _ = d.distance(&[0.0], &[1.0]);
    }

    #[test]
    fn delay_fault_still_returns_the_real_value() {
        let d = ChaosDistance::new(
            Euclidean,
            Fault::Delay(Duration::from_millis(1)),
            Schedule::Always,
        );
        let x = [3.0, 1.0];
        let y = [0.0, 2.0];
        assert_eq!(d.distance(&x, &y), Euclidean.distance(&x, &y));
    }

    #[test]
    fn workspace_path_shares_the_counter() {
        let d = ChaosDistance::new(Euclidean, Fault::Value(-1.0), Schedule::FirstN(1));
        let mut ws = Workspace::new();
        assert_eq!(d.distance_ws(&[0.0], &[1.0], &mut ws), -1.0);
        assert_eq!(d.distance(&[0.0], &[1.0]), 1.0);
    }
}
