//! The L1 family: six measures built on absolute differences.
//!
//! This is the family the paper's Table 2 crowns: Lorentzian (the natural
//! logarithm of L1) ranks first among lock-step measures under z-score,
//! and Manhattan-style measures significantly outperform ED — the
//! heavy-tailed-noise robustness of L1 at work.

use super::{lockstep_measure, safe_div, zip_sum, zip_sum_upto};

lockstep_measure!(
    /// Sørensen distance: `sum |x-y| / sum (x+y)`.
    Sorensen,
    "Sorensen",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, |a, b| a + b)
    )
);

lockstep_measure!(
    /// Gower distance: the mean absolute difference, `(1/m) sum |x-y|`.
    Gower,
    "Gower",
    metric All,
    |x, y| zip_sum(x, y, |a, b| (a - b).abs()) / x.len().max(1) as f64
);

lockstep_measure!(
    /// Soergel distance: `sum |x-y| / sum max(x,y)`. One of the paper's
    /// newly surfaced winners — but only under MinMax normalization.
    ///
    /// On density-like data (every coordinate `>= EPS`) the denominator
    /// guard never fires and Soergel is the Ruzicka/Jaccard metric, so it
    /// declares `MetricRegime::Positive`.
    Soergel,
    "Soergel",
    metric Positive,
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, f64::max)
    )
);

lockstep_measure!(
    /// Kulczynski distance: `sum |x-y| / sum min(x,y)`.
    KulczynskiD,
    "Kulczynski-d",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, f64::min)
    )
);

lockstep_measure!(
    upto
    /// Canberra distance: `sum |x-y| / (x+y)` — a per-coordinate weighted L1.
    ///
    /// Early-abandonable *when every denominator is non-negative*: the
    /// guarded terms `|x-y| / (x+y)` are then all `>= 0` and partial sums
    /// are monotone. On data where some `x_i + y_i < 0` (e.g. z-scored
    /// series) [`safe_div`] yields negative terms, so the upto path
    /// detects that with a vectorizable prescan and falls back to the
    /// exact sum — still contract-correct, just without abandoning.
    ///
    /// Canberra is the classical metric on non-negative reals, but the
    /// [`safe_div`] guard bends the triangle inequality for coordinate
    /// pairs summing below `EPS` (e.g. `d(0, ε) > d(0, ε/2) + d(ε/2, ε)`
    /// under a guarded denominator). `MetricRegime::Positive` — every
    /// coordinate `>= EPS` — is exactly the regime where the guard never
    /// fires and the classical proof applies, so the pivot layer engages
    /// there and nowhere else.
    Canberra,
    "Canberra",
    metric Positive,
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b).abs(), a + b)),
    |x, y, cutoff| {
        let n = x.len().min(y.len());
        let all_nonneg = x[..n].iter().zip(&y[..n]).all(|(&a, &b)| a + b >= 0.0);
        if all_nonneg {
            zip_sum_upto(x, y, cutoff, |a, b| safe_div((a - b).abs(), a + b))
        } else {
            zip_sum(x, y, |a, b| safe_div((a - b).abs(), a + b))
        }
    }
);

lockstep_measure!(
    upto
    /// Lorentzian distance: `sum ln(1 + |x-y|)` — the log-compressed L1
    /// that Section 5 identifies as the new state-of-the-art lock-step
    /// measure.
    ///
    /// Early-abandonable: `ln(1 + |x-y|) >= 0`, so partial sums are
    /// monotone. (Canberra abandons too, but only after a prescan proves
    /// its denominators non-negative — see its definition above.)
    ///
    /// A metric on all of `R^n`: `t ↦ ln(1 + t)` is concave, increasing,
    /// and zero at zero, hence subadditive, so each coordinate term is a
    /// metric and their sum is too — `metric All`.
    Lorentzian,
    "Lorentzian",
    metric All,
    |x, y| zip_sum(x, y, |a, b| (1.0 + (a - b).abs()).ln()),
    |x, y, cutoff| zip_sum_upto(x, y, cutoff, |a, b| (1.0 + (a - b).abs()).ln())
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn sorensen_hand_value() {
        // |diffs| = .1, .1, 0 -> 0.2; sums = .3 + 1.1 + .6 = 2.0
        assert!((Sorensen.distance(&X, &Y) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gower_is_mean_absolute_difference() {
        assert!((Gower.distance(&X, &Y) - 0.2 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn soergel_hand_value() {
        // max sums: .2 + .6 + .3 = 1.1
        assert!((Soergel.distance(&X, &Y) - 0.2 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn kulczynski_hand_value() {
        // min sums: .1 + .5 + .3 = 0.9
        assert!((KulczynskiD.distance(&X, &Y) - 0.2 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn canberra_hand_value() {
        let expected = 0.1 / 0.3 + 0.1 / 1.1 + 0.0;
        assert!((Canberra.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn lorentzian_hand_value() {
        let expected = 1.1f64.ln() * 2.0;
        assert!((Lorentzian.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn lorentzian_compresses_outliers_relative_to_l1() {
        // An outlier dominates L1 but is log-compressed in Lorentzian:
        // the ratio outlier/inlier distance is much larger under L1.
        let base = [0.0; 8];
        let inlier = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let mut outlier = [0.0; 8];
        outlier[0] = 4.0; // same L1 mass as inlier
        let l1_ratio = super::super::CityBlock.distance(&base, &outlier)
            / super::super::CityBlock.distance(&base, &inlier);
        let lor_ratio = Lorentzian.distance(&base, &outlier) / Lorentzian.distance(&base, &inlier);
        assert!((l1_ratio - 1.0).abs() < 1e-12);
        assert!(lor_ratio < 0.55, "Lorentzian should discount the spike");
    }

    #[test]
    fn all_are_symmetric() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(Sorensen),
            Box::new(Gower),
            Box::new(Soergel),
            Box::new(KulczynskiD),
            Box::new(Canberra),
            Box::new(Lorentzian),
        ];
        for m in measures {
            let a = m.distance(&X, &Y);
            let b = m.distance(&Y, &X);
            assert!((a - b).abs() < 1e-12, "{} not symmetric", m.name());
        }
    }

    #[test]
    fn canberra_upto_abandons_on_positive_data_and_stays_exact_on_zscored() {
        use crate::workspace::Workspace;
        let mut ws = Workspace::default();

        // Positive regime: prescan passes, so a cutoff below the true
        // distance must abandon (INF) and a cutoff above it must return
        // the exact bits.
        let xp: Vec<f64> = (0..40)
            .map(|i| 0.1 + (i as f64 * 0.7).sin().abs())
            .collect();
        let yp: Vec<f64> = (0..40)
            .map(|i| 0.1 + (i as f64 * 1.3).cos().abs())
            .collect();
        let exact = Canberra.distance(&xp, &yp);
        assert_eq!(
            Canberra.distance_upto(&xp, &yp, &mut ws, exact * 0.5),
            f64::INFINITY
        );
        let non_abandoned = Canberra.distance_upto(&xp, &yp, &mut ws, exact * 2.0);
        assert_eq!(non_abandoned.to_bits(), exact.to_bits());

        // Z-scored regime: some x_i + y_i < 0, terms can be negative, so
        // the prescan must route to the exact sum even under a tiny
        // cutoff (abandoning on a partial sum would be inadmissible).
        let xz = [0.0, -1.3, 1.3, 0.0, 0.5, -0.5, -2.0, 1.1];
        let yz = [0.0, 1.3, -1.3, 0.5, 0.5, -1.0, 1.9, -0.9];
        assert!(xz.iter().zip(&yz).any(|(&a, &b)| a + b < 0.0));
        let exact_z = Canberra.distance(&xz, &yz);
        let upto_z = Canberra.distance_upto(&xz, &yz, &mut ws, exact_z * 1e-6);
        assert_eq!(upto_z.to_bits(), exact_z.to_bits());
    }

    #[test]
    fn identical_series_give_zero() {
        for m in [
            Sorensen.distance(&X, &X),
            Gower.distance(&X, &X),
            Soergel.distance(&X, &X),
            KulczynskiD.distance(&X, &X),
            Canberra.distance(&X, &X),
            Lorentzian.distance(&X, &X),
        ] {
            assert!(m.abs() < 1e-12);
        }
    }
}
