//! The L1 family: six measures built on absolute differences.
//!
//! This is the family the paper's Table 2 crowns: Lorentzian (the natural
//! logarithm of L1) ranks first among lock-step measures under z-score,
//! and Manhattan-style measures significantly outperform ED — the
//! heavy-tailed-noise robustness of L1 at work.

use super::{lockstep_measure, safe_div, zip_sum, zip_sum_upto};

lockstep_measure!(
    /// Sørensen distance: `sum |x-y| / sum (x+y)`.
    Sorensen,
    "Sorensen",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, |a, b| a + b)
    )
);

lockstep_measure!(
    /// Gower distance: the mean absolute difference, `(1/m) sum |x-y|`.
    Gower,
    "Gower",
    |x, y| zip_sum(x, y, |a, b| (a - b).abs()) / x.len().max(1) as f64
);

lockstep_measure!(
    /// Soergel distance: `sum |x-y| / sum max(x,y)`. One of the paper's
    /// newly surfaced winners — but only under MinMax normalization.
    Soergel,
    "Soergel",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, f64::max)
    )
);

lockstep_measure!(
    /// Kulczynski distance: `sum |x-y| / sum min(x,y)`.
    KulczynskiD,
    "Kulczynski-d",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, f64::min)
    )
);

lockstep_measure!(
    /// Canberra distance: `sum |x-y| / (x+y)` — a per-coordinate weighted L1.
    Canberra,
    "Canberra",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b).abs(), a + b))
);

lockstep_measure!(
    upto
    /// Lorentzian distance: `sum ln(1 + |x-y|)` — the log-compressed L1
    /// that Section 5 identifies as the new state-of-the-art lock-step
    /// measure.
    ///
    /// Early-abandonable: `ln(1 + |x-y|) >= 0`, so partial sums are
    /// monotone. (Canberra, by contrast, is *not* abandonable — its
    /// guarded `|x-y| / (x+y)` terms go negative on z-normalized data.)
    Lorentzian,
    "Lorentzian",
    |x, y| zip_sum(x, y, |a, b| (1.0 + (a - b).abs()).ln()),
    |x, y, cutoff| zip_sum_upto(x, y, cutoff, |a, b| (1.0 + (a - b).abs()).ln())
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn sorensen_hand_value() {
        // |diffs| = .1, .1, 0 -> 0.2; sums = .3 + 1.1 + .6 = 2.0
        assert!((Sorensen.distance(&X, &Y) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gower_is_mean_absolute_difference() {
        assert!((Gower.distance(&X, &Y) - 0.2 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn soergel_hand_value() {
        // max sums: .2 + .6 + .3 = 1.1
        assert!((Soergel.distance(&X, &Y) - 0.2 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn kulczynski_hand_value() {
        // min sums: .1 + .5 + .3 = 0.9
        assert!((KulczynskiD.distance(&X, &Y) - 0.2 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn canberra_hand_value() {
        let expected = 0.1 / 0.3 + 0.1 / 1.1 + 0.0;
        assert!((Canberra.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn lorentzian_hand_value() {
        let expected = 1.1f64.ln() * 2.0;
        assert!((Lorentzian.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn lorentzian_compresses_outliers_relative_to_l1() {
        // An outlier dominates L1 but is log-compressed in Lorentzian:
        // the ratio outlier/inlier distance is much larger under L1.
        let base = [0.0; 8];
        let inlier = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let mut outlier = [0.0; 8];
        outlier[0] = 4.0; // same L1 mass as inlier
        let l1_ratio = super::super::CityBlock.distance(&base, &outlier)
            / super::super::CityBlock.distance(&base, &inlier);
        let lor_ratio = Lorentzian.distance(&base, &outlier) / Lorentzian.distance(&base, &inlier);
        assert!((l1_ratio - 1.0).abs() < 1e-12);
        assert!(lor_ratio < 0.55, "Lorentzian should discount the spike");
    }

    #[test]
    fn all_are_symmetric() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(Sorensen),
            Box::new(Gower),
            Box::new(Soergel),
            Box::new(KulczynskiD),
            Box::new(Canberra),
            Box::new(Lorentzian),
        ];
        for m in measures {
            let a = m.distance(&X, &Y);
            let b = m.distance(&Y, &X);
            assert!((a - b).abs() < 1e-12, "{} not symmetric", m.name());
        }
    }

    #[test]
    fn identical_series_give_zero() {
        for m in [
            Sorensen.distance(&X, &X),
            Gower.distance(&X, &X),
            Soergel.distance(&X, &X),
            KulczynskiD.distance(&X, &X),
            Canberra.distance(&X, &X),
            Lorentzian.distance(&X, &X),
        ] {
            assert!(m.abs() < 1e-12);
        }
    }
}
