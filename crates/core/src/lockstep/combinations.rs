//! The Combinations family: three measures that mix ideas from multiple
//! families.
//!
//! Avg(L1, L∞) is one of the measures Table 2 finds significantly better
//! than ED under z-score, UnitLength, and MeanNorm.

use super::{clamp_pos, lockstep_measure, safe_div, zip_sum};

lockstep_measure!(
    /// Taneja divergence: `sum ((x+y)/2) ln((x+y) / (2 sqrt(x*y)))`.
    Taneja,
    "Taneja",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        let m = 0.5 * (a + b);
        m * ((a + b) / (2.0 * (a * b).sqrt())).ln()
    })
);

lockstep_measure!(
    /// Kumar–Johnson distance: `sum (x^2 - y^2)^2 / (2 (x*y)^{3/2})`.
    KumarJohnson,
    "KumarJohnson",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        let num = (a * a - b * b) * (a * a - b * b);
        safe_div(num, 2.0 * (ca * cb).powf(1.5))
    })
);

lockstep_measure!(
    /// Average of L1 and L∞: `(sum |x-y| + max |x-y|) / 2`.
    AvgL1Linf,
    "AvgL1Linf",
    |x, y| {
        let l1 = zip_sum(x, y, |a, b| (a - b).abs());
        let linf = x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        0.5 * (l1 + linf)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn avg_l1_linf_hand_value() {
        // L1 = 0.2, Linf = 0.1 -> 0.15.
        assert!((AvgL1Linf.distance(&X, &Y) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn avg_l1_linf_between_halves() {
        use crate::lockstep::{Chebyshev, CityBlock};
        let avg = AvgL1Linf.distance(&X, &Y);
        let l1 = CityBlock.distance(&X, &Y);
        let linf = Chebyshev.distance(&X, &Y);
        assert!(avg >= linf && avg <= l1);
    }

    #[test]
    fn taneja_zero_for_identical() {
        assert!(Taneja.distance(&X, &X).abs() < 1e-12);
    }

    #[test]
    fn taneja_positive_for_different_densities() {
        // AM >= GM, so each term is non-negative.
        assert!(Taneja.distance(&X, &Y) > 0.0);
    }

    #[test]
    fn kumar_johnson_zero_for_identical() {
        assert!(KumarJohnson.distance(&X, &X).abs() < 1e-12);
    }

    #[test]
    fn all_symmetric() {
        for m in [&Taneja as &dyn Distance, &KumarJohnson, &AvgL1Linf] {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }

    #[test]
    fn finite_on_hostile_input() {
        let x = [0.0, -2.0, 1.0];
        let y = [1.0, 0.0, -1.0];
        assert!(Taneja.distance(&x, &y).is_finite());
        assert!(KumarJohnson.distance(&x, &y).is_finite());
        assert!(AvgL1Linf.distance(&x, &y).is_finite());
    }
}
