//! The squared-L2 (chi-squared) family: eight measures built on
//! `(x - y)^2` with varying denominators.
//!
//! Clark (evaluated under MinMax in the paper's Table 2) belongs here.

use super::{lockstep_measure, safe_div, zip_sum, zip_sum_upto};

lockstep_measure!(
    upto
    /// Squared Euclidean distance: `sum (x-y)^2`.
    SquaredEuclidean,
    "SquaredED",
    |x, y| zip_sum(x, y, |a, b| (a - b) * (a - b)),
    |x, y, cutoff| zip_sum_upto(x, y, cutoff, |a, b| (a - b) * (a - b))
);

lockstep_measure!(
    asymmetric
    /// Pearson chi-squared distance: `sum (x-y)^2 / y`.
    PearsonChiSq,
    "PearsonChiSq",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), b))
);

lockstep_measure!(
    asymmetric
    /// Neyman chi-squared distance: `sum (x-y)^2 / x`.
    NeymanChiSq,
    "NeymanChiSq",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a))
);

lockstep_measure!(
    /// (Symmetric) squared chi-squared distance: `sum (x-y)^2 / (x+y)`.
    SquaredChiSq,
    "SquaredChiSq",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a + b))
);

lockstep_measure!(
    /// Probabilistic symmetric chi-squared: `2 sum (x-y)^2 / (x+y)`.
    ProbSymmetricChiSq,
    "ProbSymChiSq",
    |x, y| 2.0 * zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a + b))
);

lockstep_measure!(
    /// Divergence distance: `2 sum (x-y)^2 / (x+y)^2`.
    Divergence,
    "Divergence",
    |x, y| 2.0 * zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), (a + b) * (a + b)))
);

lockstep_measure!(
    /// Clark distance: `sqrt(sum ((x-y)/(x+y))^2)`.
    Clark,
    "Clark",
    |x, y| zip_sum(x, y, |a, b| {
        let r = safe_div((a - b).abs(), a + b);
        r * r
    })
    .sqrt()
);

lockstep_measure!(
    /// Additive symmetric chi-squared: `sum (x-y)^2 (x+y) / (x*y)`.
    AdditiveSymmetricChiSq,
    "AddSymChiSq",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b) * (a + b), a * b))
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn squared_euclidean_is_ed_squared() {
        use crate::lockstep::Euclidean;
        let ed = Euclidean.distance(&X, &Y);
        assert!((SquaredEuclidean.distance(&X, &Y) - ed * ed).abs() < 1e-12);
    }

    #[test]
    fn pearson_and_neyman_are_transposes() {
        assert!((PearsonChiSq.distance(&X, &Y) - NeymanChiSq.distance(&Y, &X)).abs() < 1e-12);
    }

    #[test]
    fn prob_symmetric_is_twice_squared_chisq() {
        assert!(
            (ProbSymmetricChiSq.distance(&X, &Y) - 2.0 * SquaredChiSq.distance(&X, &Y)).abs()
                < 1e-12
        );
    }

    #[test]
    fn clark_hand_value() {
        let expected = ((0.1f64 / 0.3).powi(2) + (0.1f64 / 1.1).powi(2)).sqrt();
        assert!((Clark.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn divergence_hand_value() {
        let expected = 2.0 * (0.01 / 0.09 + 0.01 / 1.21);
        assert!((Divergence.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn additive_symmetric_hand_value() {
        let expected = 0.01 * 0.3 / 0.02 + 0.01 * 1.1 / 0.3;
        assert!((AdditiveSymmetricChiSq.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical() {
        for d in [
            SquaredEuclidean.distance(&X, &X),
            PearsonChiSq.distance(&X, &X),
            NeymanChiSq.distance(&X, &X),
            SquaredChiSq.distance(&X, &X),
            ProbSymmetricChiSq.distance(&X, &X),
            Divergence.distance(&X, &X),
            Clark.distance(&X, &X),
            AdditiveSymmetricChiSq.distance(&X, &X),
        ] {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_variants_are_symmetric() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(SquaredEuclidean),
            Box::new(SquaredChiSq),
            Box::new(ProbSymmetricChiSq),
            Box::new(Divergence),
            Box::new(Clark),
            Box::new(AdditiveSymmetricChiSq),
        ];
        for m in measures {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
