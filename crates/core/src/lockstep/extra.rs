//! The two lock-step measures outside Cha's survey: DISSIM and the
//! adaptive scaling distance (ASD).

use crate::measure::Distance;

/// DISSIM (Frentzos et al. 2007): the definite integral over time of the
/// pointwise distance between the two series' linear interpolants.
///
/// The paper describes it as "a modified version of ED that considers in
/// the distance of the ith points the i+1th points — a form of a smoothing
/// operation". We compute the integral exactly per unit segment: with
/// `d(t)` the absolute difference of the linear interpolants on `[i, i+1]`
/// (endpoint gaps `a = x_i - y_i`, `b = x_{i+1} - y_{i+1}`),
///
/// * same sign: `∫|d| = (|a| + |b|) / 2` (a trapezoid),
/// * sign change: `∫|d| = (a^2 + b^2) / (2(|a| + |b|))` (two triangles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dissim;

impl Distance for Dissim {
    fn name(&self) -> String {
        "DISSIM".into()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len().min(y.len());
        if m < 2 {
            return x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum();
        }
        let mut acc = 0.0;
        for i in 0..m - 1 {
            let a = x[i] - y[i];
            let b = x[i + 1] - y[i + 1];
            if a * b >= 0.0 {
                acc += 0.5 * (a.abs() + b.abs());
            } else {
                let denom = a.abs() + b.abs();
                acc += 0.5 * (a * a + b * b) / denom;
            }
        }
        acc
    }
}

/// Adaptive scaling distance (ASD; Chu & Wong 1999, Yang & Leskovec 2011):
/// embeds the AdaptiveScaling normalization (Eq. 7) into an inner-product
/// comparison — each pair is compared under the optimal scaling factor
/// `a* = (x·y) / (y·y)`, giving `d = ||x - a* y||`, the residual of the
/// best least-squares amplitude match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveScalingDistance;

impl Distance for AdaptiveScalingDistance {
    fn name(&self) -> String {
        "ASD".into()
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let xy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|b| b * b).sum();
        let a = if yy > 0.0 { xy / yy } else { 0.0 };
        x.iter()
            .zip(y)
            .map(|(p, q)| {
                let d = p - a * q;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    fn is_symmetric(&self) -> bool {
        // The optimal scaling factor a* = (x·y)/(y·y) is fit to the second
        // argument only.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissim_zero_for_identical() {
        let x = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(Dissim.distance(&x, &x), 0.0);
    }

    #[test]
    fn dissim_constant_gap_is_gap_times_segments() {
        // x - y == 2 everywhere; integral over m-1 unit segments = 2(m-1).
        let x = [3.0, 3.0, 3.0, 3.0];
        let y = [1.0, 1.0, 1.0, 1.0];
        assert!((Dissim.distance(&x, &y) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dissim_sign_change_integrates_triangles() {
        // Gap goes +1 -> -1 linearly: two triangles of area 1/4 each.
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        assert!((Dissim.distance(&x, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dissim_is_smoother_than_pointwise_l1_on_alternating_noise() {
        // Alternating +1/-1 noise partially cancels inside segments.
        let x = [0.0; 6];
        let y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let l1: f64 = 6.0;
        let d = Dissim.distance(&x, &y);
        assert!(d < l1 * 0.6, "dissim {d} should smooth the oscillation");
    }

    #[test]
    fn dissim_handles_single_point() {
        assert_eq!(Dissim.distance(&[2.0], &[5.0]), 3.0);
    }

    #[test]
    fn asd_is_zero_for_scaled_copies() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.5, 1.0, 1.5];
        assert!(AdaptiveScalingDistance.distance(&x, &y) < 1e-12);
    }

    #[test]
    fn asd_equals_orthogonal_residual() {
        // d^2 = ||x||^2 - (x·y)^2/||y||^2 (projection residual).
        let x = [1.0, 0.0, 2.0];
        let y = [0.0, 1.0, 1.0];
        let xy = 2.0f64;
        let xx = 5.0;
        let yy = 2.0;
        let expected = (xx - xy * xy / yy).sqrt();
        assert!((AdaptiveScalingDistance.distance(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn asd_handles_zero_reference() {
        let x = [1.0, 2.0];
        let y = [0.0, 0.0];
        let d = AdaptiveScalingDistance.distance(&x, &y);
        assert!((d - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn asd_is_scale_invariant_in_second_argument() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 1.0, 2.0];
        let y2: Vec<f64> = y.iter().map(|v| v * 7.0).collect();
        let d1 = AdaptiveScalingDistance.distance(&x, &y);
        let d2 = AdaptiveScalingDistance.distance(&x, &y2);
        assert!((d1 - d2).abs() < 1e-10);
    }
}
