//! The Intersection family: seven measures built on coordinate-wise
//! minima and maxima.

use super::{lockstep_measure, safe_div, zip_sum};

lockstep_measure!(
    /// Non-intersection distance: `(1/2) sum |x-y|` (the distance form of
    /// the histogram-intersection similarity `sum min(x,y)`).
    Intersection,
    "Intersection",
    |x, y| 0.5 * zip_sum(x, y, |a, b| (a - b).abs())
);

lockstep_measure!(
    /// Wave Hedges distance: `sum |x-y| / max(x,y)`.
    WaveHedges,
    "WaveHedges",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b).abs(), a.max(b)))
);

lockstep_measure!(
    /// Czekanowski distance: `sum |x-y| / sum (x+y)` (equal to Sørensen;
    /// Cha's survey lists both and the paper counts both, noting that
    /// equivalent measures must produce identical accuracies).
    Czekanowski,
    "Czekanowski",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, |a, b| a + b)
    )
);

lockstep_measure!(
    /// Motyka distance: `sum max(x,y) / sum (x+y)` (equals
    /// `1 - sum min / sum (x+y)`; ranges in `[1/2, 1]` on positive data).
    Motyka,
    "Motyka",
    |x, y| safe_div(zip_sum(x, y, f64::max), zip_sum(x, y, |a, b| a + b))
);

lockstep_measure!(
    /// Kulczynski similarity `s = sum min / sum |x-y|`, used as the
    /// dissimilarity `1/s = sum |x-y| / sum min(x,y)`.
    KulczynskiS,
    "Kulczynski-s",
    |x, y| safe_div(
        zip_sum(x, y, |a, b| (a - b).abs()),
        zip_sum(x, y, f64::min)
    )
);

lockstep_measure!(
    /// Ruzicka distance: `1 - sum min(x,y) / sum max(x,y)`.
    Ruzicka,
    "Ruzicka",
    |x, y| 1.0 - safe_div(zip_sum(x, y, f64::min), zip_sum(x, y, f64::max))
);

lockstep_measure!(
    /// Tanimoto distance: `(sum max - sum min) / sum max`.
    Tanimoto,
    "Tanimoto",
    |x, y| {
        let mx = zip_sum(x, y, f64::max);
        let mn = zip_sum(x, y, f64::min);
        safe_div(mx - mn, mx)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn intersection_is_half_l1() {
        assert!((Intersection.distance(&X, &Y) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wave_hedges_hand_value() {
        let expected = 0.1 / 0.2 + 0.1 / 0.6 + 0.0;
        assert!((WaveHedges.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn motyka_of_identical_positive_series_is_half() {
        assert!((Motyka.distance(&X, &X) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ruzicka_and_tanimoto_agree_on_positive_data() {
        // 1 - min/max == (max - min)/max.
        let a = Ruzicka.distance(&X, &Y);
        let b = Tanimoto.distance(&X, &Y);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn czekanowski_equals_sorensen() {
        use crate::lockstep::Sorensen;
        assert!(
            (Czekanowski.distance(&X, &Y) - Sorensen.distance(&X, &Y)).abs() < 1e-12,
            "survey-equivalent measures must agree"
        );
    }

    #[test]
    fn zero_for_identical_series() {
        for d in [
            Intersection.distance(&X, &X),
            WaveHedges.distance(&X, &X),
            Czekanowski.distance(&X, &X),
            KulczynskiS.distance(&X, &X),
            Ruzicka.distance(&X, &X),
            Tanimoto.distance(&X, &X),
        ] {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(Intersection),
            Box::new(WaveHedges),
            Box::new(Czekanowski),
            Box::new(Motyka),
            Box::new(KulczynskiS),
            Box::new(Ruzicka),
            Box::new(Tanimoto),
        ];
        for m in measures {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
