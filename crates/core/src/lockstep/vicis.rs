//! The five measures Cha's survey proposed without prior literature
//! appearance (nicknamed "Emanon" 1–5 there).
//!
//! Vicis-Symmetric chi-squared 3 (Emanon4) is one of the previously
//! unknown measures the paper finds significantly better than ED — but
//! only under MinMax normalization.

use super::{lockstep_measure, safe_div, zip_sum};

lockstep_measure!(
    /// Vicis–Wave Hedges (Emanon1): `sum |x-y| / min(x,y)`.
    VicisWaveHedges,
    "VicisWaveHedges",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b).abs(), a.min(b)))
);

lockstep_measure!(
    /// Vicis symmetric chi-squared 1 (Emanon2): `sum (x-y)^2 / min(x,y)^2`.
    VicisSymmetricChiSq1,
    "Emanon2",
    |x, y| zip_sum(x, y, |a, b| {
        let mn = a.min(b);
        safe_div((a - b) * (a - b), mn * mn)
    })
);

lockstep_measure!(
    /// Vicis symmetric chi-squared 2 (Emanon3): `sum (x-y)^2 / min(x,y)`.
    VicisSymmetricChiSq2,
    "Emanon3",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a.min(b)))
);

lockstep_measure!(
    /// Vicis symmetric chi-squared 3 (Emanon4): `sum (x-y)^2 / max(x,y)`.
    VicisSymmetricChiSq3,
    "Emanon4",
    |x, y| zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a.max(b)))
);

lockstep_measure!(
    /// Max-symmetric chi-squared (Emanon5):
    /// `max(sum (x-y)^2/x, sum (x-y)^2/y)`.
    MaxSymmetricChiSq,
    "Emanon5",
    |x, y| {
        let dx = zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), a));
        let dy = zip_sum(x, y, |a, b| safe_div((a - b) * (a - b), b));
        dx.max(dy)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn emanon4_hand_value() {
        let expected = 0.01 / 0.2 + 0.01 / 0.6;
        assert!((VicisSymmetricChiSq3.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn emanon3_hand_value() {
        let expected = 0.01 / 0.1 + 0.01 / 0.5;
        assert!((VicisSymmetricChiSq2.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn emanon2_hand_value() {
        let expected = 0.01 / 0.01 + 0.01 / 0.25;
        assert!((VicisSymmetricChiSq1.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn max_symmetric_is_max_of_pearson_and_neyman() {
        use crate::lockstep::{NeymanChiSq, PearsonChiSq};
        let p = PearsonChiSq.distance(&X, &Y);
        let n = NeymanChiSq.distance(&X, &Y);
        assert!((MaxSymmetricChiSq.distance(&X, &Y) - p.max(n)).abs() < 1e-12);
    }

    #[test]
    fn min_denominator_dominates_max_denominator() {
        // Same numerator with smaller denominators gives larger distances:
        // Emanon2 >= Emanon3-style orderings on positive data < 1.
        let d_min = VicisSymmetricChiSq2.distance(&X, &Y);
        let d_max = VicisSymmetricChiSq3.distance(&X, &Y);
        assert!(d_min >= d_max);
    }

    #[test]
    fn zero_for_identical_and_symmetric() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(VicisWaveHedges),
            Box::new(VicisSymmetricChiSq1),
            Box::new(VicisSymmetricChiSq2),
            Box::new(VicisSymmetricChiSq3),
            Box::new(MaxSymmetricChiSq),
        ];
        for m in measures {
            assert!(m.distance(&X, &X).abs() < 1e-12, "{}", m.name());
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }

    #[test]
    fn finite_on_zero_inputs() {
        let x = [0.0, 0.0];
        let y = [1.0, 0.0];
        for m in [
            VicisWaveHedges.distance(&x, &y),
            VicisSymmetricChiSq1.distance(&x, &y),
            VicisSymmetricChiSq2.distance(&x, &y),
            VicisSymmetricChiSq3.distance(&x, &y),
            MaxSymmetricChiSq.distance(&x, &y),
        ] {
            assert!(m.is_finite());
        }
    }
}
