//! The Fidelity (squared-chord) family: five measures built on
//! `sqrt(x * y)`.
//!
//! These formulas require density-like non-negative inputs; values are
//! clamped to a small positive floor ([`super::clamp_pos`]), which is why
//! they only become competitive under normalizations that keep the data
//! positive (MinMax) — one of the paper's motivations for studying
//! normalization at all.

use super::{clamp_pos, lockstep_measure, zip_sum};
use crate::measure::EPS;

lockstep_measure!(
    /// Fidelity dissimilarity: `1 - sum sqrt(x*y)` (the Bhattacharyya
    /// coefficient subtracted from one).
    Fidelity,
    "Fidelity",
    |x, y| 1.0 - zip_sum(x, y, |a, b| (clamp_pos(a) * clamp_pos(b)).sqrt())
);

lockstep_measure!(
    /// Bhattacharyya distance: `-ln sum sqrt(x*y)`.
    Bhattacharyya,
    "Bhattacharyya",
    |x, y| -zip_sum(x, y, |a, b| (clamp_pos(a) * clamp_pos(b)).sqrt())
        .max(EPS)
        .ln()
);

lockstep_measure!(
    /// Hellinger distance: `sqrt(2 sum (sqrt(x) - sqrt(y))^2)`.
    Hellinger,
    "Hellinger",
    |x, y| (2.0
        * zip_sum(x, y, |a, b| {
            let d = clamp_pos(a).sqrt() - clamp_pos(b).sqrt();
            d * d
        }))
    .sqrt()
);

lockstep_measure!(
    /// Matusita distance: `sqrt(sum (sqrt(x) - sqrt(y))^2)`.
    Matusita,
    "Matusita",
    |x, y| zip_sum(x, y, |a, b| {
        let d = clamp_pos(a).sqrt() - clamp_pos(b).sqrt();
        d * d
    })
    .sqrt()
);

lockstep_measure!(
    /// Squared-chord distance: `sum (sqrt(x) - sqrt(y))^2`.
    SquaredChord,
    "SquaredChord",
    |x, y| zip_sum(x, y, |a, b| {
        let d = clamp_pos(a).sqrt() - clamp_pos(b).sqrt();
        d * d
    })
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.25, 0.25, 0.5];
    const Y: [f64; 3] = [0.5, 0.25, 0.25];

    #[test]
    fn fidelity_zero_for_identical_densities() {
        // sum sqrt(x*x) = sum x = 1 for a density.
        assert!(Fidelity.distance(&X, &X).abs() < 1e-9);
    }

    #[test]
    fn bhattacharyya_zero_for_identical_densities() {
        assert!(Bhattacharyya.distance(&X, &X).abs() < 1e-9);
    }

    #[test]
    fn hellinger_is_sqrt2_matusita() {
        let h = Hellinger.distance(&X, &Y);
        let m = Matusita.distance(&X, &Y);
        assert!((h - 2.0f64.sqrt() * m).abs() < 1e-12);
    }

    #[test]
    fn squared_chord_is_matusita_squared() {
        let sc = SquaredChord.distance(&X, &Y);
        let m = Matusita.distance(&X, &Y);
        assert!((sc - m * m).abs() < 1e-12);
    }

    #[test]
    fn squared_chord_hand_value() {
        let s5 = 0.5f64.sqrt();
        let s25 = 0.5; // sqrt(0.25)
        let expected = (s25 - s5) * (s25 - s5) * 2.0;
        assert!((SquaredChord.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_are_clamped_not_nan() {
        let x = [-1.0, 0.0, 1.0];
        let y = [1.0, -1.0, 0.5];
        for d in [
            Fidelity.distance(&x, &y),
            Bhattacharyya.distance(&x, &y),
            Hellinger.distance(&x, &y),
            Matusita.distance(&x, &y),
            SquaredChord.distance(&x, &y),
        ] {
            assert!(d.is_finite());
        }
    }

    #[test]
    fn symmetry() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(Fidelity),
            Box::new(Bhattacharyya),
            Box::new(Hellinger),
            Box::new(Matusita),
            Box::new(SquaredChord),
        ];
        for m in measures {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
