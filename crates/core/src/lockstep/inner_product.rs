//! The Inner Product family: six measures built on `sum x*y`.
//!
//! Jaccard (as a *distance*, not the set similarity) is one of the
//! measures the paper surfaces as significantly better than ED — but only
//! under MeanNorm normalization.

use super::{lockstep_measure, safe_div, zip_sum};

lockstep_measure!(
    /// Inner-product dissimilarity: `1 - sum x*y`. (Any strictly
    /// decreasing transform of the similarity yields the same 1-NN
    /// decisions.)
    InnerProduct,
    "InnerProduct",
    |x, y| 1.0 - zip_sum(x, y, |a, b| a * b)
);

lockstep_measure!(
    /// Harmonic-mean dissimilarity: `1 - 2 sum (x*y / (x+y))`.
    HarmonicMean,
    "HarmonicMean",
    |x, y| 1.0 - 2.0 * zip_sum(x, y, |a, b| safe_div(a * b, a + b))
);

lockstep_measure!(
    /// Cosine distance: `1 - sum x*y / (||x|| * ||y||)`.
    Cosine,
    "Cosine",
    |x, y| {
        let dot = zip_sum(x, y, |a, b| a * b);
        let nx = zip_sum(x, x, |a, b| a * b).sqrt();
        let ny = zip_sum(y, y, |a, b| a * b).sqrt();
        1.0 - safe_div(dot, nx * ny)
    }
);

lockstep_measure!(
    /// Kumar–Hassebrook (PCE) dissimilarity:
    /// `1 - sum x*y / (sum x^2 + sum y^2 - sum x*y)`.
    KumarHassebrook,
    "KumarHassebrook",
    |x, y| {
        let dot = zip_sum(x, y, |a, b| a * b);
        let sx = zip_sum(x, x, |a, b| a * b);
        let sy = zip_sum(y, y, |a, b| a * b);
        1.0 - safe_div(dot, sx + sy - dot)
    }
);

lockstep_measure!(
    /// Jaccard distance: `sum (x-y)^2 / (sum x^2 + sum y^2 - sum x*y)`.
    Jaccard,
    "Jaccard",
    |x, y| {
        let num = zip_sum(x, y, |a, b| (a - b) * (a - b));
        let dot = zip_sum(x, y, |a, b| a * b);
        let sx = zip_sum(x, x, |a, b| a * b);
        let sy = zip_sum(y, y, |a, b| a * b);
        safe_div(num, sx + sy - dot)
    }
);

lockstep_measure!(
    /// Dice distance: `sum (x-y)^2 / (sum x^2 + sum y^2)`.
    Dice,
    "Dice",
    |x, y| {
        let num = zip_sum(x, y, |a, b| (a - b) * (a - b));
        let sx = zip_sum(x, x, |a, b| a * b);
        let sy = zip_sum(y, y, |a, b| a * b);
        safe_div(num, sx + sy)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.2, 0.5, 0.3];
    const Y: [f64; 3] = [0.1, 0.6, 0.3];

    #[test]
    fn cosine_of_identical_direction_is_zero() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!(Cosine.distance(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_one() {
        assert!((Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_and_dice_zero_on_identical() {
        assert!(Jaccard.distance(&X, &X).abs() < 1e-12);
        assert!(Dice.distance(&X, &X).abs() < 1e-12);
    }

    #[test]
    fn jaccard_hand_value() {
        // num = .01 + .01 + 0 = .02
        // dot = .02 + .30 + .09 = .41; sx = .38; sy = .46
        let expected = 0.02 / (0.38 + 0.46 - 0.41);
        assert!((Jaccard.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn dice_hand_value() {
        let expected = 0.02 / (0.38 + 0.46);
        assert!((Dice.distance(&X, &Y) - expected).abs() < 1e-12);
    }

    #[test]
    fn kumar_hassebrook_is_one_minus_jaccard_similarity() {
        // KH similarity and the Jaccard distance relate via
        // d_Jaccard = 1 - s_KH.
        let kh = KumarHassebrook.distance(&X, &Y);
        let jac = Jaccard.distance(&X, &Y);
        assert!((kh - jac).abs() < 1e-12);
    }

    #[test]
    fn inner_product_decreases_with_alignment() {
        let a = [1.0, 1.0];
        let aligned = [1.0, 1.0];
        let anti = [-1.0, -1.0];
        assert!(InnerProduct.distance(&a, &aligned) < InnerProduct.distance(&a, &anti));
    }

    #[test]
    fn symmetry() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(InnerProduct),
            Box::new(HarmonicMean),
            Box::new(Cosine),
            Box::new(KumarHassebrook),
            Box::new(Jaccard),
            Box::new(Dice),
        ];
        for m in measures {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
