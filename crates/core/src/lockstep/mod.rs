//! The 52 lock-step distance measures of Section 5.
//!
//! Lock-step measures compare the `i`th point of one series with the `i`th
//! point of the other. Fifty of them are re-implemented from Cha's 2007
//! survey of distances between probability density functions, organized in
//! the same seven families the paper uses, plus the survey's three
//! combination measures and five proposed ("Emanon") measures; DISSIM and
//! ASD complete the set of 52.
//!
//! Cha's formulas assume strictly positive densities. Time series —
//! especially z-normalized ones — contain zeros and negative values, so
//! every division is guarded ([`safe_div`]) and measures built on square
//! roots or logarithms of the data (the Fidelity and Entropy families)
//! clamp inputs to a small positive floor ([`clamp_pos`]). This is exactly
//! why the paper finds that such measures only become competitive under
//! normalizations like MinMax that keep the data positive.

use crate::measure::EPS;

pub mod combinations;
pub mod entropy;
pub mod extra;
pub mod fidelity;
pub mod inner_product;
pub mod intersection;
pub mod l1;
pub mod minkowski;
pub mod squared_l2;
pub mod vicis;

pub use combinations::{AvgL1Linf, KumarJohnson, Taneja};
pub use entropy::{
    Jeffreys, JensenDifference, JensenShannon, KDivergence, KullbackLeibler, Topsoe,
};
pub use extra::{AdaptiveScalingDistance, Dissim};
pub use fidelity::{Bhattacharyya, Fidelity, Hellinger, Matusita, SquaredChord};
pub use inner_product::{Cosine, Dice, HarmonicMean, InnerProduct, Jaccard, KumarHassebrook};
pub use intersection::{
    Czekanowski, Intersection, KulczynskiS, Motyka, Ruzicka, Tanimoto, WaveHedges,
};
pub use l1::{Canberra, Gower, KulczynskiD, Lorentzian, Soergel, Sorensen};
pub use minkowski::{Chebyshev, CityBlock, Euclidean, Minkowski};
pub use squared_l2::{
    AdditiveSymmetricChiSq, Clark, Divergence, NeymanChiSq, PearsonChiSq, ProbSymmetricChiSq,
    SquaredChiSq, SquaredEuclidean,
};
pub use vicis::{
    MaxSymmetricChiSq, VicisSymmetricChiSq1, VicisSymmetricChiSq2, VicisSymmetricChiSq3,
    VicisWaveHedges,
};

/// Division with a guarded denominator: denominators smaller in magnitude
/// than [`EPS`] are replaced by ±[`EPS`] (zero counts as positive).
#[inline]
pub(crate) fn safe_div(num: f64, den: f64) -> f64 {
    if den.abs() < EPS {
        num / if den < 0.0 { -EPS } else { EPS }
    } else {
        num / den
    }
}

/// Clamps a value to the positive floor [`EPS`], for formulas that require
/// density-like inputs (square roots, logarithms).
#[inline]
pub(crate) fn clamp_pos(v: f64) -> f64 {
    v.max(EPS)
}

/// Sums `f(x_i, y_i)` over the common prefix of both series.
///
/// Since the vectorized-kernel backend landed this is a multi-lane
/// chunked reduction ([`crate::lanes::lane_sum`]): per-lane partial sums
/// over [`crate::lanes::LANES`]-wide chunks, combined through a fixed
/// tree, plus a scalar tail. The reassociation moves results a few ULPs
/// from the old sequential fold (see DESIGN.md §9 for bounds); what
/// stays exact is the agreement between this path and
/// [`zip_sum_upto`] — both accumulate chunk-for-chunk identically.
#[inline]
pub(crate) fn zip_sum(x: &[f64], y: &[f64], f: impl FnMut(f64, f64) -> f64) -> f64 {
    crate::lanes::lane_sum(x, y, f)
}

/// Early-abandoning twin of [`zip_sum`] for **non-negative** term
/// functions: accumulates in the identical lane layout (so a
/// non-abandoned call matches [`zip_sum`] bit-for-bit) and returns
/// [`f64::INFINITY`] once the combined partial sum reaches `cutoff` —
/// checked once per [`crate::lanes::ABANDON_BLOCK`] elements, not per
/// element, so the combine tree stays off the hot loop.
///
/// Admissible because floating-point addition of non-negative terms is
/// monotone non-decreasing in every lane and the combine tree is
/// monotone in every operand: a combined partial `>= cutoff` forces the
/// full sum `>= cutoff`. Callers must guarantee `f >= 0` (or NaN, which
/// never trips the `>=` test and therefore falls through to the exact
/// value).
#[inline]
pub(crate) fn zip_sum_upto(
    x: &[f64],
    y: &[f64],
    cutoff: f64,
    f: impl FnMut(f64, f64) -> f64,
) -> f64 {
    crate::lanes::lane_sum_upto(x, y, cutoff, f)
}

/// Defines a parameter-free lock-step measure as a unit struct
/// implementing [`crate::measure::Distance`].
///
/// Prefix the definition with `asymmetric` for measures whose formula
/// treats the two arguments differently (KL, χ² variants): these override
/// [`crate::measure::Distance::is_symmetric`] to `false` so the batch
/// matrix engine computes both triangles.
///
/// Prefix with `upto` to additionally override
/// [`crate::measure::Distance::distance_upto`] with an early-abandoning
/// body. The macro supplies the non-finite-cutoff guard (`+∞` must be
/// bit-identical to the exact path, and a NaN cutoff means "no cutoff"),
/// so the body only sees a finite cutoff.
///
/// An optional `metric <Regime>,` token after the label declares the
/// [`crate::measure::MetricRegime`] on which the measure satisfies the
/// triangle inequality, opting it into the index tier's pivot layer. The
/// declaration is validated against sampled triples at pivot-table build
/// time, so a wrong flag fails loudly (satisfying the "Canberra silently
/// falls out of the metric layer" fix with a checked, explicit opt-in).
macro_rules! lockstep_measure {
    (upto $(#[$doc:meta])* $name:ident, $label:expr, $(metric $regime:ident,)?
     |$x:ident, $y:ident| $body:expr,
     |$ux:ident, $uy:ident, $cutoff:ident| $ubody:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl crate::measure::Distance for $name {
            fn name(&self) -> String {
                $label.into()
            }
            fn distance(&self, $x: &[f64], $y: &[f64]) -> f64 {
                $body
            }
            fn distance_upto(
                &self,
                $ux: &[f64],
                $uy: &[f64],
                ws: &mut crate::workspace::Workspace,
                $cutoff: f64,
            ) -> f64 {
                if $cutoff.is_nan() || $cutoff == f64::INFINITY {
                    return self.distance_ws($ux, $uy, ws);
                }
                $ubody
            }
            fn lanes_hint(&self) -> usize {
                crate::lanes::LANES
            }
            $(
                fn metric_regime(&self) -> crate::measure::MetricRegime {
                    crate::measure::MetricRegime::$regime
                }
            )?
        }
    };
    (asymmetric $(#[$doc:meta])* $name:ident, $label:expr, |$x:ident, $y:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl crate::measure::Distance for $name {
            fn name(&self) -> String {
                $label.into()
            }
            fn distance(&self, $x: &[f64], $y: &[f64]) -> f64 {
                $body
            }
            fn is_symmetric(&self) -> bool {
                false
            }
            fn lanes_hint(&self) -> usize {
                crate::lanes::LANES
            }
        }
    };
    ($(#[$doc:meta])* $name:ident, $label:expr, $(metric $regime:ident,)?
     |$x:ident, $y:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl crate::measure::Distance for $name {
            fn name(&self) -> String {
                $label.into()
            }
            fn distance(&self, $x: &[f64], $y: &[f64]) -> f64 {
                $body
            }
            fn lanes_hint(&self) -> usize {
                crate::lanes::LANES
            }
            $(
                fn metric_regime(&self) -> crate::measure::MetricRegime {
                    crate::measure::MetricRegime::$regime
                }
            )?
        }
    };
}
pub(crate) use lockstep_measure;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    /// Every lock-step measure in one place, for blanket sanity checks.
    pub(crate) fn all_measures() -> Vec<Box<dyn Distance>> {
        vec![
            Box::new(Euclidean),
            Box::new(CityBlock),
            Box::new(Minkowski::new(3.0)),
            Box::new(Chebyshev),
            Box::new(Sorensen),
            Box::new(Gower),
            Box::new(Soergel),
            Box::new(KulczynskiD),
            Box::new(Canberra),
            Box::new(Lorentzian),
            Box::new(Intersection),
            Box::new(WaveHedges),
            Box::new(Czekanowski),
            Box::new(Motyka),
            Box::new(KulczynskiS),
            Box::new(Ruzicka),
            Box::new(Tanimoto),
            Box::new(InnerProduct),
            Box::new(HarmonicMean),
            Box::new(Cosine),
            Box::new(KumarHassebrook),
            Box::new(Jaccard),
            Box::new(Dice),
            Box::new(Fidelity),
            Box::new(Bhattacharyya),
            Box::new(Hellinger),
            Box::new(Matusita),
            Box::new(SquaredChord),
            Box::new(SquaredEuclidean),
            Box::new(PearsonChiSq),
            Box::new(NeymanChiSq),
            Box::new(SquaredChiSq),
            Box::new(ProbSymmetricChiSq),
            Box::new(Divergence),
            Box::new(Clark),
            Box::new(AdditiveSymmetricChiSq),
            Box::new(KullbackLeibler),
            Box::new(Jeffreys),
            Box::new(KDivergence),
            Box::new(Topsoe),
            Box::new(JensenShannon),
            Box::new(JensenDifference),
            Box::new(Taneja),
            Box::new(KumarJohnson),
            Box::new(AvgL1Linf),
            Box::new(VicisWaveHedges),
            Box::new(VicisSymmetricChiSq1),
            Box::new(VicisSymmetricChiSq2),
            Box::new(VicisSymmetricChiSq3),
            Box::new(MaxSymmetricChiSq),
            Box::new(Dissim),
            Box::new(AdaptiveScalingDistance),
        ]
    }

    #[test]
    fn the_paper_evaluates_exactly_52_lockstep_measures() {
        assert_eq!(all_measures().len(), 52);
    }

    #[test]
    fn all_measures_are_finite_on_positive_data() {
        // MinMax[0.1, 1.1]-style positive data: every formula is well-defined.
        let x = [0.2, 0.5, 1.0, 0.7, 0.3, 0.9];
        let y = [0.3, 0.4, 0.8, 1.1, 0.2, 0.6];
        for m in all_measures() {
            let d = m.distance(&x, &y);
            assert!(d.is_finite(), "{} produced {d}", m.name());
        }
    }

    #[test]
    fn all_measures_are_finite_on_zscored_data_with_zeros() {
        // Hostile input: zeros, negatives, and exact ties.
        let x = [0.0, -1.3, 1.3, 0.0, 0.5, -0.5];
        let y = [0.0, 1.3, -1.3, 0.5, 0.5, -1.0];
        for m in all_measures() {
            let d = m.distance(&x, &y);
            assert!(d.is_finite(), "{} produced {d}", m.name());
            let d_self = m.distance(&x, &x);
            assert!(d_self.is_finite(), "{} self-distance {d_self}", m.name());
        }
    }

    #[test]
    fn self_distance_is_minimal_among_candidates() {
        // d(x, x) must not exceed d(x, y) for clearly different y — the
        // property 1-NN actually relies on. (Some similarity-derived
        // measures have non-zero self-"distance", which is fine.)
        let x = [0.2, 0.5, 1.0, 0.7, 0.3, 0.9];
        let y = [1.1, 0.1, 0.2, 1.3, 0.9, 0.15];
        for m in all_measures() {
            let d_self = m.distance(&x, &x);
            let d_other = m.distance(&x, &y);
            assert!(
                d_self <= d_other + 1e-12,
                "{}: d(x,x)={d_self} > d(x,y)={d_other}",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_measures().iter().map(|m| m.name()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
