//! The Shannon entropy family: six divergences built on `x * ln(x/y)`.
//!
//! All six require density-like positive inputs; values are clamped to a
//! positive floor before logarithms ([`super::clamp_pos`]).

use super::{clamp_pos, lockstep_measure, zip_sum};

lockstep_measure!(
    asymmetric
    /// Kullback–Leibler divergence: `sum x ln(x/y)`. Asymmetric.
    KullbackLeibler,
    "KullbackLeibler",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        a * (a / b).ln()
    })
);

lockstep_measure!(
    /// Jeffreys divergence (symmetrized KL): `sum (x - y) ln(x/y)`.
    Jeffreys,
    "Jeffreys",
    |x, y| zip_sum(x, y, |a, b| {
        let (ca, cb) = (clamp_pos(a), clamp_pos(b));
        // `ln(ca) - ln(cb)` rather than `(ca / cb).ln()`: the former is the
        // exact negation of its swap, so each term — and therefore the sum —
        // is bit-identical under argument exchange, as `is_symmetric()`
        // promises. `ln(ca / cb)` is not (division then log round
        // differently than the two logs), which the conformance oracle
        // caught as a one-ULP mirror divergence in symmetric matrices.
        (ca - cb) * (ca.ln() - cb.ln())
    })
);

lockstep_measure!(
    asymmetric
    /// K divergence: `sum x ln(2x / (x+y))`.
    KDivergence,
    "KDivergence",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        a * (2.0 * a / (a + b)).ln()
    })
);

lockstep_measure!(
    /// Topsøe distance: `sum [x ln(2x/(x+y)) + y ln(2y/(x+y))]` — twice
    /// the Jensen–Shannon divergence. Evaluated under MinMax in Table 2.
    Topsoe,
    "Topsoe",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        let m = a + b;
        a * (2.0 * a / m).ln() + b * (2.0 * b / m).ln()
    })
);

lockstep_measure!(
    /// Jensen–Shannon divergence:
    /// `(1/2) [sum x ln(2x/(x+y)) + sum y ln(2y/(x+y))]`.
    JensenShannon,
    "JensenShannon",
    |x, y| 0.5
        * zip_sum(x, y, |a, b| {
            let (a, b) = (clamp_pos(a), clamp_pos(b));
            let m = a + b;
            a * (2.0 * a / m).ln() + b * (2.0 * b / m).ln()
        })
);

lockstep_measure!(
    /// Jensen difference:
    /// `sum [(x ln x + y ln y)/2 - ((x+y)/2) ln((x+y)/2)]`.
    JensenDifference,
    "JensenDifference",
    |x, y| zip_sum(x, y, |a, b| {
        let (a, b) = (clamp_pos(a), clamp_pos(b));
        let m = 0.5 * (a + b);
        0.5 * (a * a.ln() + b * b.ln()) - m * m.ln()
    })
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Distance;

    const X: [f64; 3] = [0.25, 0.25, 0.5];
    const Y: [f64; 3] = [0.5, 0.25, 0.25];

    #[test]
    fn kl_zero_for_identical_densities() {
        assert!(KullbackLeibler.distance(&X, &X).abs() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric_in_general() {
        let x = [0.7, 0.2, 0.1];
        let y = [0.1, 0.2, 0.7];
        let fwd = KullbackLeibler.distance(&x, &y);
        let bwd = KullbackLeibler.distance(&y, &x);
        // Symmetric for this particular swap; use a non-symmetric pair.
        assert!((fwd - bwd).abs() < 1e-12);
        let z = [0.6, 0.3, 0.1];
        assert!((KullbackLeibler.distance(&x, &z) - KullbackLeibler.distance(&z, &x)).abs() > 1e-6);
    }

    #[test]
    fn jeffreys_is_kl_sum() {
        let kl_xy = KullbackLeibler.distance(&X, &Y);
        let kl_yx = KullbackLeibler.distance(&Y, &X);
        assert!((Jeffreys.distance(&X, &Y) - (kl_xy + kl_yx)).abs() < 1e-12);
    }

    #[test]
    fn topsoe_is_twice_jensen_shannon() {
        assert!((Topsoe.distance(&X, &Y) - 2.0 * JensenShannon.distance(&X, &Y)).abs() < 1e-12);
    }

    #[test]
    fn jensen_shannon_equals_jensen_difference() {
        // Algebraically identical for densities.
        assert!((JensenShannon.distance(&X, &Y) - JensenDifference.distance(&X, &Y)).abs() < 1e-10);
    }

    #[test]
    fn jensen_shannon_is_bounded_by_ln2() {
        // JS divergence of densities is at most ln 2.
        let x = [1.0, 0.0, 0.0];
        let y = [0.0, 0.0, 1.0];
        let js = JensenShannon.distance(&x, &y);
        assert!(js <= std::f64::consts::LN_2 + 1e-6, "js = {js}");
        assert!(js > 0.5);
    }

    #[test]
    fn all_finite_on_hostile_input() {
        let x = [0.0, -1.0, 2.0];
        let y = [-2.0, 0.0, 0.0];
        for m in [
            KullbackLeibler.distance(&x, &y),
            Jeffreys.distance(&x, &y),
            KDivergence.distance(&x, &y),
            Topsoe.distance(&x, &y),
            JensenShannon.distance(&x, &y),
            JensenDifference.distance(&x, &y),
        ] {
            assert!(m.is_finite());
        }
    }

    #[test]
    fn symmetric_members_are_symmetric() {
        let measures: Vec<Box<dyn Distance>> = vec![
            Box::new(Jeffreys),
            Box::new(Topsoe),
            Box::new(JensenShannon),
            Box::new(JensenDifference),
        ];
        for m in measures {
            assert!(
                (m.distance(&X, &Y) - m.distance(&Y, &X)).abs() < 1e-12,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
