//! The Minkowski (Lp) family: Euclidean, City-block, Minkowski, Chebyshev.

use super::{lockstep_measure, zip_sum};
use crate::measure::Distance;

lockstep_measure!(
    /// Euclidean distance (L2 norm), the paper's lock-step baseline (M2):
    /// `sqrt(sum (x_i - y_i)^2)`.
    Euclidean,
    "ED",
    |x, y| zip_sum(x, y, |a, b| (a - b) * (a - b)).sqrt()
);

lockstep_measure!(
    /// City-block / Manhattan distance (L1 norm): `sum |x_i - y_i|`.
    CityBlock,
    "Manhattan",
    |x, y| zip_sum(x, y, |a, b| (a - b).abs())
);

lockstep_measure!(
    /// Chebyshev distance (L-infinity norm): `max |x_i - y_i|`.
    Chebyshev,
    "Chebyshev",
    |x, y| x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
);

/// Minkowski distance (Lp norm) with tunable order `p`:
/// `(sum |x_i - y_i|^p)^(1/p)`.
///
/// The only lock-step measure requiring supervised tuning; Table 4's grid
/// spans `p` from 0.1 (a "fractional norm") to 20.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    /// The order of the norm; must be positive (values below 1 give a
    /// well-defined dissimilarity even though it is no longer a metric).
    pub p: f64,
}

impl Minkowski {
    /// Creates the Lp measure.
    ///
    /// # Panics
    /// Panics if `p` is not strictly positive.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0, "Minkowski order must be positive, got {p}");
        Minkowski { p }
    }
}

impl Distance for Minkowski {
    fn name(&self) -> String {
        format!("Minkowski(p={})", self.p)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        zip_sum(x, y, |a, b| (a - b).abs().powf(self.p)).powf(1.0 / self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
    const Y: [f64; 4] = [2.0, 2.0, 1.0, 6.0];
    // diffs: -1, 0, 2, -2

    #[test]
    fn euclidean_hand_value() {
        assert!((Euclidean.distance(&X, &Y) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cityblock_hand_value() {
        assert_eq!(CityBlock.distance(&X, &Y), 5.0);
    }

    #[test]
    fn chebyshev_hand_value() {
        assert_eq!(Chebyshev.distance(&X, &Y), 2.0);
    }

    #[test]
    fn minkowski_reduces_to_special_cases() {
        assert!((Minkowski::new(2.0).distance(&X, &Y) - Euclidean.distance(&X, &Y)).abs() < 1e-12);
        assert!((Minkowski::new(1.0).distance(&X, &Y) - CityBlock.distance(&X, &Y)).abs() < 1e-12);
    }

    #[test]
    fn minkowski_approaches_chebyshev_for_large_p() {
        let d = Minkowski::new(50.0).distance(&X, &Y);
        assert!((d - Chebyshev.distance(&X, &Y)).abs() < 0.1);
    }

    #[test]
    fn lp_norms_are_monotone_decreasing_in_p() {
        let d1 = Minkowski::new(1.0).distance(&X, &Y);
        let d2 = Minkowski::new(2.0).distance(&X, &Y);
        let d5 = Minkowski::new(5.0).distance(&X, &Y);
        assert!(d1 >= d2 && d2 >= d5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_order_panics() {
        let _ = Minkowski::new(0.0);
    }

    #[test]
    fn triangle_inequality_for_euclidean() {
        let z = [0.0, 5.0, -1.0, 2.0];
        let dxz = Euclidean.distance(&X, &z);
        let dxy = Euclidean.distance(&X, &Y);
        let dyz = Euclidean.distance(&Y, &z);
        assert!(dxz <= dxy + dyz + 1e-12);
    }
}
