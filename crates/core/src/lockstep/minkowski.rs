//! The Minkowski (Lp) family: Euclidean, City-block, Minkowski, Chebyshev.

use super::{lockstep_measure, zip_sum, zip_sum_upto};
use crate::lanes::lane_sum_upto_by;
use crate::measure::Distance;
use crate::workspace::Workspace;

lockstep_measure!(
    upto
    /// Euclidean distance (L2 norm), the paper's lock-step baseline (M2):
    /// `sqrt(sum (x_i - y_i)^2)`.
    Euclidean,
    "ED",
    metric All,
    |x, y| zip_sum(x, y, |a, b| (a - b) * (a - b)).sqrt(),
    |x, y, cutoff| {
        // Cheap squared trigger, then an exact confirm on the rounded
        // sqrt: sqrt is correctly rounded and monotone, so a partial sum
        // whose sqrt already reaches `cutoff` bounds the full distance.
        // The lane kernel accumulates exactly like the exact path, so a
        // non-abandoned sum (and hence its sqrt) matches bit-for-bit.
        let sq = cutoff * cutoff;
        match lane_sum_upto_by(
            x,
            y,
            |a, b| (a - b) * (a - b),
            |partial| partial >= sq && partial.sqrt() >= cutoff,
        ) {
            Some(sum) => sum.sqrt(),
            None => f64::INFINITY,
        }
    }
);

lockstep_measure!(
    upto
    /// City-block / Manhattan distance (L1 norm): `sum |x_i - y_i|`.
    CityBlock,
    "Manhattan",
    metric All,
    |x, y| zip_sum(x, y, |a, b| (a - b).abs()),
    |x, y, cutoff| zip_sum_upto(x, y, cutoff, |a, b| (a - b).abs())
);

lockstep_measure!(
    upto
    /// Chebyshev distance (L-infinity norm): `max |x_i - y_i|`.
    ///
    /// The lane reduction is bit-identical to the old sequential fold:
    /// `f64::max` ignores NaN in any order and the absolute-value terms
    /// exclude negative zero, so max is exactly reassociable.
    Chebyshev,
    "Chebyshev",
    metric All,
    |x, y| crate::lanes::lane_max(x, y, |a, b| (a - b).abs()),
    |x, y, cutoff| {
        // Running max is monotone non-decreasing, so a block whose
        // combined max reaches the cutoff settles the comparison.
        crate::lanes::lane_max_upto(x, y, cutoff, |a, b| (a - b).abs())
    }
);

/// Minkowski distance (Lp norm) with tunable order `p`:
/// `(sum |x_i - y_i|^p)^(1/p)`.
///
/// The only lock-step measure requiring supervised tuning; Table 4's grid
/// spans `p` from 0.1 (a "fractional norm") to 20.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    /// The order of the norm; must be positive (values below 1 give a
    /// well-defined dissimilarity even though it is no longer a metric).
    pub p: f64,
}

impl Minkowski {
    /// Creates the Lp measure.
    ///
    /// # Panics
    /// Panics if `p` is not strictly positive.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0, "Minkowski order must be positive, got {p}");
        Minkowski { p }
    }
}

impl Distance for Minkowski {
    fn name(&self) -> String {
        format!("Minkowski(p={})", self.p)
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        zip_sum(x, y, |a, b| (a - b).abs().powf(self.p)).powf(1.0 / self.p)
    }

    fn distance_upto(&self, x: &[f64], y: &[f64], ws: &mut Workspace, cutoff: f64) -> f64 {
        if cutoff.is_nan() || cutoff == f64::INFINITY {
            return self.distance_ws(x, y, ws);
        }
        // `powf` is not correctly rounded, so the cheap `cutoff^p` trigger
        // is confirmed against the actual root with a 1e-9 relative margin
        // (orders of magnitude above powf's few-ulp error) before
        // abandoning. For negative cutoffs `cutoff.powf(p)` is NaN and the
        // trigger never fires: the exact value is computed, which is
        // trivially admissible. The lane kernel accumulates exactly like
        // the exact path, so a non-abandoned sum matches bit-for-bit.
        let thresh = cutoff.powf(self.p);
        let p = self.p;
        match lane_sum_upto_by(
            x,
            y,
            |a, b| (a - b).abs().powf(p),
            |partial| partial >= thresh && partial.powf(1.0 / p) >= cutoff * (1.0 + 1e-9),
        ) {
            Some(sum) => sum.powf(1.0 / p),
            None => f64::INFINITY,
        }
    }

    fn lanes_hint(&self) -> usize {
        crate::lanes::LANES
    }

    fn metric_regime(&self) -> crate::measure::MetricRegime {
        // Lp is a norm-induced metric only for p >= 1; the fractional
        // orders in Table 4's grid (p < 1) break the triangle inequality
        // and must stay out of the pivot layer.
        if self.p >= 1.0 {
            crate::measure::MetricRegime::All
        } else {
            crate::measure::MetricRegime::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
    const Y: [f64; 4] = [2.0, 2.0, 1.0, 6.0];
    // diffs: -1, 0, 2, -2

    #[test]
    fn euclidean_hand_value() {
        assert!((Euclidean.distance(&X, &Y) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cityblock_hand_value() {
        assert_eq!(CityBlock.distance(&X, &Y), 5.0);
    }

    #[test]
    fn chebyshev_hand_value() {
        assert_eq!(Chebyshev.distance(&X, &Y), 2.0);
    }

    #[test]
    fn minkowski_reduces_to_special_cases() {
        assert!((Minkowski::new(2.0).distance(&X, &Y) - Euclidean.distance(&X, &Y)).abs() < 1e-12);
        assert!((Minkowski::new(1.0).distance(&X, &Y) - CityBlock.distance(&X, &Y)).abs() < 1e-12);
    }

    #[test]
    fn minkowski_approaches_chebyshev_for_large_p() {
        let d = Minkowski::new(50.0).distance(&X, &Y);
        assert!((d - Chebyshev.distance(&X, &Y)).abs() < 0.1);
    }

    #[test]
    fn lp_norms_are_monotone_decreasing_in_p() {
        let d1 = Minkowski::new(1.0).distance(&X, &Y);
        let d2 = Minkowski::new(2.0).distance(&X, &Y);
        let d5 = Minkowski::new(5.0).distance(&X, &Y);
        assert!(d1 >= d2 && d2 >= d5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_order_panics() {
        let _ = Minkowski::new(0.0);
    }

    #[test]
    fn triangle_inequality_for_euclidean() {
        let z = [0.0, 5.0, -1.0, 2.0];
        let dxz = Euclidean.distance(&X, &z);
        let dxy = Euclidean.distance(&X, &Y);
        let dyz = Euclidean.distance(&Y, &z);
        assert!(dxz <= dxy + dyz + 1e-12);
    }
}
