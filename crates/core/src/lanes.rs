//! Multi-lane accumulation kernels for the lock-step hot paths.
//!
//! Every lock-step measure reduces `f(x_i, y_i)` over the common prefix
//! of two series. A sequential fold serializes on the accumulator's
//! add latency (~4 cycles per element); splitting the reduction across
//! [`LANES`] independent accumulators fed by [`slice::chunks_exact`]
//! exposes the instruction-level and SIMD parallelism the backend can
//! actually use, with a scalar tail for the remainder.
//!
//! The price is *reassociation*: `(((t0+t1)+t2)+t3)+…` becomes a fixed
//! binary tree over per-lane partial sums, so results differ from the
//! sequential fold by a few ULPs (bounded by `n·eps` relative error for
//! non-negative terms; see DESIGN.md §9 for the per-family policy).
//! What never varies is the association *within this module*: the exact
//! path ([`lane_sum`]) and the early-abandoning path ([`lane_sum_upto`])
//! accumulate chunk-for-chunk identically, so a non-abandoned `upto`
//! call reproduces the exact value bit-for-bit — the
//! [`crate::measure::Distance::distance_upto`] contract.
//!
//! Early abandoning checks the cutoff once per [`ABANDON_BLOCK`]
//! elements (not per element): the combined partial sum of non-negative
//! terms is monotone non-decreasing under both per-lane accumulation and
//! the combine tree, so a partial `>= cutoff` proves the full sum is too.
//! Max-reductions ([`lane_max`]) are exactly reassociable — `f64::max`
//! ignores NaN in any order and the terms are absolute values, so signed
//! zeros cannot appear — and therefore bit-match the sequential fold.

/// Number of independent accumulator lanes in the chunked reductions.
///
/// Eight `f64` lanes fill one AVX-512 register or four SSE2 registers;
/// either way the reduction becomes throughput-bound instead of
/// latency-bound.
pub const LANES: usize = 8;

/// Elements between cutoff checks in the `upto` kernels: four chunks of
/// [`LANES`], so the (7-add) combine tree amortizes to well under one
/// extra operation per element.
pub const ABANDON_BLOCK: usize = 4 * LANES;

/// The fixed combine tree over the per-lane partial sums. Every caller
/// — exact or abandoning — reduces through this same tree, which is what
/// keeps the two paths bit-identical.
#[inline]
fn combine(acc: &[f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

#[inline]
fn combine_max(acc: &[f64; LANES]) -> f64 {
    (acc[0].max(acc[1]).max(acc[2].max(acc[3]))).max(acc[4].max(acc[5]).max(acc[6].max(acc[7])))
}

/// Accumulates one [`LANES`]-sized chunk pair into the lane accumulators.
#[inline]
fn accumulate_chunk(
    acc: &mut [f64; LANES],
    cx: &[f64],
    cy: &[f64],
    f: &mut impl FnMut(f64, f64) -> f64,
) {
    // `chunks_exact` guarantees `cx.len() == cy.len() == LANES`, so the
    // bounds checks vanish and the loop is a straight-line SLP candidate.
    for k in 0..LANES {
        acc[k] += f(cx[k], cy[k]);
    }
}

/// `sum f(x_i, y_i)` over the common prefix, reduced across [`LANES`]
/// accumulators with a scalar tail.
#[inline]
pub fn lane_sum(x: &[f64], y: &[f64], mut f: impl FnMut(f64, f64) -> f64) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        accumulate_chunk(&mut acc, cx, cy, &mut f);
    }
    let mut tail = 0.0;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += f(a, b);
    }
    combine(&acc) + tail
}

/// Early-abandoning [`lane_sum`] for **non-negative** term functions,
/// generic over the abandon predicate (Euclidean confirms through a
/// `sqrt`, Minkowski through a `powf` root; plain sums compare directly).
///
/// Returns `None` as soon as `abandon(partial_sum)` holds — checked once
/// per [`ABANDON_BLOCK`] elements and once on the final sum — otherwise
/// `Some(sum)` with `sum` bit-identical to [`lane_sum`].
///
/// Admissibility: each partial handed to `abandon` is a combine-tree sum
/// of per-lane prefixes. Adding non-negative terms is monotone
/// non-decreasing in every lane, and the combine tree is monotone in
/// every operand, so each partial is a lower bound of the final sum; a
/// partial that already satisfies the (monotone) abandon predicate
/// proves the final sum would too. NaN terms never satisfy `>=`
/// predicates and simply fall through to the exact value.
#[inline]
pub fn lane_sum_upto_by(
    x: &[f64],
    y: &[f64],
    mut f: impl FnMut(f64, f64) -> f64,
    mut abandon: impl FnMut(f64) -> bool,
) -> Option<f64> {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + ABANDON_BLOCK <= n {
        for (cx, cy) in x[i..i + ABANDON_BLOCK]
            .chunks_exact(LANES)
            .zip(y[i..i + ABANDON_BLOCK].chunks_exact(LANES))
        {
            accumulate_chunk(&mut acc, cx, cy, &mut f);
        }
        if abandon(combine(&acc)) {
            return None;
        }
        i += ABANDON_BLOCK;
    }
    let mut xc = x[i..].chunks_exact(LANES);
    let mut yc = y[i..].chunks_exact(LANES);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        accumulate_chunk(&mut acc, cx, cy, &mut f);
    }
    let mut tail = 0.0;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += f(a, b);
    }
    let total = combine(&acc) + tail;
    if abandon(total) {
        return None;
    }
    Some(total)
}

/// [`lane_sum_upto_by`] with the plain `partial >= cutoff` predicate,
/// returning [`f64::INFINITY`] on abandon (the `distance_upto` canon).
#[inline]
pub fn lane_sum_upto(x: &[f64], y: &[f64], cutoff: f64, f: impl FnMut(f64, f64) -> f64) -> f64 {
    lane_sum_upto_by(x, y, f, |partial| partial >= cutoff).unwrap_or(f64::INFINITY)
}

/// Accumulates one [`LANES`]-sized chunk triple into the lane
/// accumulators (the three-slice analogue of [`accumulate_chunk`], used
/// by the envelope-based lower bounds).
#[inline]
fn accumulate_chunk3(
    acc: &mut [f64; LANES],
    cx: &[f64],
    cu: &[f64],
    cl: &[f64],
    f: &mut impl FnMut(f64, f64, f64) -> f64,
) {
    for k in 0..LANES {
        acc[k] += f(cx[k], cu[k], cl[k]);
    }
}

/// `sum f(x_i, u_i, l_i)` over the common prefix of three slices,
/// reduced across [`LANES`] accumulators with a scalar tail — the
/// three-slice [`lane_sum`], shaped for LB_Keogh's
/// (query, upper-envelope, lower-envelope) walk.
#[inline]
pub fn lane_sum3(x: &[f64], u: &[f64], l: &[f64], mut f: impl FnMut(f64, f64, f64) -> f64) -> f64 {
    let n = x.len().min(u.len()).min(l.len());
    let (x, u, l) = (&x[..n], &u[..n], &l[..n]);
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut uc = u.chunks_exact(LANES);
    let mut lc = l.chunks_exact(LANES);
    for ((cx, cu), cl) in (&mut xc).zip(&mut uc).zip(&mut lc) {
        accumulate_chunk3(&mut acc, cx, cu, cl, &mut f);
    }
    let mut tail = 0.0;
    for ((&a, &b), &c) in xc
        .remainder()
        .iter()
        .zip(uc.remainder())
        .zip(lc.remainder())
    {
        tail += f(a, b, c);
    }
    combine(&acc) + tail
}

/// Early-abandoning [`lane_sum3`] for **non-negative** term functions:
/// returns [`f64::INFINITY`] as soon as a block-boundary partial reaches
/// `cutoff`, otherwise the exact [`lane_sum3`] value bit-for-bit (same
/// chunk layout, same combine tree — the admissibility argument of
/// [`lane_sum_upto_by`] applies unchanged).
#[inline]
pub fn lane_sum3_upto(
    x: &[f64],
    u: &[f64],
    l: &[f64],
    cutoff: f64,
    mut f: impl FnMut(f64, f64, f64) -> f64,
) -> f64 {
    let n = x.len().min(u.len()).min(l.len());
    let (x, u, l) = (&x[..n], &u[..n], &l[..n]);
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + ABANDON_BLOCK <= n {
        for ((cx, cu), cl) in x[i..i + ABANDON_BLOCK]
            .chunks_exact(LANES)
            .zip(u[i..i + ABANDON_BLOCK].chunks_exact(LANES))
            .zip(l[i..i + ABANDON_BLOCK].chunks_exact(LANES))
        {
            accumulate_chunk3(&mut acc, cx, cu, cl, &mut f);
        }
        if combine(&acc) >= cutoff {
            return f64::INFINITY;
        }
        i += ABANDON_BLOCK;
    }
    let mut xc = x[i..].chunks_exact(LANES);
    let mut uc = u[i..].chunks_exact(LANES);
    let mut lc = l[i..].chunks_exact(LANES);
    for ((cx, cu), cl) in (&mut xc).zip(&mut uc).zip(&mut lc) {
        accumulate_chunk3(&mut acc, cx, cu, cl, &mut f);
    }
    let mut tail = 0.0;
    for ((&a, &b), &c) in xc
        .remainder()
        .iter()
        .zip(uc.remainder())
        .zip(lc.remainder())
    {
        tail += f(a, b, c);
    }
    let total = combine(&acc) + tail;
    if total >= cutoff {
        return f64::INFINITY;
    }
    total
}

/// `max f(x_i, y_i)` over the common prefix, reduced across [`LANES`]
/// lanes. Bit-identical to the sequential `fold(0.0, f64::max)` for
/// terms that are never negative zero (absolute values): `f64::max`
/// ignores NaN operands in any order, so the reduction is exactly
/// reassociable.
#[inline]
pub fn lane_max(x: &[f64], y: &[f64], mut f: impl FnMut(f64, f64) -> f64) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        for k in 0..LANES {
            acc[k] = acc[k].max(f(cx[k], cy[k]));
        }
    }
    let mut tail = 0.0f64;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail = tail.max(f(a, b));
    }
    combine_max(&acc).max(tail)
}

/// Early-abandoning [`lane_max`]: the running max is monotone
/// non-decreasing, so a block whose combined max reaches `cutoff`
/// settles the comparison. Returns [`f64::INFINITY`] on abandon,
/// otherwise the exact [`lane_max`] value.
#[inline]
pub fn lane_max_upto(x: &[f64], y: &[f64], cutoff: f64, mut f: impl FnMut(f64, f64) -> f64) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + ABANDON_BLOCK <= n {
        for (cx, cy) in x[i..i + ABANDON_BLOCK]
            .chunks_exact(LANES)
            .zip(y[i..i + ABANDON_BLOCK].chunks_exact(LANES))
        {
            for k in 0..LANES {
                acc[k] = acc[k].max(f(cx[k], cy[k]));
            }
        }
        if combine_max(&acc) >= cutoff {
            return f64::INFINITY;
        }
        i += ABANDON_BLOCK;
    }
    let mut xc = x[i..].chunks_exact(LANES);
    let mut yc = y[i..].chunks_exact(LANES);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        for k in 0..LANES {
            acc[k] = acc[k].max(f(cx[k], cy[k]));
        }
    }
    let mut tail = 0.0f64;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail = tail.max(f(a, b));
    }
    let total = combine_max(&acc).max(tail);
    if total >= cutoff {
        return f64::INFINITY;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        // SplitMix64-ish deterministic noise.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z ^ (z >> 31)) as f64 / u64::MAX as f64) * 4.0 - 2.0
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        (x, y)
    }

    #[test]
    fn lane_sum_matches_sequential_within_ulps() {
        for n in [0, 1, 2, LANES - 1, LANES, LANES + 1, 2 * LANES + 3, 256] {
            let (x, y) = series(n, n as u64 + 1);
            let lane = lane_sum(&x, &y, |a, b| (a - b) * (a - b));
            let seq: f64 = x.iter().zip(&y).map(|(&a, &b)| (a - b) * (a - b)).sum();
            assert!(
                (lane - seq).abs() <= 1e-12 * seq.abs().max(1.0),
                "n={n}: lane {lane} vs seq {seq}"
            );
        }
    }

    #[test]
    fn upto_without_abandon_is_bit_identical_to_exact() {
        for n in [
            0,
            1,
            2,
            LANES - 1,
            LANES,
            LANES + 1,
            2 * LANES + 3,
            255,
            256,
        ] {
            let (x, y) = series(n, 77 + n as u64);
            let exact = lane_sum(&x, &y, |a, b| (a - b).abs());
            let upto = lane_sum_upto(&x, &y, f64::INFINITY, |a, b| (a - b).abs());
            assert_eq!(exact.to_bits(), upto.to_bits(), "n={n}");
        }
    }

    #[test]
    fn upto_abandons_at_or_above_cutoff() {
        let (x, y) = series(256, 3);
        let exact = lane_sum(&x, &y, |a, b| (a - b).abs());
        for frac in [0.1, 0.5, 0.99, 1.0] {
            let cutoff = exact * frac;
            let got = lane_sum_upto(&x, &y, cutoff, |a, b| (a - b).abs());
            assert!(got >= cutoff, "cutoff {cutoff}: got {got}");
        }
        let above = lane_sum_upto(&x, &y, exact * 1.01, |a, b| (a - b).abs());
        assert_eq!(above.to_bits(), exact.to_bits());
    }

    #[test]
    fn lane_sum3_matches_two_slice_shape_and_upto_contract() {
        for n in [0, 1, 2, LANES - 1, LANES, LANES + 1, 2 * LANES + 3, 256] {
            let (x, u) = series(n, 1000 + n as u64);
            let l: Vec<f64> = u.iter().map(|v| v - 1.0).collect();
            let term = |v: f64, up: f64, lo: f64| {
                let d = (v - up).max(0.0) + (lo - v).max(0.0);
                d * d
            };
            let exact = lane_sum3(&x, &u, &l, term);
            // Same terms through the two-slice kernel (folding the lower
            // envelope into the closure) — identical chunk layout must
            // give identical bits.
            let li = std::cell::Cell::new(0usize);
            let two = lane_sum(&x, &u, |v, up| {
                let lo = l[li.get()];
                li.set(li.get() + 1);
                term(v, up, lo)
            });
            assert_eq!(exact.to_bits(), two.to_bits(), "n={n}");
            // Non-abandoned upto is bit-identical; cutoff at half the
            // value abandons admissibly.
            let upto = lane_sum3_upto(&x, &u, &l, f64::INFINITY, term);
            assert_eq!(exact.to_bits(), upto.to_bits(), "n={n}");
            if exact > 0.0 {
                let cut = lane_sum3_upto(&x, &u, &l, exact * 0.5, term);
                assert!(cut >= exact * 0.5, "n={n}");
            }
        }
    }

    #[test]
    fn lane_max_is_bit_identical_to_fold() {
        for n in [0, 1, LANES, LANES + 1, 2 * LANES + 3, 100] {
            let (x, y) = series(n, 11 + n as u64);
            let lane = lane_max(&x, &y, |a, b| (a - b).abs());
            let seq = x
                .iter()
                .zip(&y)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert_eq!(lane.to_bits(), seq.to_bits(), "n={n}");
        }
    }

    #[test]
    fn lane_max_upto_matches_contract() {
        let (x, y) = series(200, 5);
        let exact = lane_max(&x, &y, |a, b| (a - b).abs());
        let below = lane_max_upto(&x, &y, exact * 0.5, |a, b| (a - b).abs());
        assert_eq!(below, f64::INFINITY);
        let above = lane_max_upto(&x, &y, exact * 2.0, |a, b| (a - b).abs());
        assert_eq!(above.to_bits(), exact.to_bits());
    }
}
