//! A registry enumerating every measure of the study with its Table 4
//! parameter grid — the single source of truth for the evaluation
//! platform and the Table 1 summary.

use crate::elastic::{Dtw, Edr, Erp, Lcss, Msm, Swale, Twe};
use crate::embedding::{Embedding, Grail, Rws, Sidl, Spiral};
use crate::kernel::{Gak, Kdtw, Rbf, Sink};
use crate::lockstep as ls;
use crate::measure::{Distance, Kernel};
use crate::params;
use crate::sliding::{CrossCorrelation, NccVariant};

/// The five measure categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Point-i-to-point-i measures (Section 5).
    LockStep,
    /// Cross-correlation measures (Section 6).
    Sliding,
    /// Warping-alignment measures (Section 7).
    Elastic,
    /// Kernel functions (Section 8).
    Kernel,
    /// Representation-learning measures (Section 9).
    Embedding,
}

/// A family of distance measures sharing one name and a parameter grid
/// (a single-element grid for parameter-free measures).
pub struct DistanceFamily {
    /// Family name, e.g. `"DTW"`.
    pub family: &'static str,
    /// One instance per Table 4 grid point.
    pub grid: Vec<Box<dyn Distance>>,
}

/// A family of kernel functions with its parameter grid.
pub struct KernelFamily {
    /// Family name, e.g. `"GAK"`.
    pub family: &'static str,
    /// One instance per Table 4 grid point.
    pub grid: Vec<Box<dyn Kernel>>,
}

/// The 51 parameter-free lock-step measures (everything in Section 5
/// except the tunable Minkowski).
pub fn lockstep_parameter_free() -> Vec<Box<dyn Distance>> {
    vec![
        Box::new(ls::Euclidean),
        Box::new(ls::CityBlock),
        Box::new(ls::Chebyshev),
        Box::new(ls::Sorensen),
        Box::new(ls::Gower),
        Box::new(ls::Soergel),
        Box::new(ls::KulczynskiD),
        Box::new(ls::Canberra),
        Box::new(ls::Lorentzian),
        Box::new(ls::Intersection),
        Box::new(ls::WaveHedges),
        Box::new(ls::Czekanowski),
        Box::new(ls::Motyka),
        Box::new(ls::KulczynskiS),
        Box::new(ls::Ruzicka),
        Box::new(ls::Tanimoto),
        Box::new(ls::InnerProduct),
        Box::new(ls::HarmonicMean),
        Box::new(ls::Cosine),
        Box::new(ls::KumarHassebrook),
        Box::new(ls::Jaccard),
        Box::new(ls::Dice),
        Box::new(ls::Fidelity),
        Box::new(ls::Bhattacharyya),
        Box::new(ls::Hellinger),
        Box::new(ls::Matusita),
        Box::new(ls::SquaredChord),
        Box::new(ls::SquaredEuclidean),
        Box::new(ls::PearsonChiSq),
        Box::new(ls::NeymanChiSq),
        Box::new(ls::SquaredChiSq),
        Box::new(ls::ProbSymmetricChiSq),
        Box::new(ls::Divergence),
        Box::new(ls::Clark),
        Box::new(ls::AdditiveSymmetricChiSq),
        Box::new(ls::KullbackLeibler),
        Box::new(ls::Jeffreys),
        Box::new(ls::KDivergence),
        Box::new(ls::Topsoe),
        Box::new(ls::JensenShannon),
        Box::new(ls::JensenDifference),
        Box::new(ls::Taneja),
        Box::new(ls::KumarJohnson),
        Box::new(ls::AvgL1Linf),
        Box::new(ls::VicisWaveHedges),
        Box::new(ls::VicisSymmetricChiSq1),
        Box::new(ls::VicisSymmetricChiSq2),
        Box::new(ls::VicisSymmetricChiSq3),
        Box::new(ls::MaxSymmetricChiSq),
        Box::new(ls::Dissim),
        Box::new(ls::AdaptiveScalingDistance),
    ]
}

/// The Minkowski family with its Table 4 grid — the only supervised
/// lock-step measure.
pub fn minkowski_family() -> DistanceFamily {
    DistanceFamily {
        family: "Minkowski",
        grid: params::MINKOWSKI_PS
            .iter()
            .map(|&p| Box::new(ls::Minkowski::new(p)) as Box<dyn Distance>)
            .collect(),
    }
}

/// The 4 sliding measures of Section 6.
pub fn sliding_measures() -> Vec<Box<dyn Distance>> {
    NccVariant::ALL
        .iter()
        .map(|&v| Box::new(CrossCorrelation::new(v)) as Box<dyn Distance>)
        .collect()
}

/// The 7 elastic families with their Table 4 grids (supervised setting).
pub fn elastic_families() -> Vec<DistanceFamily> {
    let dtw = DistanceFamily {
        family: "DTW",
        grid: params::DTW_WINDOWS
            .iter()
            .map(|&w| Box::new(Dtw::with_window_pct(w)) as Box<dyn Distance>)
            .collect(),
    };
    let lcss = DistanceFamily {
        family: "LCSS",
        grid: params::LCSS_DELTAS
            .iter()
            .flat_map(|&d| {
                params::LCSS_EPSILONS
                    .iter()
                    .map(move |&e| Box::new(Lcss::new(e, d)) as Box<dyn Distance>)
            })
            .collect(),
    };
    let edr = DistanceFamily {
        family: "EDR",
        grid: params::EDR_EPSILONS
            .iter()
            .map(|&e| Box::new(Edr::new(e)) as Box<dyn Distance>)
            .collect(),
    };
    let erp = DistanceFamily {
        family: "ERP",
        grid: vec![Box::new(Erp::new())],
    };
    let msm = DistanceFamily {
        family: "MSM",
        grid: params::MSM_COSTS
            .iter()
            .map(|&c| Box::new(Msm::new(c)) as Box<dyn Distance>)
            .collect(),
    };
    let twe = DistanceFamily {
        family: "TWE",
        grid: params::TWE_LAMBDAS
            .iter()
            .flat_map(|&l| {
                params::TWE_NUS
                    .iter()
                    .map(move |&n| Box::new(Twe::new(l, n)) as Box<dyn Distance>)
            })
            .collect(),
    };
    let swale = DistanceFamily {
        family: "Swale",
        grid: params::SWALE_EPSILONS
            .iter()
            .map(|&e| {
                Box::new(Swale::new(e, params::SWALE_REWARD, params::SWALE_PENALTY))
                    as Box<dyn Distance>
            })
            .collect(),
    };
    vec![msm, twe, dtw, edr, lcss, swale, erp]
}

/// The elastic measures with the paper's fixed unsupervised parameters
/// (Table 5): `(display name, instance)`.
pub fn elastic_unsupervised() -> Vec<(String, Box<dyn Distance>)> {
    use params::unsupervised as u;
    vec![
        (
            "MSM(c=0.5)".into(),
            Box::new(Msm::new(u::MSM_COST)) as Box<dyn Distance>,
        ),
        (
            "TWE(λ=1,ν=0.0001)".into(),
            Box::new(Twe::new(u::TWE_LAMBDA, u::TWE_NU)),
        ),
        ("DTW(δ=100)".into(), Box::new(Dtw::with_window_pct(100.0))),
        ("DTW(δ=10)".into(), Box::new(Dtw::with_window_pct(10.0))),
        ("EDR(ε=0.1)".into(), Box::new(Edr::new(u::EDR_EPSILON))),
        (
            "Swale(ε=0.2)".into(),
            Box::new(Swale::new(
                u::SWALE_EPSILON,
                params::SWALE_REWARD,
                params::SWALE_PENALTY,
            )),
        ),
        (
            "LCSS(δ=5,ε=0.2)".into(),
            Box::new(Lcss::new(u::LCSS_EPSILON, u::LCSS_DELTA)),
        ),
        ("ERP".into(), Box::new(Erp::new())),
    ]
}

/// The 4 kernel families with their Table 4 grids (supervised setting).
pub fn kernel_families() -> Vec<KernelFamily> {
    vec![
        KernelFamily {
            family: "KDTW",
            grid: params::kdtw_gammas()
                .into_iter()
                .map(|g| Box::new(Kdtw::new(g)) as Box<dyn Kernel>)
                .collect(),
        },
        KernelFamily {
            family: "GAK",
            grid: params::GAK_GAMMAS
                .iter()
                .map(|&g| Box::new(Gak::new(g)) as Box<dyn Kernel>)
                .collect(),
        },
        KernelFamily {
            family: "SINK",
            grid: params::sink_gammas()
                .into_iter()
                .map(|g| Box::new(Sink::new(g)) as Box<dyn Kernel>)
                .collect(),
        },
        KernelFamily {
            family: "RBF",
            grid: params::rbf_gammas()
                .into_iter()
                .map(|g| Box::new(Rbf::new(g)) as Box<dyn Kernel>)
                .collect(),
        },
    ]
}

/// Kernels with the paper's fixed unsupervised parameters (Table 6).
pub fn kernel_unsupervised() -> Vec<(String, Box<dyn Kernel>)> {
    use params::unsupervised as u;
    vec![
        (
            "KDTW(γ=0.125)".into(),
            Box::new(Kdtw::new(u::KDTW_GAMMA)) as Box<dyn Kernel>,
        ),
        ("GAK(γ=0.1)".into(), Box::new(Gak::new(u::GAK_GAMMA))),
        ("SINK(γ=5)".into(), Box::new(Sink::new(u::SINK_GAMMA))),
        ("RBF(γ=1)".into(), Box::new(Rbf::new(u::RBF_GAMMA))),
    ]
}

/// The 4 embedding families. Each entry is `(family name, grid)` where a
/// grid point is a boxed embedder; `dims` is the shared representation
/// length (the paper uses 100) and `seed` makes runs reproducible.
/// `series_len` resolves SIDL's atom-length ratios.
pub fn embedding_families(
    dims: usize,
    series_len: usize,
    seed: u64,
) -> Vec<(&'static str, Vec<Box<dyn Embedding>>)> {
    let landmarks = dims.max(4);
    let grail = params::grail_gammas()
        .into_iter()
        .map(|g| Box::new(Grail::new(g, landmarks, dims, seed)) as Box<dyn Embedding>)
        .collect();
    let rws = params::RWS_GAMMAS
        .iter()
        .map(|&g| Box::new(Rws::new(g, dims, params::RWS_D_MAX, seed)) as Box<dyn Embedding>)
        .collect();
    let spiral = vec![Box::new(Spiral::new(1.0, landmarks, dims, seed)) as Box<dyn Embedding>];
    let sidl = params::SIDL_RATIOS
        .iter()
        .map(|&r| {
            let atom_len = ((series_len as f64 * r).round() as usize).max(2);
            Box::new(Sidl::new(dims, atom_len, 2, seed)) as Box<dyn Embedding>
        })
        .collect();
    vec![
        ("GRAIL", grail),
        ("RWS", rws),
        ("SPIRAL", spiral),
        ("SIDL", sidl),
    ]
}

/// The Table 1 inventory: `(category, measure count, normalization
/// methods evaluated)`.
pub fn table1_summary() -> Vec<(Category, usize, usize)> {
    vec![
        (Category::LockStep, 52, 8),
        (Category::Sliding, 4, 8),
        (Category::Elastic, 7, 1),
        (Category::Kernel, 4, 1),
        (Category::Embedding, 4, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_cardinality_is_52() {
        // 51 parameter-free + the Minkowski family.
        assert_eq!(lockstep_parameter_free().len(), 51);
        assert_eq!(minkowski_family().grid.len(), 20);
    }

    #[test]
    fn sliding_cardinality_is_4() {
        assert_eq!(sliding_measures().len(), 4);
    }

    #[test]
    fn elastic_families_match_table_4() {
        let fams = elastic_families();
        assert_eq!(fams.len(), 7);
        let sizes: Vec<(&str, usize)> = fams.iter().map(|f| (f.family, f.grid.len())).collect();
        assert!(sizes.contains(&("DTW", 22)));
        assert!(sizes.contains(&("MSM", 10)));
        assert!(sizes.contains(&("TWE", 30)));
        assert!(sizes.contains(&("EDR", 19)));
        assert!(sizes.contains(&("LCSS", 40)));
        assert!(sizes.contains(&("Swale", 15)));
        assert!(sizes.contains(&("ERP", 1)));
    }

    #[test]
    fn kernel_families_match_table_4() {
        let fams = kernel_families();
        assert_eq!(fams.len(), 4);
        let sizes: Vec<(&str, usize)> = fams.iter().map(|f| (f.family, f.grid.len())).collect();
        assert!(sizes.contains(&("KDTW", 16)));
        assert!(sizes.contains(&("GAK", 26)));
        assert!(sizes.contains(&("SINK", 20)));
        assert!(sizes.contains(&("RBF", 16)));
    }

    #[test]
    fn total_measure_count_is_71() {
        let total = 52
            + sliding_measures().len()
            + elastic_families().len()
            + kernel_families().len()
            + embedding_families(10, 50, 0).len();
        assert_eq!(total, 71);
    }

    #[test]
    fn unsupervised_sets_are_complete() {
        assert_eq!(elastic_unsupervised().len(), 8); // 7 measures, DTW twice
        assert_eq!(kernel_unsupervised().len(), 4);
    }

    #[test]
    fn embedding_grids_are_non_empty() {
        for (name, grid) in embedding_families(16, 64, 1) {
            assert!(!grid.is_empty(), "{name}");
        }
    }

    #[test]
    fn table1_matches_the_paper() {
        let t = table1_summary();
        let total: usize = t.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total, 71);
        assert_eq!(t[0], (Category::LockStep, 52, 8));
        assert_eq!(t[1], (Category::Sliding, 4, 8));
    }
}
