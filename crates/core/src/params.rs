//! The parameter grids of Table 4, verbatim.
//!
//! Supervised (LOOCCV) tuning searches these grids on the training split;
//! the unsupervised setting uses the paper's fixed picks (Tables 5/6).

/// MSM cost grid.
pub const MSM_COSTS: [f64; 10] = [0.01, 0.1, 1.0, 10.0, 100.0, 0.05, 0.5, 5.0, 50.0, 500.0];

/// DTW Sakoe–Chiba window grid (% of series length).
pub const DTW_WINDOWS: [f64; 22] = [
    0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
    17.0, 18.0, 19.0, 20.0, 100.0,
];

/// EDR epsilon grid.
pub const EDR_EPSILONS: [f64; 19] = [
    0.001, 0.003, 0.005, 0.007, 0.009, 0.01, 0.03, 0.05, 0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
    0.7, 0.8, 0.9,
];

/// LCSS window grid (% of series length).
pub const LCSS_DELTAS: [f64; 2] = [5.0, 10.0];

/// LCSS epsilon grid (same thresholds as EDR plus 1.0).
pub const LCSS_EPSILONS: [f64; 20] = [
    0.001, 0.003, 0.005, 0.007, 0.009, 0.01, 0.03, 0.05, 0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
    0.7, 0.8, 0.9, 1.0,
];

/// TWE lambda grid.
pub const TWE_LAMBDAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// TWE nu grid.
pub const TWE_NUS: [f64; 6] = [0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0];

/// Swale epsilon grid (`p = 5`, `r = 1` fixed).
pub const SWALE_EPSILONS: [f64; 15] = [
    0.01, 0.03, 0.05, 0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
];

/// Swale gap penalty.
pub const SWALE_PENALTY: f64 = 5.0;

/// Swale match reward.
pub const SWALE_REWARD: f64 = 1.0;

/// Minkowski order grid.
pub const MINKOWSKI_PS: [f64; 20] = [
    0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.3, 1.5, 1.7, 1.9, 2.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0,
    17.0, 20.0,
];

/// KDTW gamma grid: `2^-15 ..= 2^0`.
pub fn kdtw_gammas() -> Vec<f64> {
    (-15..=0).map(|e| 2f64.powi(e)).collect()
}

/// GAK gamma (bandwidth) grid.
pub const GAK_GAMMAS: [f64; 26] = [
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0,
    12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0, 19.0, 20.0,
];

/// SINK gamma grid: `1 ..= 20`.
pub fn sink_gammas() -> Vec<f64> {
    (1..=20).map(|g| g as f64).collect()
}

/// RBF gamma grid: `2^-15 ..= 2^0`.
pub fn rbf_gammas() -> Vec<f64> {
    (-15..=0).map(|e| 2f64.powi(e)).collect()
}

/// GRAIL gamma grid (same as SINK).
pub fn grail_gammas() -> Vec<f64> {
    sink_gammas()
}

/// RWS gamma grid (Table 4's log-spaced grid).
pub const RWS_GAMMAS: [f64; 23] = [
    1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.14, 0.19, 0.28, 0.39, 0.56, 0.79, 1.12, 1.58, 2.23, 3.16, 4.46,
    6.30, 8.91, 10.0, 31.62, 1e2, 3e2, 1e3,
];

/// RWS maximum random-series length.
pub const RWS_D_MAX: usize = 25;

/// SIDL sparsity grid.
pub const SIDL_LAMBDAS: [f64; 3] = [0.1, 1.0, 10.0];

/// SIDL atom-length ratio grid (fraction of series length).
pub const SIDL_RATIOS: [f64; 3] = [0.1, 0.25, 0.5];

/// The representation length the paper fixes for all embeddings.
pub const EMBEDDING_DIMS: usize = 100;

/// The paper's unsupervised parameter picks (Tables 5 and 6).
pub mod unsupervised {
    /// MSM: `c = 0.5`.
    pub const MSM_COST: f64 = 0.5;
    /// TWE: `λ = 1`.
    pub const TWE_LAMBDA: f64 = 1.0;
    /// TWE: `ν = 0.0001`.
    pub const TWE_NU: f64 = 0.0001;
    /// DTW: `δ = 10` (the "cheap default") and `δ = 100` (parameter-free).
    pub const DTW_WINDOWS: [f64; 2] = [100.0, 10.0];
    /// EDR: `ε = 0.1`.
    pub const EDR_EPSILON: f64 = 0.1;
    /// Swale: `ε = 0.2`.
    pub const SWALE_EPSILON: f64 = 0.2;
    /// LCSS: `δ = 5, ε = 0.2`.
    pub const LCSS_DELTA: f64 = 5.0;
    /// LCSS: `ε = 0.2`.
    pub const LCSS_EPSILON: f64 = 0.2;
    /// KDTW: `γ = 0.125`.
    pub const KDTW_GAMMA: f64 = 0.125;
    /// GAK: `γ = 0.1`.
    pub const GAK_GAMMA: f64 = 0.1;
    /// SINK: `γ = 5`.
    pub const SINK_GAMMA: f64 = 5.0;
    /// RBF: `γ = 2` — the paper's Table 6 unsupervised row.
    pub const RBF_GAMMA: f64 = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes_match_table_4() {
        assert_eq!(MSM_COSTS.len(), 10);
        assert_eq!(DTW_WINDOWS.len(), 22);
        assert_eq!(EDR_EPSILONS.len(), 19);
        assert_eq!(LCSS_EPSILONS.len(), 20);
        assert_eq!(TWE_LAMBDAS.len() * TWE_NUS.len(), 30);
        assert_eq!(SWALE_EPSILONS.len(), 15);
        assert_eq!(MINKOWSKI_PS.len(), 20);
        assert_eq!(kdtw_gammas().len(), 16);
        assert_eq!(GAK_GAMMAS.len(), 26);
        assert_eq!(sink_gammas().len(), 20);
        assert_eq!(rbf_gammas().len(), 16);
        assert_eq!(RWS_GAMMAS.len(), 23);
    }

    #[test]
    fn kdtw_grid_spans_the_right_range() {
        let g = kdtw_gammas();
        assert_eq!(g[0], 2f64.powi(-15));
        assert_eq!(*g.last().unwrap(), 1.0);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unsupervised_picks_live_in_their_grids() {
        assert!(MSM_COSTS.contains(&unsupervised::MSM_COST));
        assert!(TWE_LAMBDAS.contains(&unsupervised::TWE_LAMBDA));
        assert!(TWE_NUS.contains(&unsupervised::TWE_NU));
        assert!(EDR_EPSILONS.contains(&unsupervised::EDR_EPSILON));
        assert!(kdtw_gammas().contains(&unsupervised::KDTW_GAMMA));
        assert!(GAK_GAMMAS.contains(&unsupervised::GAK_GAMMA));
        assert!(sink_gammas().contains(&unsupervised::SINK_GAMMA));
        for w in unsupervised::DTW_WINDOWS {
            assert!(DTW_WINDOWS.contains(&w));
        }
    }
}
