//! The 4 sliding (cross-correlation) measures of Section 6.
//!
//! Cross-correlation slides one series over the other and takes the best
//! inner product over all shifts `s in [-m, m]` (Eq. 10), computed in
//! O(m log m) with the FFT. The paper's Eq. (11) derives four similarity
//! variants, which we expose as dissimilarities:
//!
//! * `NCC` — the raw maximum, `max_w CC_w(x, y)`,
//! * `NCC_b` — the biased estimator, `max_w CC_w / m`,
//! * `NCC_u` — the unbiased estimator, `max_w CC_w / (m - |w - m|)`,
//! * `NCC_c` — coefficient normalization, `max_w CC_w / (||x|| ||y||)`;
//!   `1 - NCC_c` is the Shape-Based Distance (SBD) of k-Shape.
//!
//! For `NCC_c` the similarity lies in `[-1, 1]`, so `d = 1 - sim` is a
//! bounded dissimilarity; for the unnormalized variants we use `d = -sim`,
//! which induces the identical 1-NN ordering.

use crate::measure::Distance;
use crate::workspace::Workspace;
use tsdist_fft::{cross_correlation, overlap_at};

/// The normalization variant of the cross-correlation measure (Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NccVariant {
    /// Raw maximum of the cross-correlation sequence.
    Raw,
    /// Biased estimator: divide by the series length `m`.
    Biased,
    /// Unbiased estimator: divide by the overlap length `m - |w - m|`.
    Unbiased,
    /// Coefficient normalization: divide by `||x|| * ||y||` (SBD).
    Coefficient,
}

impl NccVariant {
    /// All four variants, in the paper's order.
    pub const ALL: [NccVariant; 4] = [
        NccVariant::Raw,
        NccVariant::Biased,
        NccVariant::Unbiased,
        NccVariant::Coefficient,
    ];
}

/// A sliding cross-correlation dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrossCorrelation {
    variant: NccVariant,
}

impl CrossCorrelation {
    /// Creates the measure for the given variant.
    pub const fn new(variant: NccVariant) -> Self {
        CrossCorrelation { variant }
    }

    /// The NCC_c measure (SBD), the paper's strongest parameter-free
    /// baseline.
    pub const fn sbd() -> Self {
        CrossCorrelation::new(NccVariant::Coefficient)
    }

    /// The maximum normalized similarity over all shifts.
    pub fn similarity(&self, x: &[f64], y: &[f64]) -> f64 {
        let cc = cross_correlation(x, y);
        if cc.is_empty() {
            return 0.0;
        }
        let m = x.len().max(y.len()) as f64;
        match self.variant {
            NccVariant::Raw => cc.iter().cloned().fold(f64::MIN, f64::max),
            NccVariant::Biased => cc.iter().cloned().fold(f64::MIN, f64::max) / m,
            NccVariant::Unbiased => cc
                .iter()
                .enumerate()
                .map(|(w, &v)| {
                    let overlap = overlap_at(x.len(), y.len(), w).max(1);
                    v / overlap as f64
                })
                .fold(f64::MIN, f64::max),
            NccVariant::Coefficient => {
                let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
                let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
                let denom = nx * ny;
                if denom <= 0.0 {
                    0.0
                } else {
                    cc.iter().cloned().fold(f64::MIN, f64::max) / denom
                }
            }
        }
    }

    /// [`CrossCorrelation::similarity`] with the FFT buffers drawn from
    /// `ws`; bit-identical to the allocating path.
    pub fn similarity_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        let cc = ws.cc_scratch().cross_correlation(x, y);
        if cc.is_empty() {
            return 0.0;
        }
        let m = x.len().max(y.len()) as f64;
        match self.variant {
            NccVariant::Raw => cc.iter().cloned().fold(f64::MIN, f64::max),
            NccVariant::Biased => cc.iter().cloned().fold(f64::MIN, f64::max) / m,
            NccVariant::Unbiased => cc
                .iter()
                .enumerate()
                .map(|(w, &v)| {
                    let overlap = overlap_at(x.len(), y.len(), w).max(1);
                    v / overlap as f64
                })
                .fold(f64::MIN, f64::max),
            NccVariant::Coefficient => {
                let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
                let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
                let denom = nx * ny;
                if denom <= 0.0 {
                    0.0
                } else {
                    cc.iter().cloned().fold(f64::MIN, f64::max) / denom
                }
            }
        }
    }
}

impl Distance for CrossCorrelation {
    fn name(&self) -> String {
        match self.variant {
            NccVariant::Raw => "NCC".into(),
            NccVariant::Biased => "NCC_b".into(),
            NccVariant::Unbiased => "NCC_u".into(),
            NccVariant::Coefficient => "NCC_c".into(),
        }
    }

    fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        match self.variant {
            NccVariant::Coefficient => 1.0 - self.similarity(x, y),
            _ => -self.similarity(x, y),
        }
    }

    fn distance_ws(&self, x: &[f64], y: &[f64], ws: &mut Workspace) -> f64 {
        match self.variant {
            NccVariant::Coefficient => 1.0 - self.similarity_ws(x, y, ws),
            _ => -self.similarity_ws(x, y, ws),
        }
    }

    fn is_symmetric(&self) -> bool {
        // The FFT cross-correlation's rounding depends on which argument
        // is conjugated, so d(x, y) and d(y, x) match only approximately.
        false
    }
}

/// The Shape-Based Distance `SBD = 1 - NCC_c`, provided as a named alias.
pub type Sbd = CrossCorrelation;

#[cfg(test)]
mod tests {
    use super::*;

    fn znorm(x: &[f64]) -> Vec<f64> {
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-12);
        x.iter().map(|v| (v - mean) / sd).collect()
    }

    #[test]
    fn sbd_zero_for_identical_series() {
        let x = znorm(&[1.0, 3.0, 2.0, 5.0, 4.0, 1.0, 0.0, 2.0]);
        let d = CrossCorrelation::sbd().distance(&x, &x);
        assert!(d.abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn sbd_is_shift_invariant() {
        // A compact bump shifted in time correlates perfectly at the
        // matching lag (linear shift; signal is zero elsewhere).
        let bump = |center: f64| -> Vec<f64> {
            (0..64)
                .map(|i| (-((i as f64 - center) / 4.0).powi(2) / 2.0).exp())
                .collect()
        };
        let x = znorm(&bump(20.0));
        let y = znorm(&bump(35.0));
        let d = CrossCorrelation::sbd().distance(&x, &y);
        assert!(d < 0.1, "d = {d}");
        // Lock-step ED, by contrast, sees them as very different.
        use crate::lockstep::Euclidean;
        let ed = Euclidean.distance(&x, &y);
        assert!(ed > 1.0, "ed = {ed}");
    }

    #[test]
    fn sbd_bounded_in_zero_two() {
        let x = znorm(&[1.0, -2.0, 3.0, 0.0, 1.5]);
        let y = znorm(&[-1.0, 2.0, -3.0, 0.0, -1.5]);
        let d = CrossCorrelation::sbd().distance(&x, &y);
        assert!((0.0..=2.0).contains(&d), "d = {d}");
    }

    #[test]
    fn variants_agree_on_argmax_shift_for_aligned_data() {
        // For z-normalized equal-length series all variants should view an
        // identical copy as maximally similar.
        let x = znorm(&[0.0, 1.0, 4.0, 1.0, 0.0, -1.0, -4.0, -1.0]);
        let raw = CrossCorrelation::new(NccVariant::Raw).similarity(&x, &x);
        let b = CrossCorrelation::new(NccVariant::Biased).similarity(&x, &x);
        let c = CrossCorrelation::new(NccVariant::Coefficient).similarity(&x, &x);
        // raw = sum x^2 = m (z-normalized), biased = 1, coefficient = 1.
        assert!((raw - x.len() as f64).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbiased_divides_by_overlap() {
        // A spike matching at full shift: unbiased rescaling makes short
        // overlaps count fully.
        let x = [1.0, 0.0, 0.0, 0.0];
        let y = [0.0, 0.0, 0.0, 1.0];
        let u = CrossCorrelation::new(NccVariant::Unbiased).similarity(&x, &y);
        // Overlap-1 alignment gives product 1 / 1 = 1.
        assert!((u - 1.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn ncc_b_similarity_matches_raw_over_m() {
        let x = znorm(&[0.3, 1.2, -0.7, 0.9, -1.7, 0.1]);
        let y = znorm(&[1.0, -0.2, 0.4, -0.9, 0.8, -1.1]);
        let raw = CrossCorrelation::new(NccVariant::Raw).similarity(&x, &y);
        let b = CrossCorrelation::new(NccVariant::Biased).similarity(&x, &y);
        assert!((b - raw / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sbd_equals_zscore_ncc_c_relationship() {
        // For z-normalized series NCC_c == NCC_b because ||x|| = sqrt(m).
        let x = znorm(&[0.5, 2.0, -1.0, 0.0, 1.0, -2.0, 0.3, 0.7]);
        let y = znorm(&[1.5, -0.5, 0.8, -1.2, 0.2, 0.9, -1.8, 0.1]);
        let b = CrossCorrelation::new(NccVariant::Biased).similarity(&x, &y);
        let c = CrossCorrelation::new(NccVariant::Coefficient).similarity(&x, &y);
        assert!((b - c).abs() < 1e-9, "b = {b}, c = {c}");
    }

    #[test]
    fn names() {
        assert_eq!(CrossCorrelation::new(NccVariant::Raw).name(), "NCC");
        assert_eq!(CrossCorrelation::new(NccVariant::Biased).name(), "NCC_b");
        assert_eq!(CrossCorrelation::new(NccVariant::Unbiased).name(), "NCC_u");
        assert_eq!(CrossCorrelation::sbd().name(), "NCC_c");
    }
}
