//! # tsdist-core
//!
//! The 71 time-series distance measures and 8 normalization methods of
//! *"Debunking Four Long-Standing Misconceptions of Time-Series Distance
//! Measures"* (Paparrizos, Liu, Elmore, Franklin — SIGMOD 2020),
//! implemented from scratch.
//!
//! | Category | Count | Module |
//! |----------|-------|--------|
//! | Lock-step | 52 | [`lockstep`] |
//! | Sliding | 4 | [`sliding`] |
//! | Elastic | 7 (+DDTW/WDTW variants, lower bounds) | [`elastic`] |
//! | Kernel | 4 | [`kernel`] |
//! | Embedding | 4 | [`embedding`] |
//!
//! Plus the [`normalization`] methods of Section 4, the Table 4 parameter
//! grids in [`params`], and a [`registry`] enumerating everything for the
//! evaluation platform.
//!
//! ## The workspace hot path
//!
//! Batch callers (dissimilarity-matrix construction, 1-NN search) compare
//! millions of pairs, so every measure also exposes an allocation-free
//! entry point: [`Distance::distance_ws`] / [`Kernel::log_kernel_ws`] take
//! a [`Workspace`] — a reusable scratch arena of DP rows, auxiliary
//! vectors, and FFT buffers — and return *bit-identical* results to the
//! allocating methods (enforced by the `ws_equivalence` test suite over
//! the whole registry). Measures for which `d(x, y)` and `d(y, x)` are
//! bit-identical on equal-length inputs advertise it via
//! [`Distance::is_symmetric`], which lets matrix builders compute only the
//! upper triangle of train-by-train matrices.
//!
//! ```
//! use tsdist_core::measure::Distance;
//! use tsdist_core::lockstep::{Euclidean, Lorentzian};
//! use tsdist_core::sliding::CrossCorrelation;
//! use tsdist_core::elastic::Msm;
//!
//! let x = [0.1, 0.9, -1.2, 0.4, 1.5, -0.7];
//! let y = [0.0, 1.0, -1.0, 0.5, 1.4, -0.9];
//! assert!(Euclidean.distance(&x, &y) > 0.0);
//! assert!(Lorentzian.distance(&x, &y) > 0.0);
//! assert!(CrossCorrelation::sbd().distance(&x, &y) >= 0.0);
//! assert!(Msm::new(0.5).distance(&x, &y) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod elastic;
pub mod embedding;
pub mod index;
pub mod kernel;
pub mod lanes;
pub mod lockstep;
pub mod measure;
pub mod multivariate;
pub mod normalization;
pub mod params;
pub mod registry;
pub mod shape;
pub mod sliding;
pub mod subsequence;
pub mod workspace;

pub use index::{IndexStats, QueryPlan, TrainIndex};
pub use measure::{Distance, IndexProfile, Kernel, KernelDistance, MetricRegime, EPS};
pub use normalization::{AdaptiveScaled, Normalization};
pub use workspace::Workspace;
