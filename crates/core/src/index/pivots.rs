//! Triangle-inequality pivot pruning for metric measures.
//!
//! A pivot table stores the exact distances from a handful of train
//! series ("pivots", chosen by deterministic farthest-point traversal) to
//! every train series. At query time, the exact distances `a_p = d(q, p)`
//! to the pivots give the reverse-triangle lower bound
//!
//! ```text
//! d(q, t) ≥ max_p |a_p − d(p, t)|
//! ```
//!
//! for any measure that is a symmetric (pseudo)metric on the data regime
//! — exactly what [`MetricRegime`] declares and [`assert_metric_on`]
//! verifies by sampling. Each pairwise bound is shrunk by
//! [`PIVOT_MARGIN`]-relative slack before use so floating-point error in
//! either distance evaluation can never make the bound inadmissible.

use crate::measure::{Distance, MetricRegime, EPS};
use crate::workspace::Workspace;

/// Relative slack subtracted from each reverse-triangle bound:
/// `lb = |a − b| − PIVOT_MARGIN · (|a| + |b|)`. Distance evaluations are
/// accurate to a few ULPs times the term count (≪ 1e-9 relative), so the
/// deflated bound stays below the true distance.
pub const PIVOT_MARGIN: f64 = 1e-9;

/// Exact pivot-to-train distances for one measure, valid on
/// [`PivotTable::regime`].
#[derive(Debug, Clone)]
pub struct PivotTable {
    regime: MetricRegime,
    pivots: Vec<usize>,
    /// Row-major `pivots.len() × n` exact distances `d(pivot, train[j])`.
    dists: Vec<f64>,
    n: usize,
}

impl PivotTable {
    /// The train indices serving as pivots.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// The regime the backing measure declared (and was checked on).
    pub fn regime(&self) -> MetricRegime {
        self.regime
    }

    /// The stored exact distance from pivot `pi` (position in
    /// [`PivotTable::pivots`]) to train series `j`.
    pub fn dist(&self, pi: usize, j: usize) -> f64 {
        self.dists[pi * self.n + j]
    }

    /// The reverse-triangle lower bound on `d(q, train[j])` given the
    /// exact query-to-pivot distances `qd` (aligned with
    /// [`PivotTable::pivots`]).
    ///
    /// Non-finite inputs collapse the pairwise term to `0.0` (`∞ − ∞` and
    /// NaN both fail the max against zero), so a degenerate distance can
    /// never prune a candidate.
    pub fn lower_bound(&self, qd: &[f64], j: usize) -> f64 {
        let mut lb = 0.0f64;
        for (pi, &a) in qd.iter().enumerate() {
            let b = self.dist(pi, j);
            let t = (a - b).abs() - PIVOT_MARGIN * (a.abs() + b.abs());
            lb = lb.max(if t.is_finite() { t } else { 0.0 });
        }
        lb
    }
}

/// How many pivots to select for `n` train series.
fn pivot_count(n: usize) -> usize {
    n.min(8)
}

/// Builds the pivot table for `d` over `train` with deterministic
/// farthest-point ("maxmin") selection: pivot 0 is train series 0, each
/// further pivot is the series maximizing its minimum distance to the
/// already-chosen pivots (ties to the lowest index).
///
/// The caller is responsible for having validated `d`'s declared regime
/// (see [`assert_metric_on`]); this function only measures.
pub(crate) fn build_pivot_table(d: &dyn Distance, train: &[Vec<f64>]) -> PivotTable {
    let n = train.len();
    let k = pivot_count(n);
    let mut ws = Workspace::default();
    let mut pivots = Vec::with_capacity(k);
    let mut dists = Vec::with_capacity(k * n);
    // min-distance-to-chosen-pivots per candidate, for maxmin selection.
    let mut mind = vec![f64::INFINITY; n];
    let mut next = 0usize;
    for _ in 0..k {
        pivots.push(next);
        let row_start = dists.len();
        for t in train {
            dists.push(d.distance_ws(&train[next], t, &mut ws));
        }
        let row = &dists[row_start..];
        let mut best = f64::NEG_INFINITY;
        let mut best_j = next;
        for (j, (&dv, m)) in row.iter().zip(&mut mind).enumerate() {
            // NaN distances sort as "near" so they are never picked.
            let dv = if dv.is_finite() { dv } else { 0.0 };
            if dv < *m {
                *m = dv;
            }
            if *m > best && !pivots.contains(&j) {
                best = *m;
                best_j = j;
            }
        }
        next = best_j;
        if pivots.contains(&next) {
            break; // all remaining candidates are duplicates of a pivot
        }
    }
    PivotTable {
        regime: d.metric_regime(),
        pivots,
        dists,
        n,
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the splitmix64 stream.
fn unit(x: &mut u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Samples a series of `len` points inside `regime`.
fn sample_series(regime: MetricRegime, len: usize, state: &mut u64) -> Vec<f64> {
    (0..len)
        .map(|_| match regime {
            // Density-like positive data: the regime Positive declares.
            MetricRegime::Positive => EPS + unit(state) * 2.0,
            // Anything: zeros, negatives, ties.
            _ => unit(state) * 4.0 - 2.0,
        })
        .collect()
}

/// Checks one triple for the (tolerance-slackened) triangle inequality
/// and bit-exact symmetry when the measure claims it. Returns a
/// human-readable violation description, or `None`.
fn triple_violation(d: &dyn Distance, x: &[f64], y: &[f64], z: &[f64]) -> Option<String> {
    let dxy = d.distance(x, y);
    let dyz = d.distance(y, z);
    let dxz = d.distance(x, z);
    let tol = PIVOT_MARGIN * (dxy.abs() + dyz.abs() + dxz.abs()) + 1e-12;
    if dxz > dxy + dyz + tol {
        return Some(format!(
            "triangle inequality violated: d(x,z)={dxz} > d(x,y)+d(y,z)={}",
            dxy + dyz
        ));
    }
    if d.is_symmetric() && d.distance(y, x).to_bits() != dxy.to_bits() {
        return Some("claimed bit-exact symmetry does not hold".into());
    }
    None
}

/// Validates a declared [`MetricRegime`] by sampling random triples from
/// the regime and checking the triangle inequality (plus claimed
/// symmetry). Returns the first violation found, or `None` when `trials`
/// sampled triples all pass.
///
/// This is the conformance teeth behind the explicit `metric` flags: a
/// wrongly-flagged measure fails here — loudly, via
/// [`assert_metric_on`] at pivot-table build time and via the
/// registry-wide conformance test — instead of silently corrupting
/// pruned 1-NN answers.
pub fn find_metric_violation(
    d: &dyn Distance,
    regime: MetricRegime,
    series_len: usize,
    seed: u64,
    trials: usize,
) -> Option<String> {
    if regime == MetricRegime::None || series_len == 0 {
        return None;
    }
    let mut state = seed ^ 0xD1F2_4C3B_9E8A_7655;
    for _ in 0..trials {
        let x = sample_series(regime, series_len, &mut state);
        let y = sample_series(regime, series_len, &mut state);
        let z = sample_series(regime, series_len, &mut state);
        if let Some(v) = triple_violation(d, &x, &y, &z) {
            return Some(v);
        }
    }
    None
}

/// Panics with the violation when `d`'s declared `regime` fails sampled
/// triangle-inequality conformance — on synthetic triples drawn from the
/// regime *and* on triples drawn from the actual `train` data the pivot
/// table is about to index.
pub fn assert_metric_on(d: &dyn Distance, regime: MetricRegime, train: &[Vec<f64>], seed: u64) {
    let series_len = train.first().map_or(0, Vec::len);
    if let Some(v) = find_metric_violation(d, regime, series_len, seed, 32) {
        // tsdist-lint: allow(no-unwrap-in-lib, reason = "documented loud-failure contract: a wrongly-flagged metric must abort index construction rather than silently corrupt pruned answers")
        panic!(
            "measure {:?} declares {:?} but failed metric conformance: {v}",
            d.name(),
            regime
        );
    }
    let n = train.len();
    if n >= 3 {
        let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
        for _ in 0..32 {
            let i = (splitmix64(&mut state) % n as u64) as usize;
            let j = (splitmix64(&mut state) % n as u64) as usize;
            let k = (splitmix64(&mut state) % n as u64) as usize;
            if let Some(v) = triple_violation(d, &train[i], &train[j], &train[k]) {
                // tsdist-lint: allow(no-unwrap-in-lib, reason = "documented loud-failure contract: a wrongly-flagged metric must abort index construction rather than silently corrupt pruned answers")
                panic!(
                    "measure {:?} declares {:?} but failed metric conformance on train data ({i},{j},{k}): {v}",
                    d.name(),
                    regime
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::{Canberra, CityBlock, Euclidean, Minkowski, Sorensen, SquaredEuclidean};

    fn toy_train(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|t| ((i * 7 + t) as f64 * 0.37).sin() + 0.01 * i as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pivot_bounds_never_exceed_true_distances() {
        let train = toy_train(24, 32);
        let table = build_pivot_table(&Euclidean, &train);
        let mut ws = Workspace::default();
        let query: Vec<f64> = (0..32).map(|t| (t as f64 * 0.61).cos()).collect();
        let qd: Vec<f64> = table
            .pivots()
            .iter()
            .map(|&p| Euclidean.distance_ws(&query, &train[p], &mut ws))
            .collect();
        for (j, t) in train.iter().enumerate() {
            let lb = table.lower_bound(&qd, j);
            let d = Euclidean.distance_ws(&query, t, &mut ws);
            assert!(lb <= d, "pivot lb {lb} > true {d} for candidate {j}");
        }
    }

    #[test]
    fn pivot_selection_is_deterministic_and_duplicate_free() {
        let train = toy_train(40, 16);
        let a = build_pivot_table(&CityBlock, &train);
        let b = build_pivot_table(&CityBlock, &train);
        assert_eq!(a.pivots(), b.pivots());
        let mut seen = a.pivots().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), a.pivots().len());
    }

    #[test]
    fn correctly_flagged_measures_pass_conformance() {
        for (d, regime) in [
            (Box::new(Euclidean) as Box<dyn Distance>, MetricRegime::All),
            (Box::new(CityBlock), MetricRegime::All),
            (Box::new(Canberra), MetricRegime::Positive),
        ] {
            assert_eq!(d.metric_regime(), regime);
            assert!(find_metric_violation(d.as_ref(), regime, 24, 7, 64).is_none());
        }
    }

    #[test]
    fn wrongly_flagged_measures_fail_loudly() {
        // Squared Euclidean and fractional Minkowski are classic
        // triangle-inequality breakers; flagging them `All` must be
        // caught by the sampler.
        assert!(find_metric_violation(&SquaredEuclidean, MetricRegime::All, 16, 7, 256).is_some());
        // Fractional Minkowski and Sorensen (Bray–Curtis) violate the
        // triangle inequality on directed triples that uniform random
        // sampling rarely lands on — the data-triple arm of
        // `assert_metric_on` is what catches measures like these when
        // real data exhibits the concentrated shapes that break them.
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 0.0];
        let z = vec![0.0, 1.0];
        assert!(triple_violation(&Minkowski::new(0.5), &x, &y, &z).is_some());
        let x = vec![1.0, 0.0001];
        let y = vec![1.0, 1.0];
        let z = vec![0.0001, 1.0];
        assert!(triple_violation(&Sorensen, &x, &y, &z).is_some());
    }

    #[test]
    #[should_panic(expected = "metric conformance")]
    fn assert_metric_on_panics_for_a_wrong_flag() {
        assert_metric_on(&SquaredEuclidean, MetricRegime::All, &toy_train(8, 16), 3);
    }
}
