//! The sublinear 1-NN index tier: PAA summaries over Keogh envelopes and
//! metric pivot tables.
//!
//! A [`TrainIndex`] is built once per `(dataset, normalization)` train
//! split and then specialized per measure with
//! [`TrainIndex::prepare_measure`]:
//!
//! * measures reporting [`IndexProfile::KeoghDtw`] (plain banded DTW) get
//!   a [`DtwBandIndex`] — full Keogh envelopes plus their per-segment PAA
//!   summary — powering the lower-bound cascade
//!   `LB_PAA → LB_Keogh → distance_upto`;
//! * measures declaring a non-`None` [`MetricRegime`] get a
//!   [`PivotTable`] of exact pivot distances, powering reverse-triangle
//!   pruning — after the declared regime passes sampled conformance
//!   ([`assert_metric_on`]), so a wrongly-flagged measure fails loudly at
//!   build time instead of silently corrupting answers.
//!
//! The query planner in `tsdist-eval` asks [`TrainIndex::plan`] per query
//! row; anything that doesn't fit (ragged train, length mismatch,
//! positive-regime data with a non-positive query, unprepared measure)
//! falls back to [`QueryPlan::Linear`], i.e. the existing exact scan.
//! Every bound produced here is deflated for floating-point safety
//! (see [`paa::LB_DEFLATE`] and [`pivots::PIVOT_MARGIN`]), which is what
//! lets the planner skip candidates while keeping 1-NN/k-NN answers
//! byte-identical to the exact scan, ties included.

pub mod paa;
pub mod pivots;

use std::collections::BTreeMap;

use crate::elastic::{band_radius, keogh_envelope};
use crate::measure::{Distance, IndexProfile, MetricRegime, EPS};

pub use paa::{envelope_summary, lb_paa, paa_means, segment_bounds, LB_DEFLATE};
pub use pivots::{assert_metric_on, find_metric_violation, PivotTable, PIVOT_MARGIN};

/// Seed for the conformance sampling run at pivot-table build time.
const CONFORMANCE_SEED: u64 = 0x7D15_7A9C_E11B_0001;

/// Keogh envelopes for one DTW band over the whole train split, plus the
/// per-segment PAA summary of each envelope.
#[derive(Debug, Clone)]
pub struct DtwBandIndex {
    band: usize,
    /// Per train series: the `(upper, lower)` Keogh envelope.
    envelopes: Vec<(Vec<f64>, Vec<f64>)>,
    /// Per train series: the `(Û, L̂)` per-segment envelope summary.
    summaries: Vec<(Vec<f64>, Vec<f64>)>,
    /// Per train series: every value finite. Sliding min/max over NaN is
    /// comparison-order-dependent, so envelopes of unclean series can be
    /// finite garbage — such candidates must never be pruned by a bound.
    clean: Vec<bool>,
}

impl DtwBandIndex {
    fn build(train: &[Vec<f64>], band: usize, bounds: &[usize]) -> Self {
        let envelopes: Vec<_> = train.iter().map(|t| keogh_envelope(t, band)).collect();
        let summaries = envelopes
            .iter()
            .map(|(u, l)| envelope_summary(u, l, bounds))
            .collect();
        let clean = train
            .iter()
            .map(|t| t.iter().all(|v| v.is_finite()))
            .collect();
        DtwBandIndex {
            band,
            envelopes,
            summaries,
            clean,
        }
    }

    /// Whether train series `j` is fully finite — only then are its
    /// envelope-derived bounds trustworthy; unclean candidates fall back
    /// to the exact computation.
    pub fn is_clean(&self, j: usize) -> bool {
        self.clean[j]
    }

    /// The absolute Sakoe–Chiba radius the envelopes were built with.
    pub fn band(&self) -> usize {
        self.band
    }

    /// The full Keogh envelope of train series `j`.
    pub fn envelope(&self, j: usize) -> (&[f64], &[f64]) {
        let (u, l) = &self.envelopes[j];
        (u, l)
    }

    /// LB_PAA of a query (summarized by `qmeans` under the index's
    /// segment bounds) against train series `j`. Unclean candidates get
    /// the vacuous bound `0.0`.
    pub fn lb_paa(&self, qmeans: &[f64], bounds: &[usize], j: usize) -> f64 {
        if !self.clean[j] {
            return 0.0;
        }
        let (umax, lmin) = &self.summaries[j];
        lb_paa(qmeans, umax, lmin, bounds)
    }
}

/// Counts the serve layer's `health` command reports per shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexed train series.
    pub series: u64,
    /// Distinct DTW bands with an envelope + PAA structure.
    pub dtw_bands: u64,
    /// Measures with a built pivot table.
    pub pivot_tables: u64,
}

/// How the planner should search one query row.
pub enum QueryPlan<'a> {
    /// LB_PAA → cached LB_Keogh → `distance_upto` cascade.
    Cascade(&'a DtwBandIndex),
    /// Reverse-triangle pivot pruning → `distance_upto`.
    Pivots(&'a PivotTable),
    /// No admissible structure: exact linear scan.
    Linear,
}

/// The per-train-split index: PAA segment layout shared by every band,
/// lazily populated per-measure structures.
#[derive(Debug, Clone, Default)]
pub struct TrainIndex {
    /// Uniform series length; `0` when the split is empty or ragged (the
    /// index then refuses every plan).
    series_len: usize,
    n: usize,
    /// Every train value `>= EPS` — the gate for `MetricRegime::Positive`
    /// pivot tables.
    positive: bool,
    /// Shared PAA segment boundaries (`segments + 1` cut points).
    bounds: Vec<usize>,
    dtw_bands: BTreeMap<usize, DtwBandIndex>,
    pivot_tables: BTreeMap<String, PivotTable>,
}

/// Target points per PAA segment: segments = `len / 8`, clamped to
/// `[1, 64]`. Coarse enough that summaries stay tiny, fine enough that
/// LB_PAA keeps most of LB_Keogh's pruning power.
fn default_segments(len: usize) -> usize {
    (len / 8).clamp(1, 64)
}

impl TrainIndex {
    /// Builds the base index over a train split. Cheap — per-measure
    /// structures are added by [`TrainIndex::prepare_measure`].
    pub fn build(train: &[Vec<f64>]) -> Self {
        let series_len = train.first().map_or(0, Vec::len);
        let uniform = series_len > 0 && train.iter().all(|t| t.len() == series_len);
        if !uniform {
            return TrainIndex::default();
        }
        TrainIndex {
            series_len,
            n: train.len(),
            positive: train.iter().all(|t| t.iter().all(|&v| v >= EPS)),
            bounds: segment_bounds(series_len, default_segments(series_len)),
            dtw_bands: BTreeMap::new(),
            pivot_tables: BTreeMap::new(),
        }
    }

    /// Number of indexed train series (0 when the split was empty or
    /// ragged and the index is inert).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index holds no series.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The uniform series length, when the split was indexable.
    pub fn series_len(&self) -> Option<usize> {
        (self.series_len > 0).then_some(self.series_len)
    }

    /// The shared PAA segment boundaries.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Builds (idempotently) the per-measure structure for `d`: a
    /// [`DtwBandIndex`] for `IndexProfile::KeoghDtw` measures, a
    /// conformance-checked [`PivotTable`] for declared metrics. `train`
    /// must be the same split the index was built over.
    ///
    /// # Panics
    /// Panics when `d` declares a [`MetricRegime`] that fails sampled
    /// triangle-inequality conformance — a wrong flag fails loudly here
    /// rather than silently corrupting pruned answers.
    pub fn prepare_measure(&mut self, d: &dyn Distance, train: &[Vec<f64>]) {
        if self.series_len == 0 || train.len() != self.n {
            return;
        }
        match d.index_profile() {
            IndexProfile::KeoghDtw { window_pct } => {
                let band = band_radius(window_pct, self.series_len, self.series_len);
                self.dtw_bands
                    .entry(band)
                    .or_insert_with(|| DtwBandIndex::build(train, band, &self.bounds));
            }
            IndexProfile::None => {
                let regime = d.metric_regime();
                let eligible = d.is_symmetric()
                    && match regime {
                        MetricRegime::All => true,
                        MetricRegime::Positive => self.positive,
                        MetricRegime::None => false,
                    };
                if eligible && !self.pivot_tables.contains_key(&d.name()) {
                    assert_metric_on(d, regime, train, CONFORMANCE_SEED);
                    self.pivot_tables
                        .insert(d.name(), pivots::build_pivot_table(d, train));
                }
            }
        }
    }

    /// Resolves the search plan for one query row. Falls back to
    /// [`QueryPlan::Linear`] whenever the structure would not be
    /// admissible: length mismatch, unprepared measure, or a
    /// positive-regime pivot table facing a query with coordinates below
    /// `EPS` (NaN coordinates fail that gate too).
    pub fn plan(&self, d: &dyn Distance, query: &[f64]) -> QueryPlan<'_> {
        if self.series_len == 0 || query.len() != self.series_len {
            return QueryPlan::Linear;
        }
        match d.index_profile() {
            IndexProfile::KeoghDtw { window_pct } => {
                let band = band_radius(window_pct, self.series_len, self.series_len);
                match self.dtw_bands.get(&band) {
                    Some(ix) => QueryPlan::Cascade(ix),
                    None => QueryPlan::Linear,
                }
            }
            IndexProfile::None => match self.pivot_tables.get(&d.name()) {
                Some(t) => {
                    let regime_ok = match t.regime() {
                        MetricRegime::Positive => query.iter().all(|&v| v >= EPS),
                        _ => true,
                    };
                    if regime_ok {
                        QueryPlan::Pivots(t)
                    } else {
                        QueryPlan::Linear
                    }
                }
                None => QueryPlan::Linear,
            },
        }
    }

    /// Per-segment means of `query` under the index's boundaries —
    /// scratch for [`DtwBandIndex::lb_paa`].
    pub fn query_means(&self, query: &[f64], out: &mut Vec<f64>) {
        paa_means(query, &self.bounds, out);
    }

    /// Structure counts, for `serve` health reporting and benches.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            series: self.n as u64,
            dtw_bands: self.dtw_bands.len() as u64,
            pivot_tables: self.pivot_tables.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::Dtw;
    use crate::lockstep::{Canberra, Euclidean, SquaredEuclidean};

    fn toy_train(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|t| ((i * 5 + t) as f64 * 0.41).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_and_ragged_splits_yield_an_inert_index() {
        let mut ix = TrainIndex::build(&[]);
        ix.prepare_measure(&Euclidean, &[]);
        assert!(matches!(ix.plan(&Euclidean, &[1.0]), QueryPlan::Linear));
        assert_eq!(ix.stats(), IndexStats::default());

        let ragged = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        let ix = TrainIndex::build(&ragged);
        assert!(ix.series_len().is_none());
        assert!(matches!(
            ix.plan(&Euclidean, &[1.0, 2.0]),
            QueryPlan::Linear
        ));
    }

    #[test]
    fn dtw_measures_get_a_cascade_plan_and_share_bands() {
        let train = toy_train(12, 40);
        let mut ix = TrainIndex::build(&train);
        ix.prepare_measure(&Dtw::with_window_pct(10.0), &train);
        ix.prepare_measure(&Dtw::with_window_pct(10.0), &train);
        assert_eq!(ix.stats().dtw_bands, 1);
        let q = vec![0.0; 40];
        assert!(matches!(
            ix.plan(&Dtw::with_window_pct(10.0), &q),
            QueryPlan::Cascade(_)
        ));
        // Unprepared band and mismatched length fall back.
        assert!(matches!(
            ix.plan(&Dtw::with_window_pct(50.0), &q),
            QueryPlan::Linear
        ));
        assert!(matches!(
            ix.plan(&Dtw::with_window_pct(10.0), &[0.0; 8]),
            QueryPlan::Linear
        ));
    }

    #[test]
    fn metric_measures_get_pivots_and_unflagged_ones_do_not() {
        let train = toy_train(16, 24);
        let mut ix = TrainIndex::build(&train);
        ix.prepare_measure(&Euclidean, &train);
        ix.prepare_measure(&SquaredEuclidean, &train);
        assert_eq!(ix.stats().pivot_tables, 1);
        let q = vec![0.25; 24];
        assert!(matches!(ix.plan(&Euclidean, &q), QueryPlan::Pivots(_)));
        assert!(matches!(ix.plan(&SquaredEuclidean, &q), QueryPlan::Linear));
    }

    #[test]
    fn positive_regime_gates_on_train_and_query_positivity() {
        // Z-scored-style train data (negatives): Canberra must not get a
        // pivot table at all.
        let train = toy_train(10, 16);
        let mut ix = TrainIndex::build(&train);
        ix.prepare_measure(&Canberra, &train);
        assert_eq!(ix.stats().pivot_tables, 0);

        // Positive train data: the table builds, but a query dipping
        // below EPS still falls back to linear.
        let pos: Vec<Vec<f64>> = toy_train(10, 16)
            .into_iter()
            .map(|t| t.into_iter().map(|v| 1.5 + v).collect())
            .collect();
        let mut ix = TrainIndex::build(&pos);
        ix.prepare_measure(&Canberra, &pos);
        assert_eq!(ix.stats().pivot_tables, 1);
        assert!(matches!(
            ix.plan(&Canberra, &[0.5; 16]),
            QueryPlan::Pivots(_)
        ));
        let mut bad = vec![0.5; 16];
        bad[3] = 0.0;
        assert!(matches!(ix.plan(&Canberra, &bad), QueryPlan::Linear));
    }
}
