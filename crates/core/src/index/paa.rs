//! Piecewise Aggregate Approximation (PAA) summaries and the admissible
//! LB_PAA lower bound over Keogh envelopes.
//!
//! Following the classical exact-indexing construction (Keogh &
//! Ratanamahatana), each train series' Keogh envelope `(upper, lower)` is
//! summarized per segment by `Û_s = max_{i∈s} upper_i` and
//! `L̂_s = min_{i∈s} lower_i`. For a query summarized by its segment means
//! `q̄_s`, the bound
//!
//! ```text
//! LB_PAA = Σ_s m_s · e_s²,   e_s = max(q̄_s − Û_s, L̂_s − q̄_s, 0)
//! ```
//!
//! satisfies `LB_PAA ≤ LB_Keogh ≤ DTW_band` in exact arithmetic:
//! widening the envelope to the segment-constant `[L̂_s, Û_s]` only
//! shrinks each pointwise excursion, and the per-point excursion-squared
//! function `ĥ(t) = ((t−Û)⁺)² + ((L̂−t)⁺)²` is convex, so Jensen gives
//! `Σ_{i∈s} ĥ(q_i) ≥ m_s · ĥ(q̄_s)`. The floating-point gap between this
//! evaluation order and `lb_keogh`'s lane-reduced sums is covered by
//! deflating the final value by [`LB_DEFLATE`] (relative 1e-9, orders of
//! magnitude above the summation error), keeping every produced bound
//! strictly admissible so index-pruned 1-NN answers stay byte-identical
//! to the exact scan.

/// Relative deflation applied to computed lower bounds so floating-point
/// reassociation can never push a bound above the true distance it
/// provably (in exact arithmetic) sits below.
pub const LB_DEFLATE: f64 = 1.0 - 1e-9;

/// Segment boundaries for a PAA summary: `segments + 1` cut points with
/// `bounds[s] = s * len / segments` (integer arithmetic), covering
/// `0..len` without gaps. Every segment is non-empty when
/// `segments <= len`.
pub fn segment_bounds(len: usize, segments: usize) -> Vec<usize> {
    let segments = segments.clamp(1, len.max(1));
    (0..=segments).map(|s| s * len / segments).collect()
}

/// Per-segment means of `x` under the given boundaries, written into
/// `out` (cleared first).
pub fn paa_means(x: &[f64], bounds: &[usize], out: &mut Vec<f64>) {
    out.clear();
    for w in bounds.windows(2) {
        let seg = &x[w[0]..w[1]];
        let sum: f64 = seg.iter().sum();
        out.push(sum / seg.len().max(1) as f64);
    }
}

/// Per-segment envelope summary: `(Û, L̂)` with `Û_s` the maximum of
/// `upper` and `L̂_s` the minimum of `lower` over segment `s`.
pub fn envelope_summary(upper: &[f64], lower: &[f64], bounds: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let mut umax = Vec::with_capacity(bounds.len() - 1);
    let mut lmin = Vec::with_capacity(bounds.len() - 1);
    for w in bounds.windows(2) {
        umax.push(
            upper[w[0]..w[1]]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        );
        lmin.push(
            lower[w[0]..w[1]]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min),
        );
    }
    (umax, lmin)
}

/// LB_PAA: the deflated segment-level lower bound on `LB_Keogh` (and
/// hence on banded DTW) of the query whose segment means are `qmeans`
/// against the envelope summarized by `(umax, lmin)`.
///
/// NaN anywhere collapses the bound to `0.0` (`NaN.max(0.0) == 0.0`), so
/// non-finite queries or envelopes can never prune a candidate — the
/// cascade falls through to the exact computation.
pub fn lb_paa(qmeans: &[f64], umax: &[f64], lmin: &[f64], bounds: &[usize]) -> f64 {
    let mut sum = 0.0;
    for (((&q, &u), &l), w) in qmeans.iter().zip(umax).zip(lmin).zip(bounds.windows(2)) {
        // NaN comparisons are all-false, which would silently zero this
        // segment's excursion while other segments still contribute — an
        // inadmissible partial bound. Collapse to "no bound" instead.
        if !(q.is_finite() && u.is_finite() && l.is_finite()) {
            return 0.0;
        }
        let e = if q > u {
            q - u
        } else if q < l {
            l - q
        } else {
            0.0
        };
        sum += (w[1] - w[0]) as f64 * e * e;
    }
    (sum * LB_DEFLATE).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::{dtw_banded, keogh_envelope, lb_keogh};

    #[test]
    fn segment_bounds_cover_the_series_without_gaps() {
        for (len, segments) in [(10, 3), (7, 7), (64, 8), (5, 9), (1, 1)] {
            let b = segment_bounds(len, segments);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), len);
            for w in b.windows(2) {
                assert!(w[0] < w[1], "empty segment in {b:?} (len={len})");
            }
        }
    }

    #[test]
    fn paa_means_of_constant_series_are_the_constant() {
        let x = vec![2.5; 12];
        let b = segment_bounds(12, 4);
        let mut out = Vec::new();
        paa_means(&x, &b, &mut out);
        assert_eq!(out, vec![2.5; 4]);
    }

    #[test]
    fn lb_paa_is_admissible_against_lb_keogh_and_dtw() {
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.31).sin() * 1.3).collect();
        let y: Vec<f64> = (0..48).map(|i| (i as f64 * 0.47).cos()).collect();
        for band in [0usize, 2, 5, 48] {
            let (upper, lower) = keogh_envelope(&y, band);
            let bounds = segment_bounds(48, 6);
            let (umax, lmin) = envelope_summary(&upper, &lower, &bounds);
            let mut qmeans = Vec::new();
            paa_means(&x, &bounds, &mut qmeans);
            let paa = lb_paa(&qmeans, &umax, &lmin, &bounds);
            let keogh = lb_keogh(&x, &upper, &lower);
            let dtw = dtw_banded(&x, &y, band);
            assert!(paa <= keogh, "band {band}: LB_PAA {paa} > LB_Keogh {keogh}");
            assert!(
                keogh <= dtw * (1.0 + 1e-9),
                "band {band}: LB_Keogh {keogh} > DTW {dtw}"
            );
        }
    }

    #[test]
    fn nan_query_yields_a_zero_bound() {
        let bounds = segment_bounds(4, 2);
        let lb = lb_paa(&[f64::NAN, 1.0], &[0.0, 0.0], &[0.0, 0.0], &bounds);
        assert_eq!(lb, 0.0);
    }
}
