//! Registry-driven equivalence suite for the workspace-reusing hot path.
//!
//! Every measure must satisfy two contracts the batch matrix engine in
//! `tsdist-eval` builds on:
//!
//! 1. `distance_ws` (and `log_kernel_ws` / `kernel_ws`) returns a value
//!    *bit-identical* to the allocating path, with the workspace reused
//!    across calls of different shapes and measures;
//! 2. a measure reporting `is_symmetric()` really is bit-symmetric, so
//!    mirroring the upper triangle of a train×train matrix reproduces the
//!    full computation exactly.

use tsdist_core::elastic::{Cid, DerivativeDtw, Dtw, ItakuraDtw, WeightedDtw};
use tsdist_core::kernel::{Gak, Kdtw, Rbf, Sink};
use tsdist_core::measure::{Distance, Kernel, KernelDistance};
use tsdist_core::registry;
use tsdist_core::{AdaptiveScaled, Workspace};

/// Tiny deterministic generator (SplitMix64) so the suite needs no
/// external crates and reruns identically.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-2, 2)` — spans positive and negative values so the
    /// density-style measures exercise their clamping branches.
    fn value(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    }

    fn series(&mut self, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.value()).collect()
    }
}

/// Random plus adversarial input pairs: equal lengths, unequal lengths,
/// constant series (zero variance / zero complexity), and short series.
fn input_pairs() -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut g = Gen(0xC0FFEE);
    vec![
        (g.series(64), g.series(64)),
        (g.series(31), g.series(31)),
        (g.series(7), g.series(7)),
        // Lane-boundary lengths for the 8-lane chunked kernels: below,
        // at, and just past one chunk, plus two chunks with a tail.
        (g.series(1), g.series(1)),
        (g.series(2), g.series(2)),
        (g.series(8), g.series(8)),
        (g.series(9), g.series(9)),
        (g.series(19), g.series(19)),
        (vec![0.5; 40], g.series(40)),
        (vec![1.0; 16], vec![1.0; 16]),
        (g.series(17), g.series(64)),
    ]
}

/// Every registry distance (full Table 4 grids) plus the wrapper types
/// that live outside the registry.
fn all_distances() -> Vec<Box<dyn Distance>> {
    let mut all: Vec<Box<dyn Distance>> = Vec::new();
    all.extend(registry::lockstep_parameter_free());
    all.extend(registry::minkowski_family().grid);
    all.extend(registry::sliding_measures());
    for family in registry::elastic_families() {
        all.extend(family.grid);
    }
    // Wrappers and variants outside the registry grids.
    // Odd window percentages give Sakoe-Chiba radii that are not
    // multiples of the lane width, exercising the wavefront's ragged
    // diagonal ranges.
    all.push(Box::new(Dtw::with_window_pct(5.0)));
    all.push(Box::new(Dtw::with_window_pct(37.0)));
    all.push(Box::new(DerivativeDtw::with_window_pct(10.0)));
    all.push(Box::new(WeightedDtw::new(0.1)));
    all.push(Box::new(Cid::new(Dtw::with_window_pct(10.0))));
    all.push(Box::new(ItakuraDtw::new(2.0)));
    all.push(Box::new(AdaptiveScaled::new(Dtw::with_window_pct(10.0))));
    all.push(Box::new(KernelDistance(Gak::new(0.1))));
    all.push(Box::new(KernelDistance(Kdtw::new(0.125))));
    all.push(Box::new(KernelDistance(Sink::new(5.0))));
    all.push(Box::new(KernelDistance(Rbf::new(1.0))));
    all
}

fn all_kernels() -> Vec<Box<dyn Kernel>> {
    registry::kernel_families()
        .into_iter()
        .flat_map(|f| f.grid)
        .collect()
}

/// Both representations must agree bit-for-bit; NaN compares equal to
/// itself at the bit level, so this is stricter than `==`.
fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: {a:?} ({:#x}) != {b:?} ({:#x})",
        a.to_bits(),
        b.to_bits()
    );
}

#[test]
fn distance_ws_is_bit_identical_for_every_registry_measure() {
    let pairs = input_pairs();
    // One long-lived workspace across all measures and shapes, exactly as
    // a matrix-builder worker uses it.
    let mut ws = Workspace::default();
    for d in all_distances() {
        for (x, y) in &pairs {
            let plain = d.distance(x, y);
            let scratch = d.distance_ws(x, y, &mut ws);
            assert_bits_eq(plain, scratch, &format!("{} ws", d.name()));
            // And in the reversed argument order, which exercises the
            // unequal-length paths both ways.
            let plain_r = d.distance(y, x);
            let scratch_r = d.distance_ws(y, x, &mut ws);
            assert_bits_eq(plain_r, scratch_r, &format!("{} ws (rev)", d.name()));
        }
    }
}

#[test]
fn kernel_ws_is_bit_identical_for_every_registry_kernel() {
    let pairs = input_pairs();
    let mut ws = Workspace::default();
    for k in all_kernels() {
        for (x, y) in &pairs {
            assert_bits_eq(
                k.kernel(x, y),
                k.kernel_ws(x, y, &mut ws),
                &format!("{} kernel ws", k.name()),
            );
            assert_bits_eq(
                k.log_kernel(x, y),
                k.log_kernel_ws(x, y, &mut ws),
                &format!("{} log kernel ws", k.name()),
            );
            assert_bits_eq(
                k.log_self_kernel(x),
                k.log_self_kernel_ws(x, &mut ws),
                &format!("{} log self kernel ws", k.name()),
            );
        }
    }
}

#[test]
fn symmetry_claims_hold_bit_exactly() {
    // The symmetry contract covers equal-length inputs only — the batch
    // engine mirrors exclusively within one rectangular dataset, and
    // measures normalizing by `x.len()` (e.g. Gower) diverge across
    // lengths.
    let pairs: Vec<_> = input_pairs()
        .into_iter()
        .filter(|(x, y)| x.len() == y.len())
        .collect();
    let mut ws = Workspace::default();
    for d in all_distances() {
        if !d.is_symmetric() {
            continue;
        }
        for (x, y) in &pairs {
            assert_bits_eq(
                d.distance(x, y),
                d.distance(y, x),
                &format!("{} symmetry", d.name()),
            );
            assert_bits_eq(
                d.distance_ws(x, y, &mut ws),
                d.distance_ws(y, x, &mut ws),
                &format!("{} ws symmetry", d.name()),
            );
        }
    }
    for k in all_kernels() {
        if !k.is_symmetric() {
            continue;
        }
        for (x, y) in &pairs {
            assert_bits_eq(
                k.log_kernel(x, y),
                k.log_kernel(y, x),
                &format!("{} kernel symmetry", k.name()),
            );
        }
    }
}

#[test]
fn known_asymmetric_measures_are_flagged() {
    use tsdist_core::lockstep::{
        AdaptiveScalingDistance, Euclidean, KDivergence, KullbackLeibler, NeymanChiSq, PearsonChiSq,
    };
    use tsdist_core::sliding::CrossCorrelation;
    assert!(!KullbackLeibler.is_symmetric());
    assert!(!KDivergence.is_symmetric());
    assert!(!PearsonChiSq.is_symmetric());
    assert!(!NeymanChiSq.is_symmetric());
    assert!(!AdaptiveScalingDistance.is_symmetric());
    assert!(!CrossCorrelation::sbd().is_symmetric());
    assert!(!AdaptiveScaled::new(Euclidean).is_symmetric());
    assert!(!Gak::new(0.1).is_symmetric());
    assert!(!Kdtw::new(0.125).is_symmetric());
    assert!(!Sink::new(5.0).is_symmetric());
    assert!(Rbf::new(1.0).is_symmetric());
    assert!(Euclidean.is_symmetric());
    assert!(Dtw::with_window_pct(10.0).is_symmetric());
}
