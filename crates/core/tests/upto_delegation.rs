//! Non-abandoning measures delegate `distance_upto` to `distance_ws`
//! wholesale: Canberra (deliberately — its per-term guarded divisions
//! make a running-sum abandon slower than just finishing), CID and
//! KernelDistance (their final values are not monotone accumulations, so
//! no admissible abandon exists). For these, `distance_upto` must be
//! *bit-identical* to `distance_ws` under **any** cutoff — including
//! cutoffs far below the true distance, where an abandoning measure
//! would bail out.

use tsdist_core::elastic::Cid;
use tsdist_core::kernel::{Gak, Rbf, Sink};
use tsdist_core::lockstep::{Canberra, Euclidean};
use tsdist_core::measure::{Distance, KernelDistance};
use tsdist_core::Workspace;

/// Deterministic value stream for series and cutoffs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn series(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.uniform(-2.0, 2.0)).collect()
    }
}

fn delegating_measures() -> Vec<Box<dyn Distance>> {
    vec![
        Box::new(Canberra),
        Box::new(Cid::new(Euclidean)),
        Box::new(KernelDistance(Rbf::new(0.25))),
        Box::new(KernelDistance(Gak::new(0.5))),
        Box::new(KernelDistance(Sink::new(5.0))),
    ]
}

#[test]
fn delegating_upto_is_bit_identical_under_random_cutoffs() {
    let mut rng = SplitMix64(0xDE1E_6A7E);
    let mut ws = Workspace::new();
    for trial in 0..20 {
        let n = 4 + (trial % 21);
        let x = rng.series(n);
        let y = rng.series(n);
        for m in delegating_measures() {
            let exact = m.distance_ws(&x, &y, &mut ws);
            // Random cutoffs spanning well below, around, and above the
            // true distance — a delegating measure must ignore them all.
            for _ in 0..8 {
                let cutoff = exact + rng.uniform(-2.0, 2.0) * exact.abs().max(1.0);
                let got = m.distance_upto(&x, &y, &mut ws, cutoff);
                assert_eq!(
                    got.to_bits(),
                    exact.to_bits(),
                    "{}: cutoff {cutoff:e}: {got:e} vs exact {exact:e}",
                    m.name()
                );
            }
            for special in [0.0, f64::MIN_POSITIVE, -1e300, f64::INFINITY, f64::NAN] {
                let got = m.distance_upto(&x, &y, &mut ws, special);
                assert_eq!(
                    got.to_bits(),
                    exact.to_bits(),
                    "{}: special cutoff {special:e}",
                    m.name()
                );
            }
        }
    }
}

/// Canberra's delegation specifically: even a zero cutoff (which makes
/// every abandoning lock-step measure return immediately) yields the
/// full exact sum.
#[test]
fn canberra_never_abandons() {
    let mut rng = SplitMix64(0xCA9B_E44A);
    let mut ws = Workspace::new();
    let x = rng.series(64);
    let y = rng.series(64);
    let exact = Canberra.distance_ws(&x, &y, &mut ws);
    assert!(exact > 0.0);
    let got = Canberra.distance_upto(&x, &y, &mut ws, 0.0);
    assert_eq!(got.to_bits(), exact.to_bits());
}

/// The delegation composes: a CID-wrapped measure that *does* abandon
/// internally must still return exact bits through CID's `distance_upto`,
/// because the complexity correction is applied after the fact and can
/// scale the distance back *under* an already-passed cutoff.
#[test]
fn cid_forwards_exact_even_when_inner_would_abandon() {
    let mut rng = SplitMix64(0xC1D0);
    let mut ws = Workspace::new();
    let cid = Cid::new(Euclidean);
    for _ in 0..10 {
        let x = rng.series(32);
        let y = rng.series(32);
        let exact = cid.distance_ws(&x, &y, &mut ws);
        // A cutoff below the *inner* Euclidean distance: had CID threaded
        // it through, Euclidean would have abandoned.
        let inner = Euclidean.distance_ws(&x, &y, &mut ws);
        let tight = inner * 0.5;
        let got = cid.distance_upto(&x, &y, &mut ws, tight);
        assert_eq!(got.to_bits(), exact.to_bits());
    }
}
