//! Property suite pinning the index tier's admissibility contracts:
//! `LB_PAA ≤ LB_Keogh ≤ DTW` for random series, segment counts, and
//! bands (both argument orders), pivot bounds never exceeding the true
//! distance for every declared-metric measure, and vacuous (exact-scan)
//! fallback on NaN/INF series.

use proptest::prelude::*;
use tsdist_core::elastic::{dtw_banded, keogh_envelope, lb_keogh, Dtw};
use tsdist_core::index::{
    envelope_summary, lb_paa, paa_means, segment_bounds, QueryPlan, TrainIndex,
};
use tsdist_core::lockstep as ls;
use tsdist_core::measure::{Distance, MetricRegime};
use tsdist_core::Workspace;

/// The LB_PAA ≤ LB_Keogh leg for one (query, candidate) order.
fn check_paa_chain(query: &[f64], candidate: &[f64], band: usize, segments: usize) {
    let (upper, lower) = keogh_envelope(candidate, band);
    let bounds = segment_bounds(candidate.len(), segments);
    let (umax, lmin) = envelope_summary(&upper, &lower, &bounds);
    let mut qmeans = Vec::new();
    paa_means(query, &bounds, &mut qmeans);
    let paa = lb_paa(&qmeans, &umax, &lmin, &bounds);
    let keogh = lb_keogh(query, &upper, &lower);
    let dtw = dtw_banded(query, candidate, band);
    assert!(
        paa <= keogh,
        "LB_PAA {paa} > LB_Keogh {keogh} (band {band}, segments {segments})"
    );
    // LB_Keogh ≤ DTW holds exactly in real arithmetic; the relative slack
    // only covers reassociation between the lane-reduced envelope sum and
    // the sequential DP when the two are mathematically equal.
    assert!(
        keogh <= dtw * (1.0 + 1e-9) + 1e-12,
        "LB_Keogh {keogh} > DTW {dtw} (band {band}, segments {segments})"
    );
}

/// Every measure declaring a [`MetricRegime`], with data for its regime.
fn metric_measures() -> Vec<(Box<dyn Distance>, MetricRegime)> {
    vec![
        (
            Box::new(ls::Euclidean) as Box<dyn Distance>,
            MetricRegime::All,
        ),
        (Box::new(ls::CityBlock), MetricRegime::All),
        (Box::new(ls::Chebyshev), MetricRegime::All),
        (Box::new(ls::Minkowski::new(3.0)), MetricRegime::All),
        (Box::new(ls::Gower), MetricRegime::All),
        (Box::new(ls::Lorentzian), MetricRegime::All),
        (Box::new(ls::Canberra), MetricRegime::Positive),
        (Box::new(ls::Soergel), MetricRegime::Positive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LB_PAA ≤ LB_Keogh ≤ banded DTW, for random series, segment
    /// counts, bands, and both argument orders.
    #[test]
    fn paa_keogh_dtw_chain_is_admissible(
        v in proptest::collection::vec((-2f64..2.0, -2f64..2.0), 4..48),
        segments in 1usize..16,
        band_pct in 0f64..100.0,
    ) {
        let x: Vec<f64> = v.iter().map(|&(a, _)| a).collect();
        let y: Vec<f64> = v.iter().map(|&(_, b)| b).collect();
        let band = Dtw::with_window_pct(band_pct).band(x.len(), y.len());
        check_paa_chain(&x, &y, band, segments);
        check_paa_chain(&y, &x, band, segments);
    }

    /// Reverse-triangle pivot bounds never exceed the true distance, for
    /// every declared-metric measure on data from its regime — in both
    /// argument orders of the underlying distance evaluations.
    #[test]
    fn pivot_bounds_are_admissible_for_all_declared_metrics(
        v in proptest::collection::vec((0.01f64..2.0, 0.01f64..2.0), 8..24),
        shift in 0usize..5,
    ) {
        let len = v.len();
        // Positive data serves every regime; All-regime measures are
        // additionally exercised on centered data below.
        let train: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                (0..len)
                    .map(|t| v[(t + i * (shift + 1)) % len].0 + 0.001 * i as f64)
                    .collect()
            })
            .collect();
        let query: Vec<f64> = v.iter().map(|&(_, b)| b).collect();
        let centered: Vec<Vec<f64>> = train
            .iter()
            .map(|s| s.iter().map(|v| v - 1.0).collect())
            .collect();
        let query_centered: Vec<f64> = query.iter().map(|v| v - 1.0).collect();

        let mut ws = Workspace::default();
        for (d, regime) in metric_measures() {
            let (train, query) = match regime {
                MetricRegime::Positive => (&train, &query),
                _ => (&centered, &query_centered),
            };
            let mut ix = TrainIndex::build(train);
            ix.prepare_measure(d.as_ref(), train);
            let QueryPlan::Pivots(table) = ix.plan(d.as_ref(), query) else {
                panic!("{} did not plan pivots", d.name());
            };
            let qd: Vec<f64> = table
                .pivots()
                .iter()
                .map(|&p| d.distance_ws(query, &train[p], &mut ws))
                .collect();
            for (j, t) in train.iter().enumerate() {
                let lb = table.lower_bound(&qd, j);
                let fwd = d.distance_ws(query, t, &mut ws);
                let rev = d.distance_ws(t, query, &mut ws);
                prop_assert!(lb <= fwd, "{}: pivot lb {lb} > d(q,t) {fwd}", d.name());
                prop_assert!(lb <= rev, "{}: pivot lb {lb} > d(t,q) {rev}", d.name());
            }
        }
    }

    /// NaN or INF anywhere in a series collapses every bound to the
    /// vacuous `0.0` (PAA) or forces a linear plan (positive-regime
    /// pivots): non-finite inputs always fall back to the exact path.
    #[test]
    fn non_finite_series_fall_back_to_exact(
        v in proptest::collection::vec(-2f64..2.0, 8..24),
        poison_at in 0usize..8,
        poison_kind in 0u8..2,
        segments in 1usize..8,
    ) {
        let poison = if poison_kind == 0 { f64::INFINITY } else { f64::NAN };
        let mut bad = v.clone();
        let at = poison_at % bad.len();
        bad[at] = poison;

        // Poisoned query against a clean envelope.
        let band = 2;
        let (upper, lower) = keogh_envelope(&v, band);
        let bounds = segment_bounds(v.len(), segments);
        let (umax, lmin) = envelope_summary(&upper, &lower, &bounds);
        let mut qmeans = Vec::new();
        paa_means(&bad, &bounds, &mut qmeans);
        prop_assert_eq!(lb_paa(&qmeans, &umax, &lmin, &bounds), 0.0);

        // Clean query against a poisoned candidate, through the index:
        // the candidate is flagged unclean and its bound is vacuous.
        let train = vec![v.clone(), bad.clone()];
        let mut ix = TrainIndex::build(&train);
        let dtw = Dtw::with_window_pct(10.0);
        ix.prepare_measure(&dtw, &train);
        let QueryPlan::Cascade(bix) = ix.plan(&dtw, &v) else {
            panic!("expected a cascade plan");
        };
        prop_assert!(!bix.is_clean(1));
        paa_means(&v, &bounds, &mut qmeans);
        prop_assert_eq!(bix.lb_paa(&qmeans, ix.bounds(), 1), 0.0);

        // Positive-regime pivots refuse a poisoned query outright.
        let pos: Vec<Vec<f64>> = (0..6)
            .map(|i| v.iter().map(|x| x.abs() + 0.1 + 0.01 * i as f64).collect())
            .collect();
        let mut ix = TrainIndex::build(&pos);
        ix.prepare_measure(&ls::Canberra, &pos);
        let mut bad_pos: Vec<f64> = pos[0].clone();
        bad_pos[at] = f64::NAN;
        prop_assert!(matches!(ix.plan(&ls::Canberra, &bad_pos), QueryPlan::Linear));
    }
}

/// The declared-metric roster is explicit and closed: exactly the
/// measures meant to be in the pivot layer are flagged, and the flags
/// survive the sampling conformance check on their declared regime.
#[test]
fn declared_metric_flags_pass_conformance() {
    use tsdist_core::index::find_metric_violation;
    for (d, regime) in metric_measures() {
        assert_eq!(d.metric_regime(), regime, "{}", d.name());
        assert!(d.is_metric(), "{}", d.name());
        assert!(
            find_metric_violation(d.as_ref(), regime, 32, 11, 64).is_none(),
            "{} failed conformance on its declared regime",
            d.name()
        );
    }
    // Known non-metrics stay out.
    assert_eq!(ls::SquaredEuclidean.metric_regime(), MetricRegime::None);
    assert_eq!(ls::Sorensen.metric_regime(), MetricRegime::None);
    assert_eq!(ls::KulczynskiD.metric_regime(), MetricRegime::None);
    assert_eq!(
        ls::Minkowski::new(0.5).metric_regime(),
        MetricRegime::None,
        "fractional Minkowski must not claim the triangle inequality"
    );
    assert_eq!(
        Dtw::with_window_pct(10.0).metric_regime(),
        MetricRegime::None,
        "DTW is famously not a metric"
    );
}
