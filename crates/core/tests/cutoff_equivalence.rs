//! Registry-driven admissibility suite for the cutoff-threaded hot path.
//!
//! Every measure must satisfy the `Distance::distance_upto` contract the
//! pruned 1-NN engine in `tsdist-eval` builds on:
//!
//! 1. with a non-finite cutoff (`INFINITY`, `NaN`) the result is
//!    *bit-identical* to `distance_ws` — the engine's first scan of a row
//!    and every delegating default depend on it;
//! 2. with any finite cutoff `c`: if the true distance is `< c` the exact
//!    bits come back, otherwise the result is not below `c` — so a value
//!    that survives the comparison against a best-so-far is always the
//!    true distance, and an abandoned candidate can never steal a win.
//!
//! Cutoffs are swept around the true distance itself (fractions, the
//! exact value, `next_up` — the engine's tie rule — and multiples) plus
//! fixed extremes, so both the abandon and the must-be-exact branches are
//! exercised for every measure of the registry and the wrapper types.

use tsdist_core::elastic::{Cid, DerivativeDtw, Dtw, ItakuraDtw, WeightedDtw};
use tsdist_core::kernel::{Gak, Kdtw, Rbf, Sink};
use tsdist_core::measure::{Distance, KernelDistance};
use tsdist_core::registry;
use tsdist_core::{AdaptiveScaled, Workspace};

/// Tiny deterministic generator (SplitMix64) so the suite needs no
/// external crates and reruns identically.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-2, 2)` — spans positive and negative values so the
    /// density-style measures exercise their clamping branches.
    fn value(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    }

    fn series(&mut self, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.value()).collect()
    }
}

/// Random plus adversarial input pairs: equal lengths, unequal lengths,
/// constant series (zero variance / zero complexity), and short series.
fn input_pairs() -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut g = Gen(0xC0FFEE);
    vec![
        (g.series(64), g.series(64)),
        (g.series(31), g.series(31)),
        (g.series(7), g.series(7)),
        // Lane-boundary lengths for the 8-lane chunked kernels: below,
        // at, and just past one chunk, plus two chunks with a tail.
        (g.series(1), g.series(1)),
        (g.series(2), g.series(2)),
        (g.series(8), g.series(8)),
        (g.series(9), g.series(9)),
        (g.series(19), g.series(19)),
        (vec![0.5; 40], g.series(40)),
        (vec![1.0; 16], vec![1.0; 16]),
        (g.series(17), g.series(64)),
    ]
}

/// Every registry distance (full Table 4 grids) plus the wrapper types
/// that live outside the registry — the same population as the workspace
/// equivalence suite, so a measure cannot gain a `distance_upto` override
/// without entering this suite.
fn all_distances() -> Vec<Box<dyn Distance>> {
    let mut all: Vec<Box<dyn Distance>> = Vec::new();
    all.extend(registry::lockstep_parameter_free());
    all.extend(registry::minkowski_family().grid);
    all.extend(registry::sliding_measures());
    for family in registry::elastic_families() {
        all.extend(family.grid);
    }
    // Odd window percentages give Sakoe-Chiba radii that are not
    // multiples of the lane width, exercising the wavefront's ragged
    // diagonal ranges.
    all.push(Box::new(Dtw::with_window_pct(5.0)));
    all.push(Box::new(Dtw::with_window_pct(37.0)));
    all.push(Box::new(DerivativeDtw::with_window_pct(10.0)));
    all.push(Box::new(WeightedDtw::new(0.1)));
    all.push(Box::new(Cid::new(Dtw::with_window_pct(10.0))));
    all.push(Box::new(ItakuraDtw::new(2.0)));
    all.push(Box::new(AdaptiveScaled::new(Dtw::with_window_pct(10.0))));
    all.push(Box::new(KernelDistance(Gak::new(0.1))));
    all.push(Box::new(KernelDistance(Kdtw::new(0.125))));
    all.push(Box::new(KernelDistance(Sink::new(5.0))));
    all.push(Box::new(KernelDistance(Rbf::new(1.0))));
    all
}

fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: {a:?} ({:#x}) != {b:?} ({:#x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// The cutoff sweep for one (measure, pair): values bracketing the exact
/// distance plus fixed extremes and deterministic pseudo-random draws.
fn cutoffs_around(exact: f64, g: &mut Gen) -> Vec<f64> {
    let mut cs = vec![0.0, -1.0, 1e-9, 1.0, 1e6, f64::MAX];
    if exact.is_finite() {
        cs.extend([
            exact * 0.25,
            exact * 0.5,
            exact * 0.99,
            exact,
            exact.next_up(),
            exact * 1.5 + 1e-12,
            exact * 4.0 + 1.0,
        ]);
    }
    cs.extend((0..4).map(|_| (g.value() + 2.0) * 50.0));
    cs
}

#[test]
fn non_finite_cutoffs_are_bit_identical_to_distance_ws() {
    let pairs = input_pairs();
    let mut ws = Workspace::default();
    for d in all_distances() {
        for (x, y) in &pairs {
            let exact = d.distance_ws(x, y, &mut ws);
            for c in [f64::INFINITY, f64::NAN] {
                let r = d.distance_upto(x, y, &mut ws, c);
                assert_bits_eq(exact, r, &format!("{} upto({c})", d.name()));
            }
        }
    }
}

#[test]
fn finite_cutoffs_are_admissible_for_every_registry_measure() {
    let pairs = input_pairs();
    let mut ws = Workspace::default();
    let mut g = Gen(0xBEEF);
    for d in all_distances() {
        for (x, y) in &pairs {
            let exact = d.distance_ws(x, y, &mut ws);
            if exact.is_nan() {
                // No measure in the registry produces NaN on these inputs;
                // guard so a future regression fails loudly here instead
                // of silently skipping the contract.
                panic!("{} returned NaN on a suite input", d.name());
            }
            for c in cutoffs_around(exact, &mut g) {
                let r = d.distance_upto(x, y, &mut ws, c);
                if exact < c {
                    // Below the cutoff the value must be the exact bits.
                    assert_bits_eq(
                        exact,
                        r,
                        &format!("{} upto(cutoff {c}, exact {exact})", d.name()),
                    );
                } else {
                    // At or above the cutoff anything not below `c` is
                    // admissible (typically INF from an abandon).
                    assert!(
                        r >= c || r.is_nan(),
                        "{}: cutoff {c}, exact {exact}, but upto returned {r} < cutoff",
                        d.name()
                    );
                }
            }
        }
    }
}

#[test]
fn reversed_arguments_honour_the_contract_too() {
    // Unequal-length pairs take different internal paths per argument
    // order (band widening, gap handling); sweep both orders.
    let pairs = input_pairs();
    let mut ws = Workspace::default();
    let mut g = Gen(0xF00D);
    for d in all_distances() {
        for (x, y) in &pairs {
            let exact = d.distance_ws(y, x, &mut ws);
            for c in cutoffs_around(exact, &mut g) {
                let r = d.distance_upto(y, x, &mut ws, c);
                if exact < c {
                    assert_bits_eq(exact, r, &format!("{} upto rev (cutoff {c})", d.name()));
                } else {
                    assert!(
                        r >= c || r.is_nan(),
                        "{}: rev cutoff {c}, exact {exact}, got {r} < cutoff",
                        d.name()
                    );
                }
            }
        }
    }
}

#[test]
fn workspace_survives_abandoned_calls() {
    // An abandoned DP must leave the workspace reusable: interleave tight
    // and infinite cutoffs across measures with one long-lived workspace,
    // exactly as a search over a candidate row does.
    let pairs = input_pairs();
    let mut ws = Workspace::default();
    for d in all_distances() {
        for (x, y) in &pairs {
            let exact = d.distance_ws(x, y, &mut ws);
            let _ = d.distance_upto(x, y, &mut ws, 1e-9);
            let again = d.distance_upto(x, y, &mut ws, f64::INFINITY);
            assert_bits_eq(
                exact,
                again,
                &format!("{} ws reuse after abandon", d.name()),
            );
        }
    }
}
